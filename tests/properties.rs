//! Property-based tests (proptest) on the numerical core: autograd
//! adjoint identities, proximal projections, sparse kernels, and metric
//! invariants.

use autoac::prelude::*;
use autoac::tensor::Csr;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative_with_identity(m in small_matrix()) {
        let i = Matrix::eye(m.cols());
        prop_assert_eq!(m.matmul(&i), m.clone());
        let i2 = Matrix::eye(m.rows());
        prop_assert_eq!(i2.matmul(&m), m);
    }

    #[test]
    fn transpose_product_identity(m in small_matrix()) {
        // (A Aᵀ)ᵀ = A Aᵀ (symmetry).
        let p = m.matmul_nt(&m);
        let pt = p.transpose();
        for (a, b) in p.data().iter().zip(pt.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in small_matrix()) {
        let s = m.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gather_scatter_adjoint(
        rows in 2usize..8,
        cols in 1usize..5,
        idx in proptest::collection::vec(0u32..8, 1..12),
    ) {
        let idx: Vec<u32> = idx.into_iter().map(|i| i % rows as u32).collect();
        let x = Matrix::full(rows, cols, 1.5);
        let y = Matrix::full(idx.len(), cols, 2.0);
        // <gather(x), y> == <x, scatter(y)>
        let lhs = x.gather_rows(&idx).mul(&y).sum();
        let rhs = x.mul(&y.scatter_add_rows(&idx, rows)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn csr_roundtrip_matches_dense(
        rows in 1usize..6,
        cols in 1usize..6,
        entries in proptest::collection::vec((0u32..6, 0u32..6, -5.0f32..5.0), 0..15),
    ) {
        let entries: Vec<(u32, u32, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows as u32, c % cols as u32, v))
            .collect();
        let csr = Csr::from_coo(rows, cols, entries.clone());
        let mut dense = Matrix::zeros(rows, cols);
        for (r, c, v) in entries {
            let cur = dense.get(r as usize, c as usize);
            dense.set(r as usize, c as usize, cur + v);
        }
        let got = csr.to_dense();
        for (a, b) in got.data().iter().zip(dense.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        // Transpose involution.
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn prox_c1_is_idempotent_and_in_c(m in small_matrix()) {
        use autoac::core::proximal::{prox_c1, prox_c2};
        let p = prox_c1(&m);
        prop_assert_eq!(prox_c1(&p), p.clone());
        // Lies in C = C1 ∩ C2.
        for r in 0..p.rows() {
            let nnz = p.row(r).iter().filter(|&&v| v != 0.0).count();
            prop_assert_eq!(nnz, 1);
        }
        prop_assert_eq!(prox_c2(&p), p);
    }

    #[test]
    fn prox_c2_is_a_projection(m in small_matrix()) {
        use autoac::core::proximal::prox_c2;
        let p = prox_c2(&m);
        prop_assert_eq!(prox_c2(&p), p.clone());
        prop_assert!(p.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Never moves a point already inside the box.
        let inside = m.map(|v| v.abs().fract());
        prop_assert_eq!(prox_c2(&inside), inside);
    }

    #[test]
    fn f1_bounds_and_perfect(pred in proptest::collection::vec(0u32..4, 1..40)) {
        let s = f1_scores(&pred, &pred, 4);
        prop_assert_eq!(s.micro_f1, 1.0);
        let shifted: Vec<u32> = pred.iter().map(|&p| (p + 1) % 4).collect();
        let s2 = f1_scores(&shifted, &pred, 4);
        prop_assert_eq!(s2.micro_f1, 0.0);
        prop_assert!(s2.macro_f1 >= 0.0 && s2.macro_f1 <= 1.0);
    }

    #[test]
    fn auc_is_invariant_to_monotone_transforms(
        pos in proptest::collection::vec(-5.0f32..5.0, 2..10),
        neg in proptest::collection::vec(-5.0f32..5.0, 2..10),
    ) {
        let mut scores: Vec<f32> = pos.iter().chain(neg.iter()).copied().collect();
        let mut labels = vec![1.0f32; pos.len()];
        labels.extend(std::iter::repeat_n(0.0, neg.len()));
        let a1 = roc_auc(&scores, &labels);
        // Monotone transform: sigmoid.
        for s in &mut scores {
            *s = 1.0 / (1.0 + (-*s).exp());
        }
        let a2 = roc_auc(&scores, &labels);
        prop_assert!((a1 - a2).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&a1));
    }

    #[test]
    fn mrr_bounds(
        pos in proptest::collection::vec(-5.0f32..5.0, 1..10),
        neg in proptest::collection::vec(-5.0f32..5.0, 1..10),
    ) {
        let m = mrr(&pos, &neg);
        prop_assert!(m > 0.0 && m <= 1.0, "mrr {m}");
    }

    #[test]
    fn autograd_linearity(scale in -3.0f32..3.0, m in small_matrix()) {
        // d/dx sum(s · x) = s everywhere.
        let x = Tensor::param(m.clone());
        x.scale(scale).sum().backward();
        let g = x.grad().unwrap();
        prop_assert!(g.data().iter().all(|&v| (v - scale).abs() < 1e-5));
    }

    #[test]
    fn hgb_split_is_a_partition(n in 10usize..200) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(n as u64);
        let s = Split::hgb(0..n as u32, &mut rng);
        let mut all: Vec<u32> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
        // Ratios within rounding error.
        prop_assert!((s.train.len() as f64 - 0.24 * n as f64).abs() <= 1.0);
        prop_assert!((s.val.len() as f64 - 0.06 * n as f64).abs() <= 1.0);
    }
}
