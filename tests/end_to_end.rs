//! Cross-crate integration tests: the full AutoAC pipeline from dataset
//! generation through search, retraining, and evaluation.
//!
//! Every test runs in one of two profiles:
//!
//! - **fast** (default) — shrunk epoch/seed budgets chosen as the smallest
//!   that still clear every assertion with margin. This keeps the tier-1
//!   suite interactive (~2 min wall on one core instead of ~6.5).
//! - **slow** (`AUTOAC_SLOW_TESTS=1`) — the original full budgets.
//!   `verify.sh` runs this profile; set it locally when touching search or
//!   training code.
//!
//! The assertions are identical in both profiles — only budgets differ.

use autoac::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny(name: &str, seed: u64) -> Dataset {
    synth::generate(&presets::by_name(name).unwrap(), Scale::Tiny, seed)
}

/// True when the full (original-budget) profile was requested.
fn slow() -> bool {
    match std::env::var("AUTOAC_SLOW_TESTS") {
        Ok(raw) => match autoac_obs::parse_bool_env("AUTOAC_SLOW_TESTS", &raw) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        },
        Err(_) => false,
    }
}

/// Picks the fast-profile value by default, the original under
/// `AUTOAC_SLOW_TESTS`.
fn sized(fast: usize, full: usize) -> usize {
    if slow() {
        full
    } else {
        fast
    }
}

fn gnn_for(data: &Dataset) -> GnnConfig {
    GnnConfig {
        in_dim: 24,
        hidden: 24,
        out_dim: data.num_classes.max(2),
        layers: 2,
        dropout: 0.2,
        ..Default::default()
    }
}

#[test]
fn autoac_end_to_end_on_every_classification_dataset() {
    for name in ["dblp", "acm", "imdb"] {
        let data = tiny(name, 0);
        let gnn = gnn_for(&data);
        let ac = AutoAcConfig {
            clusters: 4,
            search_epochs: sized(3, 8),
            train: TrainConfig { epochs: sized(16, 40), ..Default::default() },
            ..Default::default()
        };
        let run = run_autoac_classification(&data, Backbone::SimpleHgn, &gnn, &ac, 0);
        let chance = 1.0 / data.num_classes as f64;
        assert!(
            run.outcome.micro_f1 > chance + 0.1,
            "{name}: micro-f1 {:.3} vs chance {chance:.3}",
            run.outcome.micro_f1
        );
        assert_eq!(run.search.assignment.len(), data.missing_nodes().len(), "{name}");
        assert!(run.outcome.macro_f1 > 0.0 && run.outcome.macro_f1 <= 1.0);
    }
}

#[test]
fn autoac_completion_competitive_with_zero_fill_on_dblp() {
    // DBLP's target type has no attributes: completion must matter. The
    // tiny test split (~90 authors) is noisy, so compare seed-averaged
    // scores with a tolerance; the real comparison runs at `small` scale
    // in the Table II/VI harness.
    let data = tiny("dblp", 1);
    let gnn = gnn_for(&data);
    let train = TrainConfig { epochs: sized(20, 60), ..Default::default() };
    let mut zero_scores = Vec::new();
    let mut auto_scores = Vec::new();
    for seed in 0..sized(2, 3) as u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let zero_pipe =
            Pipeline::new(&data, Backbone::SimpleHgn, &gnn, CompletionMode::Zero, &mut rng);
        zero_scores.push(train_node_classification(&zero_pipe, &data, &train, seed).micro_f1);
        let ac =
            AutoAcConfig { clusters: 4, search_epochs: sized(5, 15), train, ..Default::default() };
        let auto = run_autoac_classification(&data, Backbone::SimpleHgn, &gnn, &ac, seed);
        auto_scores.push(auto.outcome.micro_f1);
    }
    let zero = autoac::eval::mean(&zero_scores);
    let auto = autoac::eval::mean(&auto_scores);
    // Tiny-scale DBLP has ~8 validation authors — far too few for the
    // bi-level search to rank completion ops reliably, so AutoAC can trail
    // simple baselines here (it wins at `small` scale; see Table II in
    // EXPERIMENTS.md). The invariant this test protects is "no blow-up":
    // the searched pipeline stays within a band of the zero-fill floor.
    assert!(
        auto >= zero - 0.12,
        "AutoAC mean {auto:.3} fell too far below zero-fill mean {zero:.3}"
    );
}

#[test]
fn link_prediction_end_to_end() {
    let data = tiny("lastfm", 2);
    let mut rng = StdRng::seed_from_u64(2);
    let split = mask_edges(&data, 0.1, &mut rng);
    let gnn = GnnConfig { in_dim: 24, hidden: 24, out_dim: 24, layers: 2, ..Default::default() };
    let ac = AutoAcConfig {
        clusters: 4,
        search_epochs: sized(3, 6),
        train: TrainConfig { epochs: sized(15, 30), ..Default::default() },
        ..Default::default()
    };
    let run = run_autoac_link_prediction(&split, Backbone::SimpleHgnLp, &gnn, &ac, 2);
    assert!(run.outcome.roc_auc > 0.55, "auc {:.3}", run.outcome.roc_auc);
    assert!(run.outcome.mrr > 0.0 && run.outcome.mrr <= 1.0);
}

#[test]
fn hgnnac_baseline_end_to_end() {
    let data = tiny("imdb", 3);
    let gnn = gnn_for(&data);
    let hc = HgnnAcConfig {
        emb_dim: 16,
        walk_len: 10,
        walks_per_node: 2,
        window: 3,
        negatives: 2,
        sg_epochs: 1,
        ..Default::default()
    };
    let (prelearn, out) = run_hgnnac_classification(
        &data,
        Backbone::SimpleHgn,
        &gnn,
        &hc,
        &TrainConfig { epochs: sized(15, 40), ..Default::default() },
        3,
    );
    assert!(prelearn > 0.0, "pre-learning must be timed");
    let chance = 1.0 / data.num_classes as f64;
    assert!(out.micro_f1 > chance, "micro {:.3}", out.micro_f1);
}

#[test]
fn search_is_deterministic_per_seed() {
    let data = tiny("imdb", 4);
    let gnn = gnn_for(&data);
    let ac = AutoAcConfig {
        clusters: 4,
        search_epochs: 5,
        train: TrainConfig { epochs: 5, ..Default::default() },
        ..Default::default()
    };
    let task = ClassificationTask::new(&data);
    let a = search(&data, Backbone::Gcn, &gnn, &ac, &task, 42);
    let b = search(&data, Backbone::Gcn, &gnn, &ac, &task, 42);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.cluster_of, b.cluster_of);
    assert_eq!(a.alpha.data(), b.alpha.data());
    let c = search(&data, Backbone::Gcn, &gnn, &ac, &task, 43);
    assert!(
        a.assignment != c.assignment || a.alpha.data() != c.alpha.data(),
        "different seeds should explore differently"
    );
}

#[test]
fn every_backbone_survives_autoac_search() {
    let data = tiny("imdb", 5);
    let gnn = gnn_for(&data);
    let ac = AutoAcConfig {
        clusters: 4,
        search_epochs: sized(2, 3),
        train: TrainConfig { epochs: sized(4, 8), ..Default::default() },
        ..Default::default()
    };
    for backbone in [
        Backbone::Gcn,
        Backbone::Gat,
        Backbone::SimpleHgn,
        Backbone::Magnn,
        Backbone::Han,
        Backbone::Hgt,
        Backbone::HetGnn,
        Backbone::Gtn,
    ] {
        let run = run_autoac_classification(&data, backbone, &gnn, &ac, 5);
        assert!(
            run.outcome.micro_f1.is_finite() && run.outcome.micro_f1 > 0.0,
            "{:?}",
            backbone
        );
    }
}

#[test]
fn missing_rate_ladder_is_monotone_in_rate() {
    let data = tiny("imdb", 6);
    // Giving types one-hot features lowers the missing rate monotonically.
    let inherent = data.missing_rate();
    let one = data.with_onehot_features(3); // keyword
    let two = one.with_onehot_features(2); // + actor
    let three = two.with_onehot_features(1); // + director
    assert!(inherent > one.missing_rate());
    assert!(one.missing_rate() > two.missing_rate());
    assert!(two.missing_rate() > three.missing_rate());
    assert_eq!(three.missing_rate(), 0.0);
}
