//! # autoac
//!
//! Facade crate for the AutoAC reproduction: re-exports the tensor engine,
//! graph substrate, datasets, GNN zoo, completion search space, metrics,
//! and the AutoAC search itself under one roof.
//!
//! ```no_run
//! use autoac::prelude::*;
//!
//! let data = synth::generate(&presets::imdb(), Scale::Small, 0);
//! let gnn = GnnConfig { out_dim: data.num_classes, ..Default::default() };
//! let run = run_autoac_classification(
//!     &data, Backbone::SimpleHgn, &gnn, &AutoAcConfig::default(), 0);
//! println!("Macro-F1 {:.4} / Micro-F1 {:.4}",
//!     run.outcome.macro_f1, run.outcome.micro_f1);
//! ```

#![warn(missing_docs)]

pub use autoac_completion as completion;
pub use autoac_core as core;
pub use autoac_data as data;
pub use autoac_eval as eval;
pub use autoac_graph as graph;
pub use autoac_nn as nn;
pub use autoac_tensor as tensor;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use autoac_completion::{CompletionContext, CompletionOp, CompletionOps};
    pub use autoac_core::{
        run_autoac_classification, run_autoac_link_prediction, run_hgnnac_classification,
        search, AutoAcConfig, Backbone, ClassificationTask, ClusteringMode, CompletionMode,
        ForwardPipe, HgnnAcConfig, LinkPredictionTask, Pipeline, TrainConfig,
    };
    pub use autoac_core::trainer::{
        eval_classification, eval_link_prediction, train_link_prediction,
        train_node_classification,
    };
    pub use autoac_data::{mask_edges, presets, synth, Dataset, Scale, Split};
    pub use autoac_eval::{f1_scores, mrr, roc_auc, welch_t_test};
    pub use autoac_graph::{Adjacency, HeteroGraph};
    pub use autoac_nn::{Forward, Gnn, GnnConfig};
    pub use autoac_tensor::{Matrix, Tensor};
}
