//! Node classification on DBLP: the target type (authors) has no raw
//! attributes, so completion quality directly gates accuracy. Compares
//! zero-fill, each single completion operation, and the AutoAC search.
//!
//! ```sh
//! cargo run --release --example node_classification
//! ```

use autoac::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = synth::generate(&presets::dblp(), Scale::Tiny, 7);
    println!("{}\n", data.stats_row());

    let gnn = GnnConfig {
        in_dim: 32,
        hidden: 32,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.3,
        ..Default::default()
    };
    let train = TrainConfig { epochs: 80, ..Default::default() };

    // Zero-fill and single-op baselines.
    let mut modes: Vec<(String, CompletionMode)> =
        vec![("zero-fill".into(), CompletionMode::Zero)];
    for op in CompletionOp::ALL {
        modes.push((op.name().into(), CompletionMode::Single(op)));
    }
    println!("{:<14} {:>9} {:>9}", "completion", "Macro-F1", "Micro-F1");
    for (name, mode) in modes {
        let mut rng = StdRng::seed_from_u64(7);
        let pipe = Pipeline::new(&data, Backbone::SimpleHgn, &gnn, mode, &mut rng);
        let out = train_node_classification(&pipe, &data, &train, 7);
        println!("{:<14} {:>9.4} {:>9.4}", name, out.macro_f1, out.micro_f1);
    }

    // AutoAC.
    let ac = AutoAcConfig { search_epochs: 20, train, ..Default::default() };
    let run = run_autoac_classification(&data, Backbone::SimpleHgn, &gnn, &ac, 7);
    println!(
        "{:<14} {:>9.4} {:>9.4}   <- searched per-node ops",
        "AutoAC", run.outcome.macro_f1, run.outcome.micro_f1
    );
}
