//! Quickstart: run SimpleHGN-AutoAC on the synthetic IMDB dataset and
//! print what the search found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autoac::prelude::*;

fn main() {
    // 1. Generate a heterogeneous graph mirroring HGB's IMDB statistics
    //    (movies have raw attributes; directors/actors/keywords don't).
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    println!("{}", data.stats_row());
    println!(
        "{} of {} nodes have missing attributes ({:.0}%)",
        data.missing_nodes().len(),
        data.graph.num_nodes(),
        data.missing_rate() * 100.0
    );

    // 2. Configure the backbone and the AutoAC search.
    let gnn = GnnConfig {
        in_dim: 32,
        hidden: 32,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.3,
        ..Default::default()
    };
    let ac = AutoAcConfig {
        clusters: 8,
        lambda: 0.4,
        search_epochs: 20,
        train: TrainConfig { epochs: 80, ..Default::default() },
        ..Default::default()
    };

    // 3. Search for per-node completion operations, retrain, evaluate.
    let run = run_autoac_classification(&data, Backbone::SimpleHgn, &gnn, &ac, 0);

    println!("\nsearch took {:.2}s", run.search.search_seconds);
    println!("searched op distribution over V⁻:");
    for op in CompletionOp::ALL {
        let n = run.search.op_histogram[op.index()];
        let pct = 100.0 * n as f64 / run.search.assignment.len().max(1) as f64;
        println!("  {:<12} {:>6} nodes ({pct:.1}%)", op.name(), n);
    }
    println!(
        "\ntest Macro-F1 {:.4} | Micro-F1 {:.4} (retrain {:.2}s, {} epochs)",
        run.outcome.macro_f1, run.outcome.micro_f1, run.outcome.seconds, run.outcome.epochs_run
    );
}
