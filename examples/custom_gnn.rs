//! Extending the library: plug a *custom* GNN into the training machinery
//! by implementing the `Gnn` trait, then wire it through a custom
//! `ForwardPipe` with a hand-picked completion assignment.
//!
//! AutoAC is a generic framework (paper §I) — this example shows the
//! extension seam a downstream user would use.
//!
//! ```sh
//! cargo run --release --example custom_gnn
//! ```

use autoac::nn::layers::Linear;
use autoac::prelude::*;
use autoac::tensor::spmm;
use autoac_graph::norm;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// A two-layer "GCN with skip connection" — deliberately not one of the
/// built-in backbones.
struct SkipGcn {
    adj: Rc<autoac::tensor::Csr>,
    l1: Linear,
    l2: Linear,
    skip: Linear,
}

impl SkipGcn {
    fn new(graph: &HeteroGraph, in_dim: usize, hidden: usize, out: usize, rng: &mut StdRng) -> Self {
        Self {
            adj: Rc::new(norm::sym_norm_adj(graph)),
            l1: Linear::new(in_dim, hidden, true, rng),
            l2: Linear::new(hidden, out, true, rng),
            skip: Linear::new(in_dim, out, false, rng),
        }
    }
}

impl Gnn for SkipGcn {
    fn name(&self) -> &'static str {
        "SkipGCN"
    }

    fn forward(&self, x0: &Tensor, _training: bool, _rng: &mut StdRng) -> Forward {
        let h = spmm(&self.adj, &self.adj, &self.l1.forward(x0)).relu();
        let out = spmm(&self.adj, &self.adj, &self.l2.forward(&h)).add(&self.skip.forward(x0));
        Forward { hidden: h, output: out }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p.extend(self.skip.params());
        p
    }
}

/// Encoder → fixed completion → custom model.
struct CustomPipe {
    encoder: autoac::nn::FeatureEncoder,
    ops: CompletionOps,
    model: SkipGcn,
    assignment: Vec<CompletionOp>,
    features: Vec<Option<Matrix>>,
}

impl ForwardPipe for CustomPipe {
    fn forward(&self, training: bool, rng: &mut StdRng) -> Forward {
        let x0 = self.encoder.encode(&self.features);
        let x = autoac::completion::complete_assigned(&self.ops, &x0, &self.assignment);
        self.model.forward(&x, training, rng)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        p.extend(self.ops.params());
        p.extend(self.model.params());
        p
    }
}

fn main() {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 11);
    println!("{}\n", data.stats_row());
    let mut rng = StdRng::seed_from_u64(11);

    // Hand-pick completion ops by degree: hubs aggregate locally, leaves
    // fall back to one-hot — the heuristic AutoAC automates.
    let deg = data.graph.undirected_degrees();
    let assignment: Vec<CompletionOp> = data
        .missing_nodes()
        .iter()
        .map(|&v| {
            if deg[v as usize] >= 3 {
                CompletionOp::Gcn
            } else if deg[v as usize] >= 1 {
                CompletionOp::Ppnp
            } else {
                CompletionOp::OneHot
            }
        })
        .collect();

    let in_dim = 32;
    let pipe = CustomPipe {
        encoder: autoac::nn::FeatureEncoder::new(&data.graph, &data.features, in_dim, &mut rng),
        ops: CompletionOps::new(
            CompletionContext::build(&data.graph, &data.has_attr()),
            in_dim,
            &mut rng,
        ),
        model: SkipGcn::new(&data.graph, in_dim, 32, data.num_classes, &mut rng),
        assignment,
        features: data.features.clone(),
    };

    let out = train_node_classification(
        &pipe,
        &data,
        &TrainConfig { epochs: 80, ..Default::default() },
        11,
    );
    println!(
        "SkipGCN + degree-heuristic completion: Macro-F1 {:.4} | Micro-F1 {:.4}",
        out.macro_f1, out.micro_f1
    );
}
