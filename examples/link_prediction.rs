//! Link prediction on LastFM (user-artist edges): mask 10% of the target
//! edges, train SimpleHGN with and without AutoAC completion, and compare
//! ROC-AUC / MRR on the held-out edges.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use autoac::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = synth::generate(&presets::lastfm(), Scale::Tiny, 3);
    println!("{}\n", data.stats_row());

    let mut rng = StdRng::seed_from_u64(3);
    let split = mask_edges(&data, 0.10, &mut rng);
    println!(
        "masked {} positive edges; sampled {} negatives\n",
        split.test_pos.len(),
        split.test_neg.len()
    );

    let gnn = GnnConfig {
        in_dim: 32,
        hidden: 32,
        out_dim: 32, // embedding dim for the dot-product decoder
        layers: 2,
        dropout: 0.2,
        ..Default::default()
    };
    let train = TrainConfig { epochs: 60, ..Default::default() };

    // Baseline: handcrafted one-hot completion.
    let pipe = Pipeline::new(
        &split.train_data,
        Backbone::SimpleHgnLp,
        &gnn,
        CompletionMode::Single(CompletionOp::OneHot),
        &mut rng,
    );
    let base = train_link_prediction(&pipe, &split, &train, 3);
    println!("SimpleHGN          ROC-AUC {:.4} | MRR {:.4}", base.roc_auc, base.mrr);

    // AutoAC: search completion ops against the link-prediction loss.
    let ac = AutoAcConfig { search_epochs: 15, train, ..Default::default() };
    let run = run_autoac_link_prediction(&split, Backbone::SimpleHgnLp, &gnn, &ac, 3);
    println!(
        "SimpleHGN-AutoAC   ROC-AUC {:.4} | MRR {:.4}  (search {:.2}s)",
        run.outcome.roc_auc, run.outcome.mrr, run.search.search_seconds
    );
}
