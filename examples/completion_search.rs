//! A look inside the search: runs the AutoAC search stage alone on ACM and
//! inspects what it produces — the α matrix, cluster occupancy, per-type
//! op choices, and the clustering-loss trace (the raw material of the
//! paper's Figures 4–7).
//!
//! ```sh
//! cargo run --release --example completion_search
//! ```

use autoac::core::search as run_search;
use autoac::prelude::*;

fn main() {
    let data = synth::generate(&presets::acm(), Scale::Tiny, 1);
    println!("{}\n", data.stats_row());

    let gnn = GnnConfig {
        in_dim: 32,
        hidden: 32,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.3,
        ..Default::default()
    };
    let ac = AutoAcConfig {
        clusters: 6,
        lambda: 0.4,
        search_epochs: 25,
        ..Default::default()
    };
    let task = ClassificationTask::new(&data);
    let out = run_search(&data, Backbone::SimpleHgn, &gnn, &ac, &task, 1);

    println!("searched in {:.2}s over {} V⁻ nodes\n", out.search_seconds, out.assignment.len());

    println!("alpha (clusters × ops), after prox_C2:");
    for r in 0..out.alpha.rows() {
        let cells: Vec<String> =
            out.alpha.row(r).iter().map(|v| format!("{v:.3}")).collect();
        let chosen = CompletionOp::from_index(out.alpha.argmax_row(r));
        println!("  cluster {r}: [{}] -> {}", cells.join(", "), chosen.name());
    }

    println!("\ncluster occupancy:");
    let mut occupancy = vec![0usize; ac.clusters];
    for &c in &out.cluster_of {
        occupancy[c as usize] += 1;
    }
    for (c, n) in occupancy.iter().enumerate() {
        println!("  cluster {c}: {n} nodes");
    }

    println!("\nper-node-type op distribution:");
    let missing = data.missing_nodes();
    for t in 0..data.graph.num_node_types() {
        let range = data.graph.nodes_of_type(t);
        let mut counts = [0usize; 4];
        for (pos, &v) in missing.iter().enumerate() {
            if range.contains(&(v as usize)) {
                counts[out.assignment[pos].index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            continue;
        }
        let parts: Vec<String> = CompletionOp::ALL
            .iter()
            .map(|op| {
                format!("{} {:.0}%", op.name(), 100.0 * counts[op.index()] as f64 / total as f64)
            })
            .collect();
        println!("  {:<8}: {}", data.graph.node_type_name(t), parts.join(", "));
    }

    println!("\nL_GmoC trace (first/last 5):");
    let k = out.gmoc_trace.len();
    for (e, v) in out.gmoc_trace.iter().enumerate() {
        if e < 5 || e + 5 >= k {
            println!("  epoch {e:>3}: {v:.5}");
        }
    }
}
