//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal wall-clock harness with the API the benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Reporting is plain text: median / mean / min over the collected samples,
//! one line per benchmark. There are no plots, no statistical regression
//! analysis, and no baseline storage — compare runs by eye or with
//! `scripts/` tooling.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like upstream.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; collects and prints timings.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks (`group/name` reporting).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 30 }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; here a no-op).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the harness-chosen number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow iteration count until one sample takes >= ~2ms, so
    // cheap kernels are not dominated by timer noise.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    println!(
        "bench {name:<40} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        sample_size,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut hits = 0u64;
        group.bench_function("inner", |b| b.iter(|| hits += 1));
        group.finish();
        assert!(hits > 0);
    }
}
