//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen_range`,
//! `gen_bool`), [`rngs::StdRng`], and [`seq::SliceRandom`]
//! (`shuffle`/`choose`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms and plenty for tests, synthetic data generation, and parameter
//! init. It does NOT reproduce upstream `rand`'s exact streams and is not
//! cryptographically secure.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from the type's standard distribution (floats: `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Bernoulli sample with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, exactly representable in f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce: the "standard" distribution of upstream
/// rand (full-width integers, unit-interval floats, fair bools).
pub trait StandardSample {
    /// Draws one standard-distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// One uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

// A single generic impl (like upstream) so `rng.gen_range(-0.01..0.01)`
// infers the element type from the call site instead of defaulting to f64.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift keeps modulo bias below 2^-64 — invisible
                // at the sample counts used here.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// Pseudo-random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Process-entropy RNG standing in for the OS entropy source: a
    /// thread-local [`StdRng`] seeded once per thread from the hasher
    /// `RandomState` (which the standard library seeds with real OS
    /// entropy). Non-reproducible across processes by construction.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    std::thread_local! {
        static OS_STATE: std::cell::RefCell<StdRng> = std::cell::RefCell::new({
            use std::hash::{BuildHasher, Hasher};
            let seed = std::collections::hash_map::RandomState::new().build_hasher().finish();
            StdRng::seed_from_u64(seed)
        });
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            OS_STATE.with(|s| s.borrow_mut().next_u32())
        }

        fn next_u64(&mut self) -> u64 {
            OS_STATE.with(|s| s.borrow_mut().next_u64())
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            OS_STATE.with(|s| s.borrow_mut().fill_bytes(dest))
        }
    }

    /// The workspace's standard PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state. Together with [`StdRng::from_state`]
        /// this lets checkpointing code freeze a generator mid-stream and
        /// later resume the exact same sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro (the generator
        /// would emit zeros forever); mirroring [`SeedableRng::from_seed`],
        /// it is replaced by the same non-zero nudge state, so a round trip
        /// through `state`/`from_state` always continues the original
        /// stream (a live generator can never reach the all-zero state).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self { s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3] };
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads of 10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "identity shuffle is vanishingly unlikely");
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([7u32].choose(&mut rng), Some(&7));
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
        // Burn some draws so the captured state is mid-stream.
        for _ in 0..37 {
            rng.next_u64();
        }
        let state = rng.state();
        let expect: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(state);
        let got: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
        assert_eq!(got, expect, "from_state must continue the exact stream");
        // And the resumed generator's own state round-trips too.
        assert_eq!(resumed.state(), rng.state());
    }

    #[test]
    fn from_state_rejects_all_zero_fixed_point() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.state(), [0; 4]);
        // Must match from_seed's nudge so both zero-entropy paths agree.
        assert_eq!(rng.state(), StdRng::from_seed([0u8; 32]).state());
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn fill_bytes_nonzero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
