//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream worth knowing:
//!
//! - **Deterministic**: every test derives its RNG seed from the test name
//!   (FNV-1a), so a failure reproduces on every run. There is no persistence
//!   file handling — `*.proptest-regressions` files are not replayed; pin any
//!   counterexample you care about as an explicit `#[test]` instead.
//! - **No shrinking**: the failing inputs are printed verbatim (they are
//!   `Debug`), not minimized.

/// Core generation abstraction: a recipe for producing random values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A source of random `Value`s, composable with `prop_map` /
    /// `prop_flat_map`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Uses each generated value to build a second strategy, then draws
        /// from that (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "proptest vec: empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Config and the case-loop driver used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Run-count knob mirroring upstream's `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Executes `body` for each case with a name-derived deterministic RNG.
    ///
    /// `body` receives the RNG plus a scratch vec it must fill with the
    /// `Debug` renderings of the generated inputs; on panic those are printed
    /// before the panic is propagated so the failing case is visible.
    pub fn run<F>(config: &ProptestConfig, test_name: &str, body: F)
    where
        F: Fn(&mut StdRng, &mut Vec<String>),
    {
        let seed = fnv1a(test_name);
        for case in 0..config.cases {
            let mut rng = StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut inputs: Vec<String> = Vec::new();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng, &mut inputs)));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest: test `{test_name}` failed at case {case}/{} (seed {seed:#x})",
                    config.cases
                );
                for (i, input) in inputs.iter().enumerate() {
                    eprintln!("  input[{i}] = {input}");
                }
                resume_unwind(panic);
            }
        }
    }
}

/// Everything a property test module needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use rand::rngs::StdRng;
}

pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

/// Asserts a condition inside a property test (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test (panics with both values).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Declares a block of property tests; accepts an optional leading
/// `#![proptest_config(...)]` exactly like upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`] — one test fn per muncher step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng, __inputs| {
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                    __inputs.push(format!("{:?}", __value));
                    let $pat = __value;
                )+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let s = crate::collection::vec((0u32..5, -1.0f32..1.0), 3..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 5);
                assert!((-1.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn exact_size_vec() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let s = crate::collection::vec(0usize..10, 7usize);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }

    #[test]
    fn flat_map_dependent_generation() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u32..100, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_params(a in 0u64..100, v in crate::collection::vec(0u32..4, 0..6)) {
            prop_assert!(a < 100);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 4).count(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in -2.0f64..2.0) {
            prop_assert!(x.abs() <= 2.0);
        }
    }
}
