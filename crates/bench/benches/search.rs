//! Criterion benchmarks for the search machinery: discrete-constraint
//! completion vs. full-mixture completion (the cost driver behind
//! Table VIII), and a full search epoch in both modes.

use autoac_completion::{
    complete_assigned, complete_mixture, CompletionContext, CompletionOp, CompletionOps,
};
use autoac_core::{search, AutoAcConfig, Backbone, ClassificationTask, TrainConfig};
use autoac_data::{presets, synth, Scale};
use autoac_nn::GnnConfig;
use autoac_tensor::{Matrix, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_completion_modes(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    let ctx = CompletionContext::build(&data.graph, &data.has_attr());
    let mut rng = StdRng::seed_from_u64(0);
    let n_missing = ctx.num_missing();
    let ops = CompletionOps::new(ctx, 64, &mut rng);
    let n = data.graph.num_nodes();
    let x0 = Tensor::constant(autoac_tensor::init::random_normal(n, 64, 0.1, &mut rng));

    // Discrete: a single activated op per node (all GCN here — the common
    // case after convergence).
    let assignment = vec![CompletionOp::Gcn; n_missing];
    c.bench_function("complete_discrete_single_active_op", |b| {
        b.iter(|| black_box(complete_assigned(&ops, &x0, &assignment).to_matrix()))
    });

    // Mixture: all four ops evaluated and blended.
    let weights = Tensor::constant(Matrix::full(n_missing, 4, 0.25));
    c.bench_function("complete_mixture_all_ops", |b| {
        b.iter(|| black_box(complete_mixture(&ops, &x0, &weights).to_matrix()))
    });
}

fn bench_search_epoch(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    let gnn = GnnConfig {
        in_dim: 32,
        hidden: 32,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.0,
        ..Default::default()
    };
    let task = ClassificationTask::new(&data);
    let mut group = c.benchmark_group("search_epoch");
    group.sample_size(10);
    for (label, discrete) in [("discrete", true), ("mixture", false)] {
        let ac = AutoAcConfig {
            clusters: 8,
            search_epochs: 1,
            discrete,
            train: TrainConfig { epochs: 1, ..Default::default() },
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| black_box(search(&data, Backbone::Gcn, &gnn, &ac, &task, 0)))
        });
    }
    group.finish();
}

criterion_group!(search_benches, bench_completion_modes, bench_search_epoch);
criterion_main!(search_benches);
