//! Criterion microbenchmarks for the kernels behind the paper's
//! complexity analysis (§IV-E): the four completion operations, spmm,
//! edge softmax, the proximal projections, and the modularity loss.

use autoac_completion::{CompletionContext, CompletionOp, CompletionOps};
use autoac_core::cluster::ModularityContext;
use autoac_core::proximal::{prox_c1, prox_c2};
use autoac_data::{presets, synth, Scale};
use autoac_graph::{norm, OpCache};
use autoac_tensor::parallel::with_threads;
use autoac_tensor::{spmm, Matrix, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::rc::Rc;

fn bench_completion_ops(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    let ctx = CompletionContext::build(&data.graph, &data.has_attr());
    let mut rng = StdRng::seed_from_u64(0);
    let ops = CompletionOps::new(ctx, 64, &mut rng);
    let n = data.graph.num_nodes();
    let x0 = Tensor::constant(autoac_tensor::init::random_normal(n, 64, 0.1, &mut rng));
    let mut group = c.benchmark_group("completion_op");
    for op in CompletionOp::ALL {
        group.bench_function(op.name(), |b| {
            b.iter(|| black_box(ops.op_output(op, &x0).to_matrix()))
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    let adj = Rc::new(norm::sym_norm_adj(&data.graph));
    let mut rng = StdRng::seed_from_u64(1);
    let n = data.graph.num_nodes();
    let x = Tensor::constant(autoac_tensor::init::random_normal(n, 64, 0.1, &mut rng));
    c.bench_function("spmm_sym_adj_64", |b| {
        b.iter(|| black_box(spmm(&adj, &adj, &x).to_matrix()))
    });
}

fn bench_edge_softmax(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    let idx = autoac_nn::EdgeIndex::typed(&data.graph);
    let mut rng = StdRng::seed_from_u64(2);
    let scores = Tensor::constant(autoac_tensor::init::random_normal(idx.len(), 1, 1.0, &mut rng));
    c.bench_function("edge_softmax", |b| {
        b.iter(|| black_box(scores.group_softmax(&idx.dst, idx.num_nodes).to_matrix()))
    });
}

fn bench_proximal(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let alpha = autoac_tensor::init::random_uniform(2048, 4, 0.0, 1.0, &mut rng);
    c.bench_function("prox_c1_2048x4", |b| b.iter(|| black_box(prox_c1(&alpha))));
    c.bench_function("prox_c2_2048x4", |b| b.iter(|| black_box(prox_c2(&alpha))));
}

fn bench_modularity_loss(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Tiny, 0);
    let ctx = ModularityContext::build(&data.graph, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let n = data.graph.num_nodes();
    let logits = Tensor::constant(autoac_tensor::init::random_normal(n, 8, 0.5, &mut rng));
    c.bench_function("modularity_loss", |b| {
        b.iter(|| black_box(ctx.loss(&logits.softmax_rows()).item()))
    });
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = autoac_tensor::init::random_normal(256, 256, 1.0, &mut rng);
    let b_m = autoac_tensor::init::random_normal(256, 256, 1.0, &mut rng);
    c.bench_function("matmul_256", |bch| bch.iter(|| black_box(a.matmul(&b_m))));
    let _ = Matrix::zeros(1, 1);
}

/// §IV-E complexity scaling: completion-phase cost vs. graph size. Mean
/// aggregation should scale with edges incident to `V⁻`; PPNP with the
/// whole graph (`O(N·k²)` per §IV-E).
fn bench_completion_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("completion_scaling");
    group.sample_size(10);
    for (label, factor) in [("n_div32", 1.0 / 32.0), ("n_div16", 1.0 / 16.0), ("n_div8", 1.0 / 8.0)]
    {
        let data = synth::generate(&presets::imdb(), Scale::Factor(factor), 0);
        let ctx = CompletionContext::build(&data.graph, &data.has_attr());
        let mut rng = StdRng::seed_from_u64(0);
        let ops = CompletionOps::new(ctx, 64, &mut rng);
        let n = data.graph.num_nodes();
        let x0 = Tensor::constant(autoac_tensor::init::random_normal(n, 64, 0.1, &mut rng));
        group.bench_function(format!("mean/{label}"), |b| {
            b.iter(|| black_box(ops.op_output(CompletionOp::Mean, &x0).to_matrix()))
        });
        group.bench_function(format!("ppnp/{label}"), |b| {
            b.iter(|| black_box(ops.op_output(CompletionOp::Ppnp, &x0).to_matrix()))
        });
    }
    group.finish();
}

/// Serial vs. parallel CSR kernels (the tentpole comparison): the same
/// `matmul_dense` / `transpose` under a pinned thread count of 1 against
/// the hardware thread count. On a multi-core host the parallel rows
/// should win ~linearly for the big SpMM; results are bitwise identical
/// either way (see `crates/tensor/tests/parallel_parity.rs`).
fn bench_spmm_serial_vs_parallel(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Small, 0);
    let adj = Rc::new(norm::sym_norm_adj(&data.graph));
    let mut rng = StdRng::seed_from_u64(6);
    let n = data.graph.num_nodes();
    let x = autoac_tensor::init::random_normal(n, 64, 0.1, &mut rng);
    let hw = autoac_tensor::parallel::num_threads().max(2);
    let mut group = c.benchmark_group("spmm_threads");
    group.sample_size(20);
    group.bench_function("matmul_dense/serial_1", |b| {
        b.iter(|| with_threads(1, || black_box(adj.matmul_dense(&x))))
    });
    group.bench_function(format!("matmul_dense/parallel_{hw}"), |b| {
        b.iter(|| with_threads(hw, || black_box(adj.matmul_dense(&x))))
    });
    group.bench_function("transpose/serial_1", |b| {
        b.iter(|| with_threads(1, || black_box(adj.transpose())))
    });
    group.bench_function(format!("transpose/parallel_{hw}"), |b| {
        b.iter(|| with_threads(hw, || black_box(adj.transpose())))
    });
    group.finish();
}

/// Cold operator construction vs. fetching through a warm [`OpCache`]: the
/// cached path is a HashMap probe plus an `Rc` clone, so the gap *is* the
/// per-pipeline cost the cache removes from search + retrain runs.
fn bench_op_cache(c: &mut Criterion) {
    let data = synth::generate(&presets::imdb(), Scale::Small, 0);
    let has = data.has_attr();
    let mut group = c.benchmark_group("op_cache");
    group.sample_size(20);
    group.bench_function("completion_ctx/cold", |b| {
        b.iter(|| black_box(CompletionContext::build(&data.graph, &has)))
    });
    let cache = OpCache::new(&data.graph);
    let warm = CompletionContext::build_cached(&data.graph, &has, &cache);
    drop(warm);
    group.bench_function("completion_ctx/cached", |b| {
        b.iter(|| black_box(CompletionContext::build_cached(&data.graph, &has, &cache)))
    });
    group.finish();
    let (hits, misses) = cache.stats();
    println!("op_cache stats after bench: {hits} hits / {misses} misses");
}

criterion_group!(
    kernels,
    bench_completion_ops,
    bench_spmm,
    bench_spmm_serial_vs_parallel,
    bench_op_cache,
    bench_edge_softmax,
    bench_proximal,
    bench_modularity_loss,
    bench_dense_matmul,
    bench_completion_scaling
);
criterion_main!(kernels);
