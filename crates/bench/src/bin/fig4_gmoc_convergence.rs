//! Figure 4: convergence of the unsupervised clustering loss `L_GmoC`
//! during the search, on DBLP / ACM / IMDB. Prints the per-epoch trace as
//! a plottable series.

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{search, Backbone, ClassificationTask};

fn main() {
    let args = Args::parse();
    println!("### Fig. 4 — L_GmoC convergence (scale {:?}, seed 0)", args.scale);
    for dataset in ["DBLP", "ACM", "IMDB"] {
        let data = args.dataset(dataset, 0);
        let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
        let ac = autoac_cfg(Backbone::SimpleHgn, dataset, &args);
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::SimpleHgn, &cfg, &ac, &task, 0);
        println!("\n{dataset}: epoch, L_GmoC");
        for (e, v) in out.gmoc_trace.iter().enumerate() {
            println!("{e}, {v:.5}");
        }
        let first = out.gmoc_trace.first().copied().unwrap_or(0.0);
        let last = out.gmoc_trace.last().copied().unwrap_or(0.0);
        println!("# {dataset}: {first:.4} -> {last:.4} ({})",
            if last < first { "decreasing ✓" } else { "NOT decreasing" });
    }
}
