//! Table VIII: ablation of the discrete constraints — Algorithm 1's
//! proximal search vs. the relaxed softmax-mixture search (every op
//! evaluated in every ω step, argmax discretization at the end), comparing
//! accuracy and search time.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone};

fn main() {
    let args = Args::parse();
    for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            header(
                &format!(
                    "Table VIII — {} on {dataset} (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1", "search s"],
            );
            for discrete in [true, false] {
                let (mut ma, mut mi) = (Vec::new(), Vec::new());
                let mut search_secs = 0.0;
                for seed in 0..args.seeds as u64 {
                    let data = args.dataset(dataset, seed);
                    let cfg = gnn_cfg(&data, backbone, false);
                    let mut ac = autoac_cfg(backbone, dataset, &args);
                    ac.discrete = discrete;
                    let run = run_autoac_classification(&data, backbone, &cfg, &ac, seed);
                    ma.push(run.outcome.macro_f1);
                    mi.push(run.outcome.micro_f1);
                    search_secs += run.search.search_seconds;
                }
                let label = if discrete {
                    format!("{}-AutoAC", backbone.name())
                } else {
                    "w/o discrete constraints".to_string()
                };
                row(
                    &label,
                    &[cell(&ma), cell(&mi), format!("{:.1}", search_secs / args.seeds as f64)],
                );
            }
        }
    }
}
