//! Kill-and-resume smoke target for `scripts/verify.sh`: runs one small
//! AutoAC classification run (search + retrain) and writes a JSON digest of
//! everything that must be bit-stable across a crash/resume cycle —
//! α bits, op assignment, cluster assignment, the `L_GmoC` trace, and the
//! test metrics — and nothing timing-dependent.
//!
//! Extra flags beyond the shared harness set:
//!
//! ```text
//! --out FILE            where to write the JSON digest    (default: stdout)
//! --epoch-sleep-ms N    sleep at every epoch boundary — paces the run so an
//!                       external `kill -9` lands mid-run  (default: 0)
//! ```

use std::path::PathBuf;

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{run_autoac_classification_checkpointed, Backbone};
use autoac_data::json::{self, Value};

fn main() {
    let mut out_path: Option<PathBuf> = None;
    let mut sleep_ms: u64 = 0;
    let args = Args::parse_extra(|flag, value| match flag {
        "--out" => {
            out_path = Some(PathBuf::from(value));
            true
        }
        "--epoch-sleep-ms" => {
            sleep_ms = value.parse().expect("--epoch-sleep-ms takes a millisecond count");
            true
        }
        _ => false,
    });

    let seed = 0;
    let data = args.dataset("IMDB", seed);
    let cfg = gnn_cfg(&data, Backbone::Gcn, false);
    let ac = autoac_cfg(Backbone::Gcn, "IMDB", &args);
    let policy = args.ckpt_policy("smoke").map(|p| p.throttle_ms(sleep_ms));
    let run =
        run_autoac_classification_checkpointed(&data, Backbone::Gcn, &cfg, &ac, seed, policy.as_ref());

    let ints = |xs: &[usize]| Value::Arr(xs.iter().map(|&x| Value::Num(x as f64)).collect());
    let bits32 =
        |xs: &[f32]| Value::Arr(xs.iter().map(|x| Value::Num(x.to_bits() as f64)).collect());
    // f64 bit patterns overflow JSON's exact-integer range, so hex strings.
    let bits64 = |x: f64| Value::Str(format!("{:016x}", x.to_bits()));
    let digest = Value::Obj(vec![
        ("assignment".into(), ints(&run.search.assignment.iter().map(|op| op.index()).collect::<Vec<_>>())),
        ("cluster_of".into(), ints(&run.search.cluster_of.iter().map(|&c| c as usize).collect::<Vec<_>>())),
        ("op_histogram".into(), ints(&run.search.op_histogram)),
        ("alpha_bits".into(), bits32(run.search.alpha.data())),
        ("gmoc_trace_bits".into(), bits32(&run.search.gmoc_trace)),
        ("macro_f1_bits".into(), bits64(run.outcome.macro_f1)),
        ("micro_f1_bits".into(), bits64(run.outcome.micro_f1)),
        ("retrain_epochs".into(), Value::Num(run.outcome.epochs_run as f64)),
    ]);
    let text = json::to_string(&digest);
    match out_path {
        Some(path) => std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }),
        None => println!("{text}"),
    }
}
