//! Figure 5: distribution of searched completion operations per dataset
//! and backbone (SimpleHGN-AutoAC and MAGNN-AutoAC).

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{search, Backbone, ClassificationTask};
use autoac_completion::CompletionOp;

fn main() {
    let args = Args::parse();
    println!(
        "### Fig. 5 — distribution of searched completion operations (scale {:?}, seed 0)",
        args.scale
    );
    println!(
        "| {:<10} | {:<10} | {:>8} | {:>8} | {:>8} | {:>11} |",
        "backbone", "dataset", "MEAN", "GCN", "PPNP", "One-hot"
    );
    for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            let data = args.dataset(dataset, 0);
            let cfg = gnn_cfg(&data, backbone, false);
            let ac = autoac_cfg(backbone, dataset, &args);
            let task = ClassificationTask::new(&data);
            let out = search(&data, backbone, &cfg, &ac, &task, 0);
            let total: usize = out.op_histogram.iter().sum();
            let pct = |op: CompletionOp| {
                100.0 * out.op_histogram[op.index()] as f64 / total.max(1) as f64
            };
            println!(
                "| {:<10} | {:<10} | {:>7.1}% | {:>7.1}% | {:>7.1}% | {:>10.1}% |",
                backbone.name(),
                dataset,
                pct(CompletionOp::Mean),
                pct(CompletionOp::Gcn),
                pct(CompletionOp::Ppnp),
                pct(CompletionOp::OneHot),
            );
        }
    }
}
