//! Sharding / minibatch scaling benchmark (`results/BENCH_shard.json`).
//!
//! Three phases, all timed from the obs span tree (`train/epoch`) rather
//! than private timers:
//!
//! 1. **1M-node A/B** — generates a million-node power-law heterogeneous
//!    graph with the streaming scale generator and times training epochs
//!    under three schedules: legacy full-batch, neighbor-sampled
//!    minibatch, and type-aware shards. The sampled schedule must be
//!    ≥ 5× faster per epoch than full-batch (asserted).
//! 2. **Paper-scale drift** — trains sampled vs full-batch to the same
//!    epoch budget on the paper-scale DBLP preset (the synthetic graphs
//!    carry planted learnable structure, unlike the timing-only scale
//!    generator) and reports the F1 drift introduced by sampling.
//! 3. **10M-node generation profile** — generation-only run
//!    (`feature_dim = 0`) of a ten-million-node graph, reporting wall
//!    time, throughput, and the degree profile (power-law exponent
//!    estimate included, validated).
//!
//! `--smoke` replaces all of this with a tiny-graph pass: it asserts the
//! full-batch minibatch config is *bitwise identical* to the legacy
//! pipeline, then exercises the sampled and shard schedules end to end.
//! Pass `--out PATH` to redirect the JSON artifact — the verify harness
//! points smoke runs at a scratch directory so the committed paper-scale
//! artifact is never clobbered (the same rule `bench_alloc` follows).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use autoac_core::{
    train_node_classification, train_node_classification_minibatch, Backbone, ClsOutcome,
    CompletionMode, MinibatchConfig, MinibatchPipeline, Pipeline, TrainConfig,
};
use autoac_data::{
    degree_profile, generate_scale, presets, synth, Dataset, DegreeProfile, Scale, ScaleSpec,
};
use autoac_graph::ShardStrategy;
use autoac_nn::GnnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0;

struct BenchArgs {
    out: PathBuf,
    smoke: bool,
    /// Node count for the A/B epoch-time comparison (phase 1).
    ab_nodes: usize,
    /// Measured epochs per A/B arm.
    ab_epochs: usize,
    /// Epoch budget for both drift arms (phase 2, paper-scale DBLP).
    drift_epochs: usize,
    /// Node count for the generation-only profile (phase 3).
    gen_nodes: usize,
}

impl BenchArgs {
    fn parse() -> Self {
        let mut a = BenchArgs {
            out: PathBuf::from("results/BENCH_shard.json"),
            smoke: false,
            ab_nodes: 1_000_000,
            ab_epochs: 3,
            drift_epochs: 40,
            gen_nodes: 10_000_000,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if flag == "--smoke" {
                a.smoke = true;
                i += 1;
                continue;
            }
            let value = argv.get(i + 1).map(String::as_str).unwrap_or_else(|| usage(flag));
            match flag {
                "--out" => a.out = PathBuf::from(value),
                "--ab-nodes" => a.ab_nodes = parse_num(flag, value),
                "--ab-epochs" => a.ab_epochs = parse_num(flag, value).max(1),
                "--drift-epochs" => a.drift_epochs = parse_num(flag, value).max(1),
                "--gen-nodes" => a.gen_nodes = parse_num(flag, value),
                _ => usage(flag),
            }
            i += 2;
        }
        a
    }
}

fn parse_num(flag: &str, value: &str) -> usize {
    value.parse().unwrap_or_else(|_| usage(flag))
}

fn usage(flag: &str) -> ! {
    // lint:allow(eprintln) — CLI-facing usage error, not library telemetry
    eprintln!(
        "unexpected argument {flag}\nusage: bench_shard [--smoke] [--out PATH] \
         [--ab-nodes N] [--ab-epochs N] [--drift-epochs N] [--gen-nodes N]"
    );
    std::process::exit(2)
}

/// Modest GCN dimensions so the 1M-node full-batch baseline stays tractable
/// on one core while remaining a fair A/B (all arms share this config).
fn gnn_cfg(data: &Dataset) -> GnnConfig {
    GnnConfig {
        in_dim: 32,
        hidden: 32,
        out_dim: data.num_classes.max(2),
        layers: 2,
        heads: 1,
        dropout: 0.1,
        slope: 0.05,
        edge_dim: 8,
        beta: 0.05,
    }
}

/// One seeded training run under the given schedule: fresh pipeline, fixed
/// epoch budget (patience = epochs, so no arm early-stops out of its
/// budget). Returns the outcome, mean epoch milliseconds from the obs
/// `train/epoch` span, and the call's wall seconds (which, unlike the
/// span, includes schedule build: partitioning, sampler index, caches).
fn run_arm(
    data: &Dataset,
    cfg: &GnnConfig,
    mb: &MinibatchConfig,
    epochs: usize,
    seed: u64,
) -> (ClsOutcome, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipe = MinibatchPipeline::new(data, cfg, CompletionMode::Zero, &mut rng);
    let tc = TrainConfig { epochs, patience: epochs, ..TrainConfig::default() };
    let t = Instant::now();
    let out = train_node_classification_minibatch(&pipe, data, &tc, mb, seed, None);
    let wall = t.elapsed().as_secs_f64();
    let rep = autoac_obs::drain();
    let ems = epoch_ms(&rep, &out);
    (out, ems, wall)
}

/// Mean per-epoch milliseconds from the obs `train/epoch` span, falling
/// back to the trainer's own wall-clock figure if the span is absent.
fn epoch_ms(rep: &autoac_obs::ObsReport, out: &ClsOutcome) -> f64 {
    match rep.span("train/epoch") {
        Some(s) if s.count > 0 => s.total_ns as f64 / 1e6 / s.count as f64,
        _ => 1e3 * out.seconds / out.epochs_run.max(1) as f64,
    }
}

fn metric_bits(out: &ClsOutcome) -> (u64, u64, usize) {
    (out.macro_f1.to_bits(), out.micro_f1.to_bits(), out.epochs_run)
}

fn sampled_config(batch_size: usize) -> MinibatchConfig {
    MinibatchConfig {
        batch_size,
        fanout: Some(10),
        hops: 2,
        batches_per_epoch: 4,
        ..MinibatchConfig::default()
    }
}

fn shard_config(shards: usize) -> MinibatchConfig {
    MinibatchConfig {
        shards,
        strategy: ShardStrategy::DegreeLocality,
        ..MinibatchConfig::default()
    }
}

fn profile_json(p: &DegreeProfile) -> String {
    format!(
        "{{ \"deg_min\": {}, \"deg_max\": {}, \"deg_mean\": {:.3}, \"gamma_hat\": {:.3} }}",
        p.min, p.max, p.mean, p.gamma_hat
    )
}

fn run_full(a: &BenchArgs) -> String {
    // Phase 1: 1M-node A/B epoch timing.
    println!("bench_shard: phase 1 — A/B at {} nodes, {} epochs/arm", a.ab_nodes, a.ab_epochs);
    let spec = ScaleSpec::with_total_nodes("scale-ab", a.ab_nodes);
    let t = Instant::now();
    let data = generate_scale(&spec, SEED);
    let ab_gen_s = t.elapsed().as_secs_f64();
    let ab_profile = degree_profile(&data.graph);
    ab_profile.validate().expect("A/B graph degree profile");
    println!(
        "  generated {} nodes / {} edges in {ab_gen_s:.1}s ({})",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        ab_profile.summary()
    );
    let cfg = gnn_cfg(&data);
    let _ = autoac_obs::drain();

    let (full_out, full_ms, full_wall) =
        run_arm(&data, &cfg, &MinibatchConfig::full_batch(), a.ab_epochs, SEED);
    println!("  full-batch : {full_ms:.1} ms/epoch ({full_wall:.1}s wall)");

    let sampled_mb = sampled_config(1024);
    let (sampled_out, sampled_ms, sampled_wall) =
        run_arm(&data, &cfg, &sampled_mb, a.ab_epochs, SEED);
    println!("  sampled    : {sampled_ms:.1} ms/epoch ({sampled_wall:.1}s wall)");

    let shard_mb = shard_config(8);
    let (shard_out, shard_ms, shard_wall) =
        run_arm(&data, &cfg, &shard_mb, a.ab_epochs.min(2), SEED);
    println!("  8 shards   : {shard_ms:.1} ms/epoch ({shard_wall:.1}s wall)");

    let speedup_sampled = full_ms / sampled_ms;
    let speedup_shard = full_ms / shard_ms;
    println!("  speedup    : sampled {speedup_sampled:.1}x, shards {speedup_shard:.2}x");
    assert!(
        speedup_sampled >= 5.0,
        "sampled minibatch epoch must be >= 5x faster than full-batch at \
         {} nodes, got {speedup_sampled:.2}x ({full_ms:.1} vs {sampled_ms:.1} ms)",
        a.ab_nodes
    );
    drop(data);

    // Phase 2: sampled-vs-full F1 drift on the paper-scale DBLP preset
    // (planted learnable structure; the scale generator above is
    // timing-only).
    println!("bench_shard: phase 2 — F1 drift on paper-scale DBLP, {} epochs", a.drift_epochs);
    let dspec = presets::by_name("DBLP").expect("preset DBLP");
    let ddata = synth::generate(&dspec, Scale::Paper, SEED);
    let dcfg = gnn_cfg(&ddata);
    let _ = autoac_obs::drain();
    let (dfull, _, _) =
        run_arm(&ddata, &dcfg, &MinibatchConfig::full_batch(), a.drift_epochs, SEED);
    let (dsampled, _, _) = run_arm(&ddata, &dcfg, &sampled_config(512), a.drift_epochs, SEED);
    let micro_drift = (dfull.micro_f1 - dsampled.micro_f1).abs();
    let macro_drift = (dfull.macro_f1 - dsampled.macro_f1).abs();
    println!(
        "  full    : micro-F1 {:.4}, macro-F1 {:.4}\n  sampled : micro-F1 {:.4}, \
         macro-F1 {:.4}\n  drift   : micro {micro_drift:.4}, macro {macro_drift:.4}",
        dfull.micro_f1, dfull.macro_f1, dsampled.micro_f1, dsampled.macro_f1
    );
    assert!(
        dsampled.micro_f1 > 2.0 / ddata.num_classes as f64,
        "sampled training must stay well above chance at paper scale (micro-F1 {:.4}, {} classes)",
        dsampled.micro_f1,
        ddata.num_classes
    );
    let drift_nodes = ddata.graph.num_nodes();
    drop(ddata);

    // Phase 3: 10M-node generation-only profile.
    println!("bench_shard: phase 3 — generation profile at {} nodes", a.gen_nodes);
    let mut gspec = ScaleSpec::with_total_nodes("scale-gen", a.gen_nodes);
    gspec.feature_dim = 0; // structure only: no feature matrix at this size
    let t = Instant::now();
    let gdata = generate_scale(&gspec, SEED);
    let gen_s = t.elapsed().as_secs_f64();
    let gen_profile = degree_profile(&gdata.graph);
    gen_profile.validate().expect("10M graph degree profile");
    let gen_nodes = gdata.graph.num_nodes();
    let gen_edges = gdata.graph.num_edges();
    let nodes_per_s = gen_nodes as f64 / gen_s;
    println!(
        "  generated {gen_nodes} nodes / {gen_edges} edges in {gen_s:.1}s \
         ({nodes_per_s:.0} nodes/s; {})",
        gen_profile.summary()
    );
    drop(gdata);

    format!(
        "{{\n  \"smoke\": false,\n  \"timer_source\": \"obs:train/epoch\",\n  \
         \"ab\": {{\n    \"nodes\": {ab_n},\n    \"edges\": {ab_e},\n    \
         \"gen_seconds\": {ab_gen_s:.2},\n    \"profile\": {ab_prof},\n    \
         \"epochs\": {ab_epochs},\n    \
         \"epoch_ms_full\": {full_ms:.2},\n    \"epoch_ms_sampled\": {sampled_ms:.2},\n    \
         \"epoch_ms_shard\": {shard_ms:.2},\n    \
         \"wall_s_full\": {full_wall:.2},\n    \"wall_s_sampled\": {sampled_wall:.2},\n    \
         \"wall_s_shard\": {shard_wall:.2},\n    \
         \"speedup_sampled_vs_full\": {speedup_sampled:.2},\n    \
         \"speedup_shard_vs_full\": {speedup_shard:.3},\n    \
         \"speedup_target\": 5.0,\n    \"speedup_ok\": true,\n    \
         \"sampled\": {{ \"batch_size\": 1024, \"fanout\": 10, \"hops\": 2, \
         \"batches_per_epoch\": 4 }},\n    \
         \"shard\": {{ \"shards\": 8, \"strategy\": \"degree-locality\" }},\n    \
         \"full_micro_f1\": {af_mi:.6},\n    \"sampled_micro_f1\": {as_mi:.6},\n    \
         \"shard_micro_f1\": {ash_mi:.6}\n  }},\n  \
         \"drift\": {{\n    \"dataset\": \"DBLP\",\n    \"scale\": \"paper\",\n    \
         \"nodes\": {d_n},\n    \"epochs\": {d_ep},\n    \
         \"full_micro_f1\": {df_mi:.6},\n    \"full_macro_f1\": {df_ma:.6},\n    \
         \"sampled_micro_f1\": {ds_mi:.6},\n    \"sampled_macro_f1\": {ds_ma:.6},\n    \
         \"micro_drift_abs\": {micro_drift:.6},\n    \"macro_drift_abs\": {macro_drift:.6}\n  }},\n  \
         \"gen\": {{\n    \"nodes\": {gen_nodes},\n    \"edges\": {gen_edges},\n    \
         \"seconds\": {gen_s:.2},\n    \"nodes_per_sec\": {nodes_per_s:.0},\n    \
         \"profile\": {gen_prof}\n  }}\n}}\n",
        ab_n = spec.total_nodes(),
        ab_e = spec.attr_edges + spec.plain_edges,
        ab_prof = profile_json(&ab_profile),
        ab_epochs = a.ab_epochs,
        af_mi = full_out.micro_f1,
        as_mi = sampled_out.micro_f1,
        ash_mi = shard_out.micro_f1,
        d_n = drift_nodes,
        d_ep = a.drift_epochs,
        df_mi = dfull.micro_f1,
        df_ma = dfull.macro_f1,
        ds_mi = dsampled.micro_f1,
        ds_ma = dsampled.macro_f1,
        gen_prof = profile_json(&gen_profile),
    )
}

fn run_smoke(_a: &BenchArgs) -> String {
    println!("bench_shard: smoke — tiny-graph identity + schedule exercise");
    let data = generate_scale(&ScaleSpec::with_total_nodes("scale-smoke", 2_000), SEED);
    let profile = degree_profile(&data.graph);
    profile.validate().expect("smoke degree profile");
    let cfg = gnn_cfg(&data);
    let tc = TrainConfig { epochs: 8, patience: 8, ..TrainConfig::default() };

    // The legacy pipeline and the minibatch pipeline under the degenerate
    // full-batch config must agree bitwise (same code path by routing).
    let mut rng = StdRng::seed_from_u64(SEED);
    let legacy_pipe = Pipeline::new(&data, Backbone::Gcn, &cfg, CompletionMode::Zero, &mut rng);
    let legacy = train_node_classification(&legacy_pipe, &data, &tc, SEED);
    let _ = autoac_obs::drain();
    let (full, full_ms, _) =
        run_arm(&data, &cfg, &MinibatchConfig::full_batch(), tc.epochs, SEED);
    assert_eq!(
        metric_bits(&legacy),
        metric_bits(&full),
        "full-batch minibatch config must be bitwise identical to the legacy pipeline"
    );
    println!("  identity  : legacy == minibatch(full_batch), bitwise");

    let (sampled, sampled_ms, _) = run_arm(
        &data,
        &cfg,
        &MinibatchConfig {
            batch_size: 64,
            fanout: Some(8),
            batches_per_epoch: 2,
            ..MinibatchConfig::default()
        },
        tc.epochs,
        SEED,
    );
    let (shard, shard_ms, _) = run_arm(&data, &cfg, &shard_config(3), tc.epochs, SEED);
    println!(
        "  epoch ms  : full {full_ms:.2}, sampled {sampled_ms:.2}, shards(3) {shard_ms:.2}"
    );

    format!(
        "{{\n  \"smoke\": true,\n  \"timer_source\": \"obs:train/epoch\",\n  \
         \"nodes\": {},\n  \"bitwise_identical\": true,\n  \
         \"epoch_ms_full\": {full_ms:.3},\n  \"epoch_ms_sampled\": {sampled_ms:.3},\n  \
         \"epoch_ms_shard\": {shard_ms:.3},\n  \
         \"full_micro_f1\": {:.6},\n  \"sampled_micro_f1\": {:.6},\n  \
         \"shard_micro_f1\": {:.6},\n  \
         \"profile\": {}\n}}\n",
        data.graph.num_nodes(),
        full.micro_f1,
        sampled.micro_f1,
        shard.micro_f1,
        profile_json(&profile),
    )
}

fn main() {
    let a = BenchArgs::parse();
    // Epoch times come from obs spans, so obs is force-enabled regardless
    // of AUTOAC_OBS in the environment.
    autoac_obs::set_force(Some(true));
    let json = if a.smoke { run_smoke(&a) } else { run_full(&a) };
    autoac_obs::set_force(None);
    if let Some(dir) = a.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(dir).expect("create results dir");
    }
    fs::write(&a.out, json).expect("write bench report");
    println!("  wrote     : {}", display(&a.out));
}

fn display(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}
