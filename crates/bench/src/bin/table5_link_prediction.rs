//! Table V: link prediction on LastFM / DBLP / IMDB — ROC-AUC and MRR of
//! the baselines vs. SimpleHGN-AutoAC (10% masked target edges).

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{
    run_autoac_link_prediction_checkpointed, train_link_prediction, Backbone, CompletionMode,
    Pipeline,
};
use autoac_completion::CompletionOp;
use autoac_data::mask_edges;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let baselines = [
        Backbone::Gatne,
        Backbone::HetGnn,
        Backbone::Gcn,
        Backbone::Gat,
        Backbone::SimpleHgnLp,
    ];
    for dataset in ["LastFM", "DBLP", "IMDB"] {
        header(
            &format!("Table V — {dataset} (scale {:?}, {} seeds)", args.scale, args.seeds),
            &["ROC-AUC", "MRR", "total s", "s/epoch"],
        );
        let mut best_auc: Vec<f64> = Vec::new();
        let mut best_mean = f64::NEG_INFINITY;
        for &backbone in &baselines {
            let (auc, mrr, secs, per) = run_baseline(&args, dataset, backbone);
            if autoac_eval::mean(&auc) > best_mean {
                best_mean = autoac_eval::mean(&auc);
                best_auc = auc.clone();
            }
            row(
                backbone.name(),
                &[cell(&auc), cell(&mrr), format!("{secs:.1}"), format!("{per:.3}")],
            );
        }
        let (auc, mrr, secs, per) = run_autoac(&args, dataset);
        row(
            "SimpleHGN-AutoAC",
            &[cell(&auc), cell(&mrr), format!("{secs:.1}"), format!("{per:.3}")],
        );
        if auc.len() >= 2 && best_auc.len() >= 2 {
            let t = autoac_eval::welch_t_test(&auc, &best_auc);
            println!("p-value (AutoAC > best baseline ROC-AUC): {:.2e}", t.p_one_sided);
        }
    }
}

fn run_baseline(
    args: &Args,
    dataset: &str,
    backbone: Backbone,
) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let (mut aucs, mut mrrs) = (Vec::new(), Vec::new());
    let (mut secs, mut per) = (0.0, 0.0);
    for seed in 0..args.seeds as u64 {
        let data = args.dataset(dataset, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = mask_edges(&data, 0.10, &mut rng);
        let cfg = gnn_cfg(&data, backbone, true);
        let pipe = Pipeline::new(
            &split.train_data,
            backbone,
            &cfg,
            CompletionMode::Single(CompletionOp::OneHot),
            &mut rng,
        );
        let out = train_link_prediction(&pipe, &split, &args.train_cfg(), seed);
        aucs.push(out.roc_auc);
        mrrs.push(out.mrr);
        secs += out.seconds;
        per += out.per_epoch();
    }
    (aucs, mrrs, secs / args.seeds as f64, per / args.seeds as f64)
}

fn run_autoac(args: &Args, dataset: &str) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let (mut aucs, mut mrrs) = (Vec::new(), Vec::new());
    let (mut secs, mut per) = (0.0, 0.0);
    for seed in 0..args.seeds as u64 {
        let data = args.dataset(dataset, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = mask_edges(&data, 0.10, &mut rng);
        let cfg = gnn_cfg(&data, Backbone::SimpleHgnLp, true);
        let ac = autoac_cfg(Backbone::SimpleHgnLp, dataset, args);
        // With --checkpoint-dir, each dataset×seed cell snapshots (and with
        // --resume, restarts) independently.
        let policy = args.ckpt_policy(&format!("{dataset}-lp-s{seed}"));
        let run = run_autoac_link_prediction_checkpointed(
            &split,
            Backbone::SimpleHgnLp,
            &cfg,
            &ac,
            seed,
            policy.as_ref(),
        );
        aucs.push(run.outcome.roc_auc);
        mrrs.push(run.outcome.mrr);
        secs += run.search.search_seconds + run.outcome.seconds;
        per += run.outcome.per_epoch();
    }
    (aucs, mrrs, secs / args.seeds as f64, per / args.seeds as f64)
}
