//! Allocation benchmark for the buffer-recycling pool: runs the same seeded
//! SimpleHGN node-classification training twice in one process — once with
//! the pool disabled (the `AUTOAC_POOL=0` baseline) and once with it enabled
//! — asserts the final metrics are bitwise identical, and writes epoch-time
//! and pool-statistics results to `results/BENCH_alloc.json`.
//!
//! Each phase is preceded by a short warm-up run so neither measurement pays
//! first-touch costs the other does not (CPU caches for the baseline, free
//! lists for the pooled run). Pool statistics are reset after the pooled
//! warm-up ([`pool::stats_reset`]), so the reported hit rate is the
//! steady-state rate.
//!
//! Epoch times are read from the obs span tree (`train/epoch`), with obs
//! force-enabled for the two measured phases, instead of from the trainer's
//! private timer. Two extra pooled runs with obs force-disabled then bound
//! the instrumentation cost: their spread is the run-to-run noise, and the
//! enabled run's wall time is compared against their mean. The disabled
//! path itself is a single branch, so its overhead is below that noise by
//! construction; the comparison makes the enabled-mode cost visible too.

use std::fs;
use std::path::{Path, PathBuf};

use autoac_bench::{gnn_cfg, Args};
use autoac_core::{
    train_node_classification, Backbone, ClsOutcome, CompletionMode, Pipeline,
};
use autoac_tensor::pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DATASET: &str = "DBLP";
const SEED: u64 = 0;
const WARMUP_EPOCHS: usize = 3;

/// One full seeded training run: fresh pipeline, fixed seed, `epochs` cap.
fn run(args: &Args, epochs: usize) -> ClsOutcome {
    let data = args.dataset(DATASET, SEED);
    let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
    let mut rng = StdRng::seed_from_u64(SEED);
    let pipe = Pipeline::new(&data, Backbone::SimpleHgn, &cfg, CompletionMode::Zero, &mut rng);
    let mut tc = args.train_cfg();
    tc.epochs = epochs;
    train_node_classification(&pipe, &data, &tc, SEED)
}

/// Mean per-epoch milliseconds from the obs `train/epoch` span, falling
/// back to the trainer's own wall-clock figure if the span is absent.
fn epoch_ms(rep: &autoac_obs::ObsReport, out: &ClsOutcome) -> f64 {
    match rep.span("train/epoch") {
        Some(s) if s.count > 0 => s.total_ns as f64 / 1e6 / s.count as f64,
        _ => 1e3 * out.seconds / out.epochs_run as f64,
    }
}

fn metric_bits(out: &ClsOutcome) -> (u64, u64, usize) {
    (out.macro_f1.to_bits(), out.micro_f1.to_bits(), out.epochs_run)
}

fn main() {
    let mut out_path = PathBuf::from("results/BENCH_alloc.json");
    let args = Args::parse_extra(|flag, value| match flag {
        "--out" => {
            out_path = PathBuf::from(value);
            true
        }
        _ => false,
    });

    println!(
        "bench_alloc: {DATASET} / SimpleHGN, scale {:?}, {} epochs, seed {SEED}",
        args.scale, args.epochs
    );

    // Measured phases read their epoch times from obs spans, so obs is
    // force-enabled regardless of AUTOAC_OBS in the environment.
    autoac_obs::set_force(Some(true));

    // Phase 1: pool disabled (baseline). Warm up, drop the warm-up's spans,
    // then measure.
    let (off, rep_off) = pool::with_pool(false, || {
        run(&args, WARMUP_EPOCHS);
        let _ = autoac_obs::drain();
        let out = run(&args, args.epochs);
        (out, autoac_obs::drain())
    });

    // Phase 2: pool enabled. The warm-up populates the free lists; the
    // stats reset afterwards makes the reported hit rate steady-state.
    let (on, rep_on, stats) = pool::with_pool(true, || {
        run(&args, WARMUP_EPOCHS);
        let _ = pool::stats_reset();
        let _ = autoac_obs::drain();
        let out = run(&args, args.epochs);
        (out, autoac_obs::drain(), pool::stats_snapshot())
    });

    // Phase 3: instrumentation cost. The same pooled run twice with obs
    // force-disabled; their spread is the run-to-run noise floor that the
    // enabled run is compared against.
    autoac_obs::set_force(Some(false));
    let (dis_a, dis_b) =
        pool::with_pool(true, || (run(&args, args.epochs), run(&args, args.epochs)));
    autoac_obs::set_force(None);

    for (label, other) in [("pool-on", &on), ("obs-off A", &dis_a), ("obs-off B", &dis_b)] {
        assert_eq!(
            metric_bits(&off),
            metric_bits(other),
            "{label} run must produce bitwise-identical metrics to the baseline"
        );
    }

    let epoch_ms_off = epoch_ms(&rep_off, &off);
    let epoch_ms_on = epoch_ms(&rep_on, &on);
    let speedup_pct = 100.0 * (epoch_ms_off - epoch_ms_on) / epoch_ms_off;

    // Overhead figures use the trainer's wall clock for all three pooled
    // runs so enabled and disabled are timed by the same instrument.
    let obs_on_ms = 1e3 * on.seconds / on.epochs_run as f64;
    let dis_a_ms = 1e3 * dis_a.seconds / dis_a.epochs_run as f64;
    let dis_b_ms = 1e3 * dis_b.seconds / dis_b.epochs_run as f64;
    let dis_mean_ms = 0.5 * (dis_a_ms + dis_b_ms);
    let obs_noise_pct = 100.0 * (dis_a_ms - dis_b_ms).abs() / dis_mean_ms;
    let obs_overhead_pct = 100.0 * (obs_on_ms - dis_mean_ms) / dis_mean_ms;

    println!("  pool off: {:.1} ms/epoch over {} epochs", epoch_ms_off, off.epochs_run);
    println!("  pool on : {:.1} ms/epoch over {} epochs", epoch_ms_on, on.epochs_run);
    println!("  speedup : {speedup_pct:.1}%");
    println!(
        "  pool    : hit rate {:.1}% ({} hits / {} misses), {:.1} MiB recycled",
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.bytes_recycled as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  obs     : enabled {obs_on_ms:.1} ms/epoch vs disabled {dis_a_ms:.1}/{dis_b_ms:.1} \
         ms/epoch (overhead {obs_overhead_pct:+.2}%, run-to-run noise {obs_noise_pct:.2}%)"
    );
    println!("  metrics : macro-F1 {:.4}, micro-F1 {:.4} (bitwise identical)", on.macro_f1, on.micro_f1);

    let json = format!(
        "{{\n  \"dataset\": \"{DATASET}\",\n  \"scale\": \"{:?}\",\n  \"epochs\": {},\n  \
         \"timer_source\": \"obs:train/epoch\",\n  \
         \"epoch_ms_pool_off\": {epoch_ms_off:.3},\n  \"epoch_ms_pool_on\": {epoch_ms_on:.3},\n  \
         \"speedup_pct\": {speedup_pct:.2},\n  \"pool_hit_rate\": {:.4},\n  \
         \"hits\": {},\n  \"misses\": {},\n  \"bytes_recycled\": {},\n  \
         \"obs_enabled_epoch_ms\": {obs_on_ms:.3},\n  \
         \"obs_disabled_epoch_ms_a\": {dis_a_ms:.3},\n  \
         \"obs_disabled_epoch_ms_b\": {dis_b_ms:.3},\n  \
         \"obs_overhead_pct\": {obs_overhead_pct:.3},\n  \
         \"obs_noise_pct\": {obs_noise_pct:.3},\n  \
         \"macro_f1\": {:.6},\n  \"micro_f1\": {:.6},\n  \"bitwise_identical\": true\n}}\n",
        args.scale,
        on.epochs_run,
        stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.bytes_recycled,
        on.macro_f1,
        on.micro_f1,
    );
    if let Some(dir) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(dir).expect("create results dir");
    }
    fs::write(&out_path, json).expect("write bench report");
    println!("  wrote   : {}", display(&out_path));
}

fn display(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}
