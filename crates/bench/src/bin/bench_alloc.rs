//! Allocation benchmark for the buffer-recycling pool: runs the same seeded
//! SimpleHGN node-classification training twice in one process — once with
//! the pool disabled (the `AUTOAC_POOL=0` baseline) and once with it enabled
//! — asserts the final metrics are bitwise identical, and writes epoch-time
//! and pool-statistics results to `results/BENCH_alloc.json`.
//!
//! Each phase is preceded by a short warm-up run so neither measurement pays
//! first-touch costs the other does not (CPU caches for the baseline, free
//! lists for the pooled run). Pool statistics are reset after the pooled
//! warm-up, so the reported hit rate is the steady-state rate.

use std::fs;
use std::path::{Path, PathBuf};

use autoac_bench::{gnn_cfg, Args};
use autoac_core::{
    train_node_classification, Backbone, ClsOutcome, CompletionMode, Pipeline,
};
use autoac_tensor::pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DATASET: &str = "DBLP";
const SEED: u64 = 0;
const WARMUP_EPOCHS: usize = 3;

/// One full seeded training run: fresh pipeline, fixed seed, `epochs` cap.
fn run(args: &Args, epochs: usize) -> ClsOutcome {
    let data = args.dataset(DATASET, SEED);
    let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
    let mut rng = StdRng::seed_from_u64(SEED);
    let pipe = Pipeline::new(&data, Backbone::SimpleHgn, &cfg, CompletionMode::Zero, &mut rng);
    let mut tc = args.train_cfg();
    tc.epochs = epochs;
    train_node_classification(&pipe, &data, &tc, SEED)
}

fn main() {
    let mut out_path = PathBuf::from("results/BENCH_alloc.json");
    let args = Args::parse_extra(|flag, value| match flag {
        "--out" => {
            out_path = PathBuf::from(value);
            true
        }
        _ => false,
    });

    println!(
        "bench_alloc: {DATASET} / SimpleHGN, scale {:?}, {} epochs, seed {SEED}",
        args.scale, args.epochs
    );

    // Phase 1: pool disabled (baseline). Warm up, then measure.
    let (off, on, stats) = pool::with_pool(false, || {
        run(&args, WARMUP_EPOCHS);
        let off = run(&args, args.epochs);

        // Phase 2: pool enabled. The warm-up populates the free lists; the
        // stats reset afterwards makes the reported hit rate steady-state.
        pool::with_pool(true, || {
            run(&args, WARMUP_EPOCHS);
            pool::reset_stats();
            let on = run(&args, args.epochs);
            (off, on, pool::stats())
        })
    });

    assert_eq!(
        (off.macro_f1.to_bits(), off.micro_f1.to_bits(), off.epochs_run),
        (on.macro_f1.to_bits(), on.micro_f1.to_bits(), on.epochs_run),
        "pool-on and pool-off runs must produce bitwise-identical metrics"
    );

    let epoch_ms_off = 1e3 * off.seconds / off.epochs_run as f64;
    let epoch_ms_on = 1e3 * on.seconds / on.epochs_run as f64;
    let speedup_pct = 100.0 * (epoch_ms_off - epoch_ms_on) / epoch_ms_off;

    println!("  pool off: {:.1} ms/epoch over {} epochs", epoch_ms_off, off.epochs_run);
    println!("  pool on : {:.1} ms/epoch over {} epochs", epoch_ms_on, on.epochs_run);
    println!("  speedup : {speedup_pct:.1}%");
    println!(
        "  pool    : hit rate {:.1}% ({} hits / {} misses), {:.1} MiB recycled",
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.bytes_recycled as f64 / (1024.0 * 1024.0)
    );
    println!("  metrics : macro-F1 {:.4}, micro-F1 {:.4} (bitwise identical)", on.macro_f1, on.micro_f1);

    let json = format!(
        "{{\n  \"dataset\": \"{DATASET}\",\n  \"scale\": \"{:?}\",\n  \"epochs\": {},\n  \
         \"epoch_ms_pool_off\": {epoch_ms_off:.3},\n  \"epoch_ms_pool_on\": {epoch_ms_on:.3},\n  \
         \"speedup_pct\": {speedup_pct:.2},\n  \"pool_hit_rate\": {:.4},\n  \
         \"hits\": {},\n  \"misses\": {},\n  \"bytes_recycled\": {},\n  \
         \"macro_f1\": {:.6},\n  \"micro_f1\": {:.6},\n  \"bitwise_identical\": true\n}}\n",
        args.scale,
        on.epochs_run,
        stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.bytes_recycled,
        on.macro_f1,
        on.micro_f1,
    );
    if let Some(dir) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(dir).expect("create results dir");
    }
    fs::write(&out_path, json).expect("write bench report");
    println!("  wrote   : {}", display(&out_path));
}

fn display(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}
