//! Table II: node classification — humancrafted heterogeneous GNNs vs.
//! MAGNN-AutoAC and SimpleHGN-AutoAC on DBLP / ACM / IMDB.
//!
//! Prints Macro-F1 / Micro-F1 (mean±std over seeds) and runtimes, plus the
//! Welch t-test p-value of SimpleHGN-AutoAC over the best baseline.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{
    run_autoac_classification_checkpointed, run_hgca_classification, train_node_classification,
    Backbone, CompletionMode, HgcaConfig, Pipeline,
};
use autoac_completion::CompletionOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let baselines = [
        Backbone::Han,
        Backbone::Gtn,
        Backbone::HetSann,
        Backbone::Magnn,
        Backbone::Hgt,
        Backbone::HetGnn,
        Backbone::Gcn,
        Backbone::Gat,
        Backbone::SimpleHgn,
    ];
    for dataset in ["DBLP", "ACM", "IMDB"] {
        header(
            &format!("Table II — {dataset} (scale {:?}, {} seeds)", args.scale, args.seeds),
            &["Macro-F1", "Micro-F1", "total s", "s/epoch"],
        );
        let mut best_baseline_micro: Vec<f64> = Vec::new();
        let mut best_baseline_mean = f64::NEG_INFINITY;
        for &backbone in &baselines {
            let (ma, mi, secs, per) = run_baseline(&args, dataset, backbone);
            if autoac_eval::mean(&mi) > best_baseline_mean {
                best_baseline_mean = autoac_eval::mean(&mi);
                best_baseline_micro = mi.clone();
            }
            row(
                backbone.name(),
                &[cell(&ma), cell(&mi), format!("{secs:.1}"), format!("{per:.3}")],
            );
        }
        {
            // HGCA: unsupervised completion pre-training baseline.
            let (mut ma, mut mi) = (Vec::new(), Vec::new());
            let mut secs = 0.0;
            for seed in 0..args.seeds as u64 {
                let data = args.dataset(dataset, seed);
                let cfg = gnn_cfg(&data, Backbone::Gcn, false);
                let out = run_hgca_classification(
                    &data,
                    Backbone::Gcn,
                    &cfg,
                    &HgcaConfig::default(),
                    &args.train_cfg(),
                    seed,
                );
                ma.push(out.macro_f1);
                mi.push(out.micro_f1);
                secs += out.seconds;
            }
            if autoac_eval::mean(&mi) > best_baseline_mean {
                best_baseline_micro = mi.clone();
            }
            row(
                "HGCA",
                &[cell(&ma), cell(&mi), format!("{:.1}", secs / args.seeds as f64), "-".into()],
            );
        }
        for &backbone in &[Backbone::Magnn, Backbone::SimpleHgn] {
            let (ma, mi, secs, per) = run_autoac(&args, dataset, backbone);
            row(
                &format!("{}-AutoAC", backbone.name()),
                &[cell(&ma), cell(&mi), format!("{secs:.1}"), format!("{per:.3}")],
            );
            if backbone == Backbone::SimpleHgn && mi.len() >= 2 && best_baseline_micro.len() >= 2
            {
                let t = autoac_eval::welch_t_test(&mi, &best_baseline_micro);
                println!(
                    "p-value (SimpleHGN-AutoAC > best baseline Micro-F1): {:.2e}",
                    t.p_one_sided
                );
            }
        }
    }
}

fn run_baseline(
    args: &Args,
    dataset: &str,
    backbone: Backbone,
) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let mut ma = Vec::new();
    let mut mi = Vec::new();
    let mut secs = 0.0;
    let mut per = 0.0;
    for seed in 0..args.seeds as u64 {
        let data = args.dataset(dataset, seed);
        let cfg = gnn_cfg(&data, backbone, false);
        let mut rng = StdRng::seed_from_u64(seed);
        // HGB handcrafted completion: one-hot (embedding) features for the
        // missing types.
        let pipe = Pipeline::new(
            &data,
            backbone,
            &cfg,
            CompletionMode::Single(CompletionOp::OneHot),
            &mut rng,
        );
        let out = train_node_classification(&pipe, &data, &args.train_cfg(), seed);
        ma.push(out.macro_f1);
        mi.push(out.micro_f1);
        secs += out.seconds;
        per += out.per_epoch();
    }
    (ma, mi, secs / args.seeds as f64, per / args.seeds as f64)
}

fn run_autoac(args: &Args, dataset: &str, backbone: Backbone) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let mut ma = Vec::new();
    let mut mi = Vec::new();
    let mut secs = 0.0;
    let mut per = 0.0;
    for seed in 0..args.seeds as u64 {
        let data = args.dataset(dataset, seed);
        let cfg = gnn_cfg(&data, backbone, false);
        let ac = autoac_cfg(backbone, dataset, args);
        // With --checkpoint-dir, each dataset×backbone×seed cell snapshots
        // (and with --resume, restarts) independently.
        let policy = args.ckpt_policy(&format!("{dataset}-{}-s{seed}", backbone.name()));
        let run =
            run_autoac_classification_checkpointed(&data, backbone, &cfg, &ac, seed, policy.as_ref());
        ma.push(run.outcome.macro_f1);
        mi.push(run.outcome.micro_f1);
        secs += run.search.search_seconds + run.outcome.seconds;
        per += run.outcome.per_epoch();
    }
    (ma, mi, secs / args.seeds as f64, per / args.seeds as f64)
}
