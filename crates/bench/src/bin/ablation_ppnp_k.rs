//! Extra ablation (not in the paper, DESIGN.md §3 note): sensitivity of the
//! PPNP completion operation to its propagation depth `K` and restart
//! probability α_r — validating the multi-hop design choice behind Eq. 4.
//!
//! Runs single-op PPNP completion on DBLP (where the target type has no
//! attributes, so completion is load-bearing).

use autoac_bench::{cell, gnn_cfg, header, row, Args};
use autoac_core::{train_node_classification, Backbone, CompletionMode, Pipeline};
use autoac_completion::CompletionOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    header(
        &format!("Ablation — PPNP depth K on DBLP (scale {:?}, {} seeds)", args.scale, args.seeds),
        &["Macro-F1", "Micro-F1"],
    );
    for k in [1usize, 2, 4, 8, 16] {
        let (ma, mi) = run(&args, |pipe| pipe.ops.ppnp_k = k);
        row(&format!("K = {k}"), &[cell(&ma), cell(&mi)]);
    }
    header(
        &format!(
            "Ablation — PPNP restart α_r on DBLP (scale {:?}, {} seeds)",
            args.scale, args.seeds
        ),
        &["Macro-F1", "Micro-F1"],
    );
    for alpha in [0.05f32, 0.15, 0.3, 0.5, 0.9] {
        let (ma, mi) = run(&args, |pipe| pipe.ops.ppnp_alpha = alpha);
        row(&format!("α_r = {alpha:.2}"), &[cell(&ma), cell(&mi)]);
    }
}

fn run(args: &Args, tweak: impl Fn(&mut Pipeline)) -> (Vec<f64>, Vec<f64>) {
    let (mut ma, mut mi) = (Vec::new(), Vec::new());
    for seed in 0..args.seeds as u64 {
        let data = args.dataset("dblp", seed);
        let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pipe = Pipeline::new(
            &data,
            Backbone::SimpleHgn,
            &cfg,
            CompletionMode::Single(CompletionOp::Ppnp),
            &mut rng,
        );
        tweak(&mut pipe);
        let out = train_node_classification(&pipe, &data, &args.train_cfg(), seed);
        ma.push(out.macro_f1);
        mi.push(out.micro_f1);
    }
    (ma, mi)
}
