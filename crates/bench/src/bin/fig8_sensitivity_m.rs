//! Figure 8: sensitivity to the number of clusters M.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone};

fn main() {
    let args = Args::parse();
    for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            header(
                &format!(
                    "Fig. 8 — {} on {dataset}, varying M (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1"],
            );
            for m in [2usize, 4, 8, 12, 16, 24] {
                let (mut ma, mut mi) = (Vec::new(), Vec::new());
                for seed in 0..args.seeds as u64 {
                    let data = args.dataset(dataset, seed);
                    let cfg = gnn_cfg(&data, backbone, false);
                    let mut ac = autoac_cfg(backbone, dataset, &args);
                    ac.clusters = m;
                    let run = run_autoac_classification(&data, backbone, &cfg, &ac, seed);
                    ma.push(run.outcome.macro_f1);
                    mi.push(run.outcome.micro_f1);
                }
                row(&format!("M = {m}"), &[cell(&ma), cell(&mi)]);
            }
        }
    }
}
