//! Tables VI & VII: completion-operation ablation — every single-op
//! completion, random per-node completion, and AutoAC, on SimpleHGN
//! (Table VI) and MAGNN (Table VII).

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{
    random_assignment, run_autoac_classification, train_node_classification, Backbone,
    CompletionMode, Pipeline,
};
use autoac_completion::CompletionOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    for (table, backbone) in [("VI", Backbone::SimpleHgn), ("VII", Backbone::Magnn)] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            header(
                &format!(
                    "Table {table} — {} on {dataset} (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1"],
            );
            // Baseline = handcrafted one-hot features (HGB default); in this
            // implementation that coincides with the One-hot_AC operation,
            // so we print a "Baseline" row with zero-completion instead to
            // show the no-completion floor.
            let (ma, mi) = run_mode(&args, dataset, backbone, |_, _| CompletionMode::Zero);
            row("Baseline (zero-fill)", &[cell(&ma), cell(&mi)]);
            for op in CompletionOp::ALL {
                let (ma, mi) =
                    run_mode(&args, dataset, backbone, |_, _| CompletionMode::Single(op));
                row(op.name(), &[cell(&ma), cell(&mi)]);
            }
            let (ma, mi) = run_mode(&args, dataset, backbone, |data, seed| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xa11);
                CompletionMode::Assigned(random_assignment(
                    data.missing_nodes().len(),
                    &mut rng,
                ))
            });
            row("Random_AC", &[cell(&ma), cell(&mi)]);
            // AutoAC.
            let (mut ma, mut mi) = (Vec::new(), Vec::new());
            for seed in 0..args.seeds as u64 {
                let data = args.dataset(dataset, seed);
                let cfg = gnn_cfg(&data, backbone, false);
                let ac = autoac_cfg(backbone, dataset, &args);
                let run = run_autoac_classification(&data, backbone, &cfg, &ac, seed);
                ma.push(run.outcome.macro_f1);
                mi.push(run.outcome.micro_f1);
            }
            row("AutoAC", &[cell(&ma), cell(&mi)]);
        }
    }
}

fn run_mode(
    args: &Args,
    dataset: &str,
    backbone: Backbone,
    mode: impl Fn(&autoac_data::Dataset, u64) -> CompletionMode,
) -> (Vec<f64>, Vec<f64>) {
    let (mut ma, mut mi) = (Vec::new(), Vec::new());
    for seed in 0..args.seeds as u64 {
        let data = args.dataset(dataset, seed);
        let cfg = gnn_cfg(&data, backbone, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let pipe = Pipeline::new(&data, backbone, &cfg, mode(&data, seed), &mut rng);
        let out = train_node_classification(&pipe, &data, &args.train_cfg(), seed);
        ma.push(out.macro_f1);
        mi.push(out.micro_f1);
    }
    (ma, mi)
}
