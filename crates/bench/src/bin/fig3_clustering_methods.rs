//! Figure 3: comparison of the clustering strategies inside the search —
//! no clustering (per-node α), EM (k-means each epoch), EM with warm-up,
//! and the paper's joint modularity clustering (AutoAC).

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone, ClusteringMode};

fn main() {
    let args = Args::parse();
    let modes = [
        ("w/o cluster", ClusteringMode::NoCluster),
        ("EM", ClusteringMode::Em),
        ("EM with warmup", ClusteringMode::EmWarmup(5)),
        ("AutoAC (GmoC)", ClusteringMode::GmoC),
    ];
    for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            header(
                &format!(
                    "Fig. 3 — {} on {dataset} (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1"],
            );
            for (label, mode) in modes {
                let (mut ma, mut mi) = (Vec::new(), Vec::new());
                for seed in 0..args.seeds as u64 {
                    let data = args.dataset(dataset, seed);
                    let cfg = gnn_cfg(&data, backbone, false);
                    let mut ac = autoac_cfg(backbone, dataset, &args);
                    ac.clustering = mode;
                    let run = run_autoac_classification(&data, backbone, &cfg, &ac, seed);
                    ma.push(run.outcome.macro_f1);
                    mi.push(run.outcome.micro_f1);
                }
                row(label, &[cell(&ma), cell(&mi)]);
            }
        }
    }
}
