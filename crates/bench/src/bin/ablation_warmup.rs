//! Extra ablation (not in the paper, DESIGN.md §3 note): effect of the
//! ω warm-up before α updates start. With zero warm-up, the very first α
//! gradients are taken against randomly initialized GNN weights; the
//! DARTS literature and our defaults use a short warm-up.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone};

fn main() {
    let args = Args::parse();
    for dataset in ["DBLP", "IMDB"] {
        header(
            &format!(
                "Ablation — ω warm-up epochs, SimpleHGN-AutoAC on {dataset} (scale {:?}, {} seeds)",
                args.scale, args.seeds
            ),
            &["Macro-F1", "Micro-F1"],
        );
        for warmup in [0usize, 2, 5, 10] {
            let (mut ma, mut mi) = (Vec::new(), Vec::new());
            for seed in 0..args.seeds as u64 {
                let data = args.dataset(dataset, seed);
                let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
                let mut ac = autoac_cfg(Backbone::SimpleHgn, dataset, &args);
                ac.omega_warmup = warmup;
                let run = run_autoac_classification(&data, Backbone::SimpleHgn, &cfg, &ac, seed);
                ma.push(run.outcome.macro_f1);
                mi.push(run.outcome.micro_f1);
            }
            row(&format!("warm-up = {warmup}"), &[cell(&ma), cell(&mi)]);
        }
    }
}
