//! Figures 10 & 11 (appendix): sensitivity to the α learning rate and α
//! weight decay.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone};

fn main() {
    let args = Args::parse();
    let lrs = [3e-3f32, 4e-3, 5e-3, 6e-3, 7e-3];
    let wds = [5e-6f32, 1e-5, 2e-5, 3e-5, 4e-3];
    for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            header(
                &format!(
                    "Fig. 10 — {} on {dataset}, α learning rate (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1"],
            );
            for lr in lrs {
                let (ma, mi) = sweep(&args, dataset, backbone, |ac| ac.alpha_lr = lr);
                row(&format!("lr = {lr:.0e}"), &[cell(&ma), cell(&mi)]);
            }
            header(
                &format!(
                    "Fig. 11 — {} on {dataset}, α weight decay (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1"],
            );
            for wd in wds {
                let (ma, mi) = sweep(&args, dataset, backbone, |ac| ac.alpha_wd = wd);
                row(&format!("wd = {wd:.0e}"), &[cell(&ma), cell(&mi)]);
            }
        }
    }
}

fn sweep(
    args: &Args,
    dataset: &str,
    backbone: Backbone,
    tweak: impl Fn(&mut autoac_core::AutoAcConfig),
) -> (Vec<f64>, Vec<f64>) {
    let (mut ma, mut mi) = (Vec::new(), Vec::new());
    for seed in 0..args.seeds as u64 {
        let data = args.dataset(dataset, seed);
        let cfg = gnn_cfg(&data, backbone, false);
        let mut ac = autoac_cfg(backbone, dataset, args);
        tweak(&mut ac);
        let run = run_autoac_classification(&data, backbone, &cfg, &ac, seed);
        ma.push(run.outcome.macro_f1);
        mi.push(run.outcome.micro_f1);
    }
    (ma, mi)
}
