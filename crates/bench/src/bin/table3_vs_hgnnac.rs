//! Table III: AutoAC vs. the HGNN-AC attribute-completion baseline, on
//! both backbones (MAGNN, SimpleHGN) across DBLP / ACM / IMDB.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{
    run_autoac_classification_checkpointed, run_hgnnac_classification,
    train_node_classification, Backbone, CompletionMode, HgnnAcConfig, Pipeline,
};
use autoac_completion::CompletionOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    for dataset in ["DBLP", "ACM", "IMDB"] {
        header(
            &format!("Table III — {dataset} (scale {:?}, {} seeds)", args.scale, args.seeds),
            &["Macro-F1", "Micro-F1"],
        );
        for &backbone in &[Backbone::Magnn, Backbone::SimpleHgn] {
            let (mut base_ma, mut base_mi) = (Vec::new(), Vec::new());
            let (mut ac_ma, mut ac_mi) = (Vec::new(), Vec::new());
            let (mut auto_ma, mut auto_mi) = (Vec::new(), Vec::new());
            for seed in 0..args.seeds as u64 {
                let data = args.dataset(dataset, seed);
                let cfg = gnn_cfg(&data, backbone, false);
                // Plain backbone (handcrafted one-hot completion).
                let mut rng = StdRng::seed_from_u64(seed);
                let pipe = Pipeline::new(
                    &data,
                    backbone,
                    &cfg,
                    CompletionMode::Single(CompletionOp::OneHot),
                    &mut rng,
                );
                let out = train_node_classification(&pipe, &data, &args.train_cfg(), seed);
                base_ma.push(out.macro_f1);
                base_mi.push(out.micro_f1);
                // HGNN-AC.
                let (_, out) = run_hgnnac_classification(
                    &data,
                    backbone,
                    &cfg,
                    &HgnnAcConfig::default(),
                    &args.train_cfg(),
                    seed,
                );
                ac_ma.push(out.macro_f1);
                ac_mi.push(out.micro_f1);
                // AutoAC (checkpointable with --checkpoint-dir/--resume).
                let ac = autoac_cfg(backbone, dataset, &args);
                let policy =
                    args.ckpt_policy(&format!("{dataset}-{}-s{seed}", backbone.name()));
                let run = run_autoac_classification_checkpointed(
                    &data,
                    backbone,
                    &cfg,
                    &ac,
                    seed,
                    policy.as_ref(),
                );
                auto_ma.push(run.outcome.macro_f1);
                auto_mi.push(run.outcome.micro_f1);
            }
            row(backbone.name(), &[cell(&base_ma), cell(&base_mi)]);
            row(&format!("{}-HGNNAC", backbone.name()), &[cell(&ac_ma), cell(&ac_mi)]);
            row(&format!("{}-AutoAC", backbone.name()), &[cell(&auto_ma), cell(&auto_mi)]);
            if auto_mi.len() >= 2 {
                let best: &Vec<f64> =
                    if autoac_eval::mean(&ac_mi) > autoac_eval::mean(&base_mi) {
                        &ac_mi
                    } else {
                        &base_mi
                    };
                let t = autoac_eval::welch_t_test(&auto_mi, best);
                println!(
                    "p-value ({}-AutoAC > best baseline): {:.2e}",
                    backbone.name(),
                    t.p_one_sided
                );
            }
        }
    }
}
