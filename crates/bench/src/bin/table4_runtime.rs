//! Table IV: end-to-end runtime comparison between AutoAC (search +
//! retrain) and HGNN-AC (pre-learn + train), per backbone and dataset,
//! with the speedup factor.
//!
//! Absolute seconds reflect the CPU substrate, not the paper's V100; the
//! reproduction target is the *structure*: HGNN-AC's pre-learning stage
//! dominates its end-to-end cost, AutoAC has no pre-learning, and the
//! speedup factor is large on the walk-heavy datasets.
//!
//! Phase timings come from the obs span tree (`prelearn`, `search`,
//! `train`), force-enabled for the whole binary, not from per-run private
//! timers; the outcome-struct seconds remain only as a fallback should a
//! span be missing.

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{
    run_autoac_classification, run_hgnnac_classification, Backbone, HgnnAcConfig,
};

/// Total seconds of the root span `path`, falling back to a privately
/// timed figure when the span was not recorded.
fn span_secs(rep: &autoac_obs::ObsReport, path: &str, fallback: f64) -> f64 {
    rep.span_total_secs(path).unwrap_or(fallback)
}

fn main() {
    // Timings for the table are read from obs spans regardless of
    // AUTOAC_OBS in the environment.
    autoac_obs::set_force(Some(true));
    let args = Args::parse();
    println!(
        "### Table IV — end-to-end runtime (seconds, scale {:?}, seed 0)",
        args.scale
    );
    println!(
        "| {:<8} | {:<18} | {:>9} | {:>7} | {:>12} | {:>8} | {:>8} |",
        "dataset", "model", "pre-learn", "search", "train/retrain", "total", "speedup"
    );
    for dataset in ["DBLP", "ACM", "IMDB"] {
        for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
            let data = args.dataset(dataset, 0);
            let cfg = gnn_cfg(&data, backbone, false);

            let _ = autoac_obs::drain();
            let (prelearn_fb, hgnnac_out) = run_hgnnac_classification(
                &data,
                backbone,
                &cfg,
                &HgnnAcConfig::default(),
                &args.train_cfg(),
                0,
            );
            let rep = autoac_obs::drain();
            let prelearn = span_secs(&rep, "prelearn", prelearn_fb);
            let hgnnac_train = span_secs(&rep, "train", hgnnac_out.seconds);
            let hgnnac_total = prelearn + hgnnac_train;

            let ac = autoac_cfg(backbone, dataset, &args);
            let run = run_autoac_classification(&data, backbone, &cfg, &ac, 0);
            let rep = autoac_obs::drain();
            let search = span_secs(&rep, "search", run.search.search_seconds);
            let retrain = span_secs(&rep, "train", run.outcome.seconds);
            let autoac_total = search + retrain;

            println!(
                "| {:<8} | {:<18} | {:>9.1} | {:>7} | {:>12.1} | {:>8.1} | {:>8} |",
                dataset,
                format!("{}-HGNNAC", backbone.name()),
                prelearn,
                "/",
                hgnnac_train,
                hgnnac_total,
                "/"
            );
            println!(
                "| {:<8} | {:<18} | {:>9} | {:>7.1} | {:>12.1} | {:>8.1} | {:>7.1}x |",
                dataset,
                format!("{}-AutoAC", backbone.name()),
                "/",
                search,
                retrain,
                autoac_total,
                hgnnac_total / autoac_total.max(1e-9)
            );
        }
    }
}
