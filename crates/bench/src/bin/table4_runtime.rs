//! Table IV: end-to-end runtime comparison between AutoAC (search +
//! retrain) and HGNN-AC (pre-learn + train), per backbone and dataset,
//! with the speedup factor.
//!
//! Absolute seconds reflect the CPU substrate, not the paper's V100; the
//! reproduction target is the *structure*: HGNN-AC's pre-learning stage
//! dominates its end-to-end cost, AutoAC has no pre-learning, and the
//! speedup factor is large on the walk-heavy datasets.

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{
    run_autoac_classification, run_hgnnac_classification, Backbone, HgnnAcConfig,
};

fn main() {
    let args = Args::parse();
    println!(
        "### Table IV — end-to-end runtime (seconds, scale {:?}, seed 0)",
        args.scale
    );
    println!(
        "| {:<8} | {:<18} | {:>9} | {:>7} | {:>12} | {:>8} | {:>8} |",
        "dataset", "model", "pre-learn", "search", "train/retrain", "total", "speedup"
    );
    for dataset in ["DBLP", "ACM", "IMDB"] {
        for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
            let data = args.dataset(dataset, 0);
            let cfg = gnn_cfg(&data, backbone, false);

            let (prelearn, hgnnac_out) = run_hgnnac_classification(
                &data,
                backbone,
                &cfg,
                &HgnnAcConfig::default(),
                &args.train_cfg(),
                0,
            );
            let hgnnac_total = prelearn + hgnnac_out.seconds;

            let ac = autoac_cfg(backbone, dataset, &args);
            let run = run_autoac_classification(&data, backbone, &cfg, &ac, 0);
            let autoac_total = run.search.search_seconds + run.outcome.seconds;

            println!(
                "| {:<8} | {:<18} | {:>9.1} | {:>7} | {:>12.1} | {:>8.1} | {:>8} |",
                dataset,
                format!("{}-HGNNAC", backbone.name()),
                prelearn,
                "/",
                hgnnac_out.seconds,
                hgnnac_total,
                "/"
            );
            println!(
                "| {:<8} | {:<18} | {:>9} | {:>7.1} | {:>12.1} | {:>8.1} | {:>7.1}x |",
                dataset,
                format!("{}-AutoAC", backbone.name()),
                "/",
                run.search.search_seconds,
                run.outcome.seconds,
                autoac_total,
                hgnnac_total / autoac_total.max(1e-9)
            );
        }
    }
}
