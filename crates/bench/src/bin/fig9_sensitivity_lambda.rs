//! Figure 9: sensitivity to the clustering-loss weight λ.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone};

fn main() {
    let args = Args::parse();
    for &backbone in &[Backbone::SimpleHgn, Backbone::Magnn] {
        for dataset in ["DBLP", "ACM", "IMDB"] {
            header(
                &format!(
                    "Fig. 9 — {} on {dataset}, varying λ (scale {:?}, {} seeds)",
                    backbone.name(),
                    args.scale,
                    args.seeds
                ),
                &["Macro-F1", "Micro-F1"],
            );
            for lambda in [0.1f32, 0.2, 0.3, 0.4, 0.5] {
                let (mut ma, mut mi) = (Vec::new(), Vec::new());
                for seed in 0..args.seeds as u64 {
                    let data = args.dataset(dataset, seed);
                    let cfg = gnn_cfg(&data, backbone, false);
                    let mut ac = autoac_cfg(backbone, dataset, &args);
                    ac.lambda = lambda;
                    let run = run_autoac_classification(&data, backbone, &cfg, &ac, seed);
                    ma.push(run.outcome.macro_f1);
                    mi.push(run.outcome.micro_f1);
                }
                row(&format!("λ = {lambda:.1}"), &[cell(&ma), cell(&mi)]);
            }
        }
    }
}
