//! Table IX: SimpleHGN-AutoAC with varying attribute missing rates in node
//! classification. Missing rates are lowered by handing selected node types
//! handcrafted one-hot attributes (making them "attributed"); the inherent
//! rate keeps only the Table-I raw type.

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{run_autoac_classification, Backbone};
use autoac_data::Dataset;

/// One dataset's ladder: rows of (label, node types kept missing).
type Ladder = Vec<(&'static str, Vec<&'static str>)>;

fn main() {
    let args = Args::parse();
    // Per dataset: ladders of node-type names that *stay missing*; all
    // other non-raw types get one-hot attributes. Mirrors Table IX rows.
    let ladders: [(&str, Ladder); 3] = [
        (
            "DBLP",
            vec![
                ("0%", vec![]),
                ("15%", vec!["author"]),
                ("30%", vec!["term", "venue"]),
                ("45% (inherent)", vec!["author", "term", "venue"]),
            ],
        ),
        (
            "ACM",
            vec![
                ("0%", vec![]),
                ("17%", vec!["subject", "term"]),
                ("54%", vec!["author", "subject"]),
                ("72% (inherent)", vec!["author", "subject", "term"]),
            ],
        ),
        (
            "IMDB",
            vec![
                ("0%", vec![]),
                ("37%", vec!["keyword"]),
                ("67%", vec!["actor", "keyword"]),
                ("76% (inherent)", vec!["director", "actor", "keyword"]),
            ],
        ),
    ];
    for (dataset, ladder) in ladders {
        header(
            &format!("Table IX — SimpleHGN-AutoAC on {dataset} (scale {:?})", args.scale),
            &["missing types", "actual%", "Macro-F1", "Micro-F1"],
        );
        for (label, missing_types) in ladder {
            let (mut ma, mut mi) = (Vec::new(), Vec::new());
            let mut actual = 0.0;
            for seed in 0..args.seeds as u64 {
                let data = with_missing_pattern(args.dataset(dataset, seed), &missing_types);
                actual = data.missing_rate() * 100.0;
                let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
                let ac = autoac_cfg(Backbone::SimpleHgn, dataset, &args);
                let run =
                    run_autoac_classification(&data, Backbone::SimpleHgn, &cfg, &ac, seed);
                ma.push(run.outcome.macro_f1);
                mi.push(run.outcome.micro_f1);
            }
            row(
                label,
                &[
                    missing_types.join("+"),
                    format!("{actual:.1}%"),
                    cell(&ma),
                    cell(&mi),
                ],
            );
        }
    }
}

/// Gives every non-raw type one-hot attributes except those named in
/// `keep_missing`.
fn with_missing_pattern(data: Dataset, keep_missing: &[&str]) -> Dataset {
    let mut d = data;
    for t in 0..d.graph.num_node_types() {
        if d.features[t].is_some() {
            continue; // Table-I raw type stays raw
        }
        let name = d.graph.node_type_name(t).to_string();
        if !keep_missing.contains(&name.as_str()) {
            d = d.with_onehot_features(t);
        }
    }
    d
}
