//! Table I: dataset statistics. Prints node/edge counts per type, the
//! attribute pattern, and the target node/edge type of every preset at the
//! configured scale.

use autoac_bench::Args;

fn main() {
    let args = Args::parse();
    println!("### Table I — dataset statistics (scale {:?})", args.scale);
    println!(
        "| {:<8} | {:>7} | {:>7} | {:>8} | {:<12} | per-type |",
        "dataset", "#nodes", "#edges", "missing%", "target"
    );
    for name in ["dblp", "acm", "imdb", "lastfm"] {
        let d = args.dataset(name, 0);
        let per_type: Vec<String> = (0..d.graph.num_node_types())
            .map(|t| {
                format!(
                    "{}:{}{}",
                    d.graph.node_type_name(t),
                    d.graph.num_nodes_of_type(t),
                    if d.features[t].is_some() { " (raw)" } else { " (missing)" }
                )
            })
            .collect();
        let target = if d.num_classes > 0 {
            d.graph.node_type_name(d.target_type).to_string()
        } else {
            let e = d.lp_edge_type.expect("lp dataset");
            d.graph.edge_type(e).name.clone()
        };
        println!(
            "| {:<8} | {:>7} | {:>7} | {:>7.1}% | {:<12} | {} |",
            d.name,
            d.graph.num_nodes(),
            d.graph.num_edges(),
            d.missing_rate() * 100.0,
            target,
            per_type.join(", ")
        );
    }
    println!("\n(#edges counts stored undirected edges; HGB's DBLP/ACM/IMDB tables count both directions.)");
}
