//! Table X: SimpleHGN vs. SimpleHGN-AutoAC under varying masked-edge rates
//! in link prediction (DBLP, IMDB; 5/10/20/30%).

use autoac_bench::{autoac_cfg, cell, gnn_cfg, header, row, Args};
use autoac_core::{
    run_autoac_link_prediction, train_link_prediction, Backbone, CompletionMode, Pipeline,
};
use autoac_completion::CompletionOp;
use autoac_data::mask_edges;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    for dataset in ["DBLP", "IMDB"] {
        header(
            &format!("Table X — {dataset} (scale {:?}, {} seeds)", args.scale, args.seeds),
            &["mask", "ROC-AUC", "MRR"],
        );
        for rate in [0.05, 0.10, 0.20, 0.30] {
            let (mut b_auc, mut b_mrr) = (Vec::new(), Vec::new());
            let (mut a_auc, mut a_mrr) = (Vec::new(), Vec::new());
            for seed in 0..args.seeds as u64 {
                let data = args.dataset(dataset, seed);
                let mut rng = StdRng::seed_from_u64(seed);
                let split = mask_edges(&data, rate, &mut rng);
                let cfg = gnn_cfg(&data, Backbone::SimpleHgnLp, true);
                let pipe = Pipeline::new(
                    &split.train_data,
                    Backbone::SimpleHgnLp,
                    &cfg,
                    CompletionMode::Single(CompletionOp::OneHot),
                    &mut rng,
                );
                let out = train_link_prediction(&pipe, &split, &args.train_cfg(), seed);
                b_auc.push(out.roc_auc);
                b_mrr.push(out.mrr);
                let ac = autoac_cfg(Backbone::SimpleHgnLp, dataset, &args);
                let run =
                    run_autoac_link_prediction(&split, Backbone::SimpleHgnLp, &cfg, &ac, seed);
                a_auc.push(run.outcome.roc_auc);
                a_mrr.push(run.outcome.mrr);
            }
            row(
                "SimpleHGN",
                &[format!("{:.0}%", rate * 100.0), cell(&b_auc), cell(&b_mrr)],
            );
            row(
                "SimpleHGN-AutoAC",
                &[format!("{:.0}%", rate * 100.0), cell(&a_auc), cell(&a_mrr)],
            );
        }
    }
}
