//! Observability smoke target for `scripts/verify.sh`: runs one small
//! AutoAC classification run (search + retrain) and writes a JSON digest
//! of everything the obs layer must leave untouched — α bits, op
//! assignment, the `L_GmoC` trace, and the test metrics. verify.sh runs it
//! twice, with `AUTOAC_OBS=0` and `AUTOAC_OBS=1`, and diffs the digests:
//! instrumentation that perturbs a single bit fails the pass.
//!
//! When obs is enabled the binary additionally exports the run's telemetry
//! to `<obs-dir>/OBS_smoke.jsonl`, prints the span-tree report, and
//! self-validates the export: every line must parse with the data crate's
//! strict JSON parser, and the span tree and trajectory series the search
//! loop promises must actually be present. Any miss panics, which verify.sh
//! treats as failure.
//!
//! Extra flags beyond the shared harness set:
//!
//! ```text
//! --out FILE       where to write the JSON digest       (default: stdout)
//! --obs-dir DIR    where the OBS_smoke.jsonl export goes (default: results)
//! ```

use std::path::PathBuf;

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{run_autoac_classification, Backbone};
use autoac_data::json::{self, Value};

fn main() {
    let mut out_path: Option<PathBuf> = None;
    let mut obs_dir = PathBuf::from("results");
    let args = Args::parse_extra(|flag, value| match flag {
        "--out" => {
            out_path = Some(PathBuf::from(value));
            true
        }
        "--obs-dir" => {
            obs_dir = PathBuf::from(value);
            true
        }
        _ => false,
    });

    let seed = 0;
    let data = args.dataset("IMDB", seed);
    let cfg = gnn_cfg(&data, Backbone::Gcn, false);
    let ac = autoac_cfg(Backbone::Gcn, "IMDB", &args);
    let run = run_autoac_classification(&data, Backbone::Gcn, &cfg, &ac, seed);

    // The digest carries only bit-stable quantities, nothing
    // timing-dependent, so obs-on and obs-off digests must be identical.
    let ints = |xs: &[usize]| Value::Arr(xs.iter().map(|&x| Value::Num(x as f64)).collect());
    let bits32 =
        |xs: &[f32]| Value::Arr(xs.iter().map(|x| Value::Num(x.to_bits() as f64)).collect());
    let bits64 = |x: f64| Value::Str(format!("{:016x}", x.to_bits()));
    let digest = Value::Obj(vec![
        ("assignment".into(), ints(&run.search.assignment.iter().map(|op| op.index()).collect::<Vec<_>>())),
        ("alpha_bits".into(), bits32(run.search.alpha.data())),
        ("gmoc_trace_bits".into(), bits32(&run.search.gmoc_trace)),
        ("macro_f1_bits".into(), bits64(run.outcome.macro_f1)),
        ("micro_f1_bits".into(), bits64(run.outcome.micro_f1)),
        ("retrain_epochs".into(), Value::Num(run.outcome.epochs_run as f64)),
    ]);
    let text = json::to_string(&digest);
    match &out_path {
        Some(path) => std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }),
        None => println!("{text}"),
    }

    // With obs disabled the run is digest-only; enabled, export + validate.
    let Some(rep) = autoac_obs::finish_to(&obs_dir, "smoke") else { return };
    println!("{}", rep.render_tree());
    validate(&rep, &obs_dir.join("OBS_smoke.jsonl"), ac.search_epochs);
}

/// Panics unless the report and its JSONL export carry everything the
/// observability layer promises for a search + retrain run.
fn validate(rep: &autoac_obs::ObsReport, jsonl: &std::path::Path, search_epochs: usize) {
    for path in ["search", "search/epoch", "train", "train/epoch"] {
        assert!(rep.span(path).is_some(), "span {path:?} missing from the report");
    }
    assert_eq!(rep.span("search").unwrap().count, 1, "exactly one search span");
    assert_eq!(
        rep.span("search/epoch").unwrap().count,
        search_epochs as u64,
        "one epoch span per search epoch"
    );
    assert!(
        rep.spans.iter().any(|s| {
            s.count > 0
                && s.path.starts_with("search/epoch/")
                && (s.path.ends_with("matmul") || s.path.ends_with("spmm"))
        }),
        "kernel spans must nest under the search epochs"
    );
    for name in ["alpha_entropy", "pool_hit_rate", "gmoc_loss"] {
        assert!(
            rep.events.iter().any(
                |e| matches!(e, autoac_obs::Event::Series { name: n, .. } if *n == name)
            ),
            "trajectory series {name:?} missing from the report"
        );
    }

    let text = std::fs::read_to_string(jsonl)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", jsonl.display()));
    let mut lines = 0usize;
    let mut types = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let v = json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        let ty = v
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| panic!("line {} lacks a type field", i + 1));
        types.insert(ty.to_string());
        lines += 1;
    }
    for required in ["meta", "span", "series", "counter"] {
        assert!(types.contains(required), "no {required} records in {}", jsonl.display());
    }
    println!(
        "obs_smoke: {} — {lines} lines valid, record types {:?}",
        jsonl.display(),
        types.iter().map(String::as_str).collect::<Vec<_>>()
    );
}
