//! Figures 6 & 7: per-node-type distribution of searched completion
//! operations on ACM (Fig. 6) and IMDB (Fig. 7), using SimpleHGN-AutoAC.

use autoac_bench::{autoac_cfg, gnn_cfg, Args};
use autoac_core::{search, Backbone, ClassificationTask};
use autoac_completion::CompletionOp;

fn main() {
    let args = Args::parse();
    for (fig, dataset) in [("6", "ACM"), ("7", "IMDB")] {
        let data = args.dataset(dataset, 0);
        let cfg = gnn_cfg(&data, Backbone::SimpleHgn, false);
        let ac = autoac_cfg(Backbone::SimpleHgn, dataset, &args);
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::SimpleHgn, &cfg, &ac, &task, 0);

        println!(
            "\n### Fig. {fig} — per-type op distribution on {dataset} (SimpleHGN-AutoAC, scale {:?})",
            args.scale
        );
        println!(
            "| {:<10} | {:>8} | {:>8} | {:>8} | {:>11} |",
            "node type", "MEAN", "GCN", "PPNP", "One-hot"
        );
        let missing = data.missing_nodes();
        for t in 0..data.graph.num_node_types() {
            let range = data.graph.nodes_of_type(t);
            let mut counts = [0usize; 4];
            for (pos, &v) in missing.iter().enumerate() {
                if range.contains(&(v as usize)) {
                    counts[out.assignment[pos].index()] += 1;
                }
            }
            let total: usize = counts.iter().sum();
            if total == 0 {
                continue; // attributed type
            }
            let pct = |op: CompletionOp| 100.0 * counts[op.index()] as f64 / total as f64;
            println!(
                "| {:<10} | {:>7.1}% | {:>7.1}% | {:>7.1}% | {:>10.1}% |",
                data.graph.node_type_name(t),
                pct(CompletionOp::Mean),
                pct(CompletionOp::Gcn),
                pct(CompletionOp::Ppnp),
                pct(CompletionOp::OneHot),
            );
        }
    }
}
