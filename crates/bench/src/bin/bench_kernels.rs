//! Kernel A/B benchmark and offline dispatch tuner.
//!
//! Measures the scalar vs register-blocked microkernels (see
//! `crates/tensor/src/ops/microkernel.rs`) on a fixed set of paper-scale
//! shapes — or on shapes replayed from an obs JSONL export
//! (`--replay results/OBS_<run>.jsonl`, using the `"type":"shape"` records
//! that `autoac_tensor::dispatch` emits) — asserts the two variants agree
//! bitwise on every measured shape, fits the linear cost model the
//! dispatch table is built from, and writes `results/BENCH_kernels.json`.
//!
//! ```text
//! bench_kernels [--replay FILE] [--out FILE] [--iters-ms N] [--smoke x]
//! ```
//!
//! `--smoke x` shrinks shapes and iteration budgets for the verify.sh
//! smoke pass; `--iters-ms` sets the per-measurement time budget.
//!
//! The fitted weights are meant to be pasted into
//! `CostModel::default_for` in `crates/tensor/src/dispatch.rs` when kernels
//! or target hardware change; the JSON is the provenance record.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use autoac_tensor::dispatch::{classify, with_kernel, CostModel, KernelChoice, KernelOp};
use autoac_tensor::parallel::with_threads;
use autoac_tensor::{Csr, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One benchmarked kernel invocation.
#[derive(Clone, Copy, Debug)]
struct Shape {
    op: KernelOp,
    /// Output rows (dense) / CSR rows (spmm).
    m: usize,
    /// Inner dimension (dense) / CSR cols (spmm).
    k: usize,
    /// Output cols.
    n: usize,
    /// Stored nonzeros; 0 for dense ops.
    nnz: usize,
}

/// Paper-scale defaults: the forward/backward shapes a SimpleHGN/MAGNN
/// training step actually runs on the HGB datasets (DBLP 4057 target
/// nodes × 334 attrs, ACM ~3k × 1902, hidden 64), plus adversarial narrow
/// and mid-size shapes so the fit sees both sides of the break-even.
fn default_shapes(smoke: bool) -> Vec<Shape> {
    use KernelOp::*;
    if smoke {
        return vec![
            Shape { op: MatMul, m: 256, k: 64, n: 64, nnz: 0 },
            Shape { op: MatMulTn, m: 64, k: 256, n: 64, nnz: 0 },
            Shape { op: MatMulNt, m: 256, k: 64, n: 64, nnz: 0 },
            Shape { op: Spmm, m: 512, k: 512, n: 64, nnz: 4096 },
        ];
    }
    vec![
        // Forward projections and GNN layers.
        Shape { op: MatMul, m: 4057, k: 334, n: 64, nnz: 0 },
        Shape { op: MatMul, m: 3025, k: 1902, n: 64, nnz: 0 },
        Shape { op: MatMul, m: 4057, k: 64, n: 64, nnz: 0 },
        Shape { op: MatMul, m: 4057, k: 64, n: 7, nnz: 0 },
        Shape { op: MatMul, m: 128, k: 64, n: 64, nnz: 0 },
        // Backward: dW = Xᵀ·dY (tn) and dX = dY·Wᵀ (nt).
        Shape { op: MatMulTn, m: 334, k: 4057, n: 64, nnz: 0 },
        Shape { op: MatMulTn, m: 64, k: 4057, n: 64, nnz: 0 },
        Shape { op: MatMulTn, m: 64, k: 128, n: 64, nnz: 0 },
        Shape { op: MatMulNt, m: 4057, k: 64, n: 334, nnz: 0 },
        Shape { op: MatMulNt, m: 4057, k: 64, n: 64, nnz: 0 },
        Shape { op: MatMulNt, m: 128, k: 7, n: 64, nnz: 0 },
        // Aggregation: adjacency × features at HGB-ish densities.
        Shape { op: Spmm, m: 4057, k: 4057, n: 64, nnz: 20_000 },
        Shape { op: Spmm, m: 3025, k: 3025, n: 64, nnz: 30_000 },
        Shape { op: Spmm, m: 4057, k: 4057, n: 7, nnz: 20_000 },
        Shape { op: Spmm, m: 1024, k: 1024, n: 64, nnz: 2048 },
    ]
}

fn op_by_name(name: &str) -> Option<KernelOp> {
    Some(match name {
        "matmul" => KernelOp::MatMul,
        "matmul_tn" => KernelOp::MatMulTn,
        "matmul_nt" => KernelOp::MatMulNt,
        "spmm" => KernelOp::Spmm,
        _ => return None,
    })
}

/// Parses `"type":"shape"` records from an obs JSONL export, most-executed
/// first, capped so a replay stays a bounded run.
fn replay_shapes(path: &str) -> Vec<Shape> {
    let text = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_kernels: cannot read --replay {path}: {e}"));
    let mut out: Vec<(u64, Shape)> = Vec::new();
    for line in text.lines() {
        let Ok(v) = autoac_data::json::parse(line) else { continue };
        if v.get("type").and_then(|t| t.as_str()) != Some("shape") {
            continue;
        }
        let field = |k: &str| v.get(k).and_then(|x| x.as_usize()).unwrap_or(0);
        let Some(op) = v.get("op").and_then(|o| o.as_str()).and_then(op_by_name) else {
            continue;
        };
        let count = field("count") as u64;
        let shape =
            Shape { op, m: field("m"), k: field("k"), n: field("n"), nnz: field("nnz") };
        if shape.m * shape.n == 0 {
            continue;
        }
        out.push((count, shape));
    }
    assert!(!out.is_empty(), "bench_kernels: no shape records in {path}");
    out.sort_by_key(|(count, _)| std::cmp::Reverse(*count));
    out.truncate(32);
    out.into_iter().map(|(_, s)| s).collect()
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, nnz: usize) -> Csr {
    Csr::from_coo(
        rows,
        cols,
        (0..nnz).map(|_| {
            (
                rng.gen_range(0..rows) as u32,
                rng.gen_range(0..cols) as u32,
                rng.gen_range(-1.0f32..1.0),
            )
        }),
    )
}

/// Inputs for one shape, built once and reused across variants so both
/// measure identical data.
enum Inputs {
    Dense(Matrix, Matrix),
    Sparse(Csr, Matrix),
}

impl Shape {
    fn build(&self, rng: &mut StdRng) -> Inputs {
        match self.op {
            KernelOp::MatMul => {
                Inputs::Dense(random_matrix(rng, self.m, self.k), random_matrix(rng, self.k, self.n))
            }
            // tn computes selfᵀ·other with self stored k×m.
            KernelOp::MatMulTn => {
                Inputs::Dense(random_matrix(rng, self.k, self.m), random_matrix(rng, self.k, self.n))
            }
            // nt computes self·otherᵀ with other stored n×k.
            KernelOp::MatMulNt => {
                Inputs::Dense(random_matrix(rng, self.m, self.k), random_matrix(rng, self.n, self.k))
            }
            KernelOp::Spmm => Inputs::Sparse(
                random_csr(rng, self.m, self.k, self.nnz),
                random_matrix(rng, self.k, self.n),
            ),
        }
    }

    fn run(&self, inputs: &Inputs) -> Matrix {
        match (self.op, inputs) {
            (KernelOp::MatMul, Inputs::Dense(a, b)) => a.matmul(b),
            (KernelOp::MatMulTn, Inputs::Dense(a, b)) => a.matmul_tn(b),
            (KernelOp::MatMulNt, Inputs::Dense(a, b)) => a.matmul_nt(b),
            (KernelOp::Spmm, Inputs::Sparse(a, x)) => a.matmul_dense(x),
            _ => unreachable!("inputs built for the same op"),
        }
    }
}

/// Median wall-time in milliseconds per variant, from `reps` timed batches
/// each sized to run for roughly `budget_ms`. The variants are measured
/// **interleaved** (scalar, blocked, auto, scalar, …) so slow drift —
/// frequency scaling, another process waking up — lands on all three
/// equally instead of biasing whichever was measured last.
fn measure_all(shape: &Shape, inputs: &Inputs, budget_ms: f64, reps: usize) -> [f64; 3] {
    const CHOICES: [KernelChoice; 3] =
        [KernelChoice::Scalar, KernelChoice::Blocked, KernelChoice::Auto];
    // Calibrate the batch size on the slowest variant's warm-up call so
    // every batch meets the budget.
    let once_ms = CHOICES
        .iter()
        .map(|&c| {
            with_kernel(c, || {
                let t0 = Instant::now();
                std::hint::black_box(shape.run(inputs));
                t0.elapsed().as_secs_f64() * 1e3
            })
        })
        .fold(0.0f64, f64::max);
    let batch = ((budget_ms / once_ms.max(1e-4)) as usize).clamp(1, 10_000);
    let mut times = [const { Vec::new() }; 3];
    for _ in 0..reps {
        for (v, &choice) in CHOICES.iter().enumerate() {
            with_kernel(choice, || {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(shape.run(std::hint::black_box(inputs)));
                }
                times[v].push(t.elapsed().as_secs_f64() * 1e3 / batch as f64);
            });
        }
    }
    times.map(|mut t| {
        t.sort_by(f64::total_cmp);
        t[t.len() / 2]
    })
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

/// Measured A/B cell for one shape.
struct Cell {
    shape: Shape,
    scalar_ms: f64,
    blocked_ms: f64,
    auto_ms: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.blocked_ms
    }
}

/// Ridge-regularized least squares for the per-op cost model: features
/// `[1, work_log2, n_log2, density, threads]`, target
/// `log2(scalar/blocked)`. Returns `None` when an op has no samples.
fn fit(cells: &[&Cell]) -> Option<CostModel> {
    if cells.is_empty() {
        return None;
    }
    const D: usize = 5;
    let mut xtx = [[0.0f64; D]; D];
    let mut xty = [0.0f64; D];
    for c in cells {
        let cl = classify(
            c.shape.m,
            c.shape.k,
            c.shape.n,
            (c.shape.nnz > 0).then_some(c.shape.nnz),
        );
        let x = [
            1.0,
            cl.work_log2 as f64,
            cl.n_log2 as f64,
            cl.density as f64,
            cl.threads as f64,
        ];
        let y = c.speedup().max(1e-6).log2();
        for i in 0..D {
            for j in 0..D {
                xtx[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * y;
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-3; // ridge: keeps the solve well-posed on few samples
    }
    let w = solve(&mut xtx, &mut xty)?;
    Some(CostModel {
        bias: w[0] as f32,
        w_work: w[1] as f32,
        w_n: w[2] as f32,
        w_density: w[3] as f32,
        w_threads: w[4] as f32,
    })
}

/// Gaussian elimination with partial pivoting on the 5×5 normal equations.
fn solve(a: &mut [[f64; 5]; 5], b: &mut [f64; 5]) -> Option<[f64; 5]> {
    const D: usize = 5;
    for col in 0..D {
        let pivot = (col..D).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..D {
            let f = a[row][col] / a[col][col];
            for c in col..D {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; D];
    for col in (0..D).rev() {
        let mut v = b[col];
        for c in col + 1..D {
            v -= a[col][c] * x[c];
        }
        x[col] = v / a[col][col];
    }
    Some(x)
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".into()
    }
}

fn main() {
    let mut replay: Option<String> = None;
    let mut out_path = PathBuf::from("results/BENCH_kernels.json");
    let mut smoke = false;
    let mut budget_ms: f64 = 60.0;
    let _args = autoac_bench::Args::parse_extra(|flag, value| match flag {
        "--replay" => {
            replay = Some(value.to_string());
            true
        }
        "--out" => {
            out_path = PathBuf::from(value);
            true
        }
        "--smoke" => {
            smoke = true;
            true
        }
        "--iters-ms" => {
            budget_ms = value.parse().expect("--iters-ms takes milliseconds");
            true
        }
        _ => false,
    });
    if smoke {
        budget_ms = budget_ms.min(10.0);
    }
    let reps = if smoke { 3 } else { 5 };

    let shapes = match &replay {
        Some(path) => replay_shapes(path),
        None => default_shapes(smoke),
    };

    let mut rng = StdRng::seed_from_u64(7);
    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>9} {:>11} {:>11} {:>8} {:>8}",
        "op", "m", "k", "n", "nnz", "scalar ms", "blocked ms", "speedup", "auto"
    );
    for shape in &shapes {
        let inputs = shape.build(&mut rng);
        // Bitwise parity on the measured inputs doubles as the A/B proof
        // that dispatch cannot change results.
        let reference = with_kernel(KernelChoice::Scalar, || shape.run(&inputs));
        for choice in [KernelChoice::Blocked, KernelChoice::Auto] {
            let got = with_kernel(choice, || shape.run(&inputs));
            assert_bitwise(&reference, &got, &format!("{:?} {choice:?}", shape.op));
        }
        let [scalar_ms, blocked_ms, auto_ms] = measure_all(shape, &inputs, budget_ms, reps);
        let cell = Cell { shape: *shape, scalar_ms, blocked_ms, auto_ms };
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>9} {:>11.4} {:>11.4} {:>8.2} {:>8.2}",
            shape.op.name(),
            shape.m,
            shape.k,
            shape.n,
            shape.nnz,
            scalar_ms,
            blocked_ms,
            cell.speedup(),
            scalar_ms / auto_ms,
        );
        cells.push(cell);
    }

    // Auto must track the better variant: on every shape it may not lose
    // more than 20% to the faster of the two forced choices (tolerance for
    // timer noise at smoke budgets).
    let mut auto_regressions = 0;
    for c in &cells {
        let best = c.scalar_ms.min(c.blocked_ms);
        if c.auto_ms > best * 1.2 {
            auto_regressions += 1;
            println!(
                "WARN auto regression on {:?} {}x{}x{}: auto {:.4}ms vs best {:.4}ms",
                c.shape.op.name(),
                c.shape.m,
                c.shape.k,
                c.shape.n,
                c.auto_ms,
                best
            );
        }
    }

    let paper_dense: Vec<f64> = cells
        .iter()
        .filter(|c| {
            matches!(c.shape.op, KernelOp::MatMul | KernelOp::MatMulTn | KernelOp::MatMulNt)
                && c.shape.m * c.shape.k * c.shape.n >= 10_000_000
        })
        .map(Cell::speedup)
        .collect();
    let spmm: Vec<f64> = cells
        .iter()
        .filter(|c| matches!(c.shape.op, KernelOp::Spmm) && c.shape.n >= 8)
        .map(Cell::speedup)
        .collect();
    let geomean = |v: &[f64]| {
        if v.is_empty() {
            1.0
        } else {
            (v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp()
        }
    };

    let mut json = String::from("{\n  \"schema\": 1,\n  \"shapes\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"nnz\": {}, \
             \"scalar_ms\": {}, \"blocked_ms\": {}, \"auto_ms\": {}, \"speedup\": {}}}{}\n",
            c.shape.op.name(),
            c.shape.m,
            c.shape.k,
            c.shape.n,
            c.shape.nnz,
            jnum(c.scalar_ms),
            jnum(c.blocked_ms),
            jnum(c.auto_ms),
            jnum(c.speedup()),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"fit\": {\n");
    let ops = [KernelOp::MatMul, KernelOp::MatMulTn, KernelOp::MatMulNt, KernelOp::Spmm];
    for (i, op) in ops.iter().enumerate() {
        let op_cells: Vec<&Cell> = cells.iter().filter(|c| c.shape.op == *op).collect();
        let model = fit(&op_cells).unwrap_or_else(|| CostModel::default_for(*op));
        json.push_str(&format!(
            "    \"{}\": {{\"bias\": {}, \"w_work\": {}, \"w_n\": {}, \"w_density\": {}, \
             \"w_threads\": {}}}{}\n",
            op.name(),
            jnum(model.bias as f64),
            jnum(model.w_work as f64),
            jnum(model.w_n as f64),
            jnum(model.w_density as f64),
            jnum(model.w_threads as f64),
            if i + 1 < ops.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"summary\": {{\"dense_speedup_geomean\": {}, \"spmm_speedup_geomean\": {}, \
         \"auto_regressions\": {}, \"smoke\": {}}}\n}}\n",
        jnum(geomean(&paper_dense)),
        jnum(geomean(&spmm)),
        auto_regressions,
        smoke
    ));
    if let Some(parent) = out_path.parent() {
        fs::create_dir_all(parent).expect("create results dir");
    }
    fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!(
        "\ndense speedup (paper-scale geomean): {:.2}x, spmm: {:.2}x -> {}",
        geomean(&paper_dense),
        geomean(&spmm),
        out_path.display()
    );
    // Thread-count parity spot check: the same shape at 1/2/8 threads must
    // agree bitwise for every choice (cheap; uses the first dense shape).
    let spot = shapes[0];
    let inputs = spot.build(&mut rng);
    let reference = with_threads(1, || spot.run(&inputs));
    for threads in [2, 8] {
        for choice in [KernelChoice::Scalar, KernelChoice::Blocked, KernelChoice::Auto] {
            let got = with_threads(threads, || with_kernel(choice, || spot.run(&inputs)));
            assert_bitwise(&reference, &got, &format!("threads={threads} {choice:?}"));
        }
    }
    println!("thread-count parity: ok");
}
