//! Serving benchmark and HTTP driver.
//!
//! Two modes:
//!
//! **In-process A/B (default)** — trains a small checkpoint, then runs the
//! same closed-loop concurrent client load twice against an in-process
//! server: once with micro-batching enabled, once disabled. Reports
//! throughput, client-observed p50/p99 latency (obs power-of-two
//! histogram quantiles), and server-side batch statistics, asserts the
//! two phases' responses are **bitwise identical**, and writes
//! `results/BENCH_serve.json`.
//!
//! **External driver (`--connect HOST:PORT`)** — drives an already
//! running `autoac_serve` process with the same closed-loop load, checks
//! `/healthz`, validates that `/metrics` parses as Prometheus exposition
//! text, prints the response digest (so `scripts/verify.sh` can diff a
//! batched against an unbatched server), and optionally issues a graceful
//! `POST /admin/shutdown` (`--shutdown`).
//!
//! ```text
//! serve_bench [--smoke] [--out FILE]              # in-process A/B
//! serve_bench --connect HOST:PORT [--clients N] [--requests N]
//!             [--shutdown]                        # drive external server
//! ```

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use autoac_core::{train_serve_state, InferenceModel, ServeTrainSpec, TrainConfig};
use autoac_data::json::{self, Value};
use autoac_serve::{BatchConfig, Client, ServeConfig, Server};

/// Fixed pool of node sets every client cycles through, so each (set,
/// checkpoint) pair has one well-defined canonical response.
const NUM_SETS: usize = 32;
const NODES_PER_SET: usize = 4;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn make_sets(num_nodes: usize) -> Vec<Vec<usize>> {
    (0..NUM_SETS)
        .map(|i| (0..NODES_PER_SET).map(|j| (i * 37 + j * 11 + 1) % num_nodes).collect())
        .collect()
}

fn nodes_body(nodes: &[usize]) -> String {
    let ids: Vec<String> = nodes.iter().map(usize::to_string).collect();
    format!("{{\"nodes\":[{}]}}", ids.join(","))
}

struct PhaseStats {
    wall_secs: f64,
    total_requests: usize,
    p50_us: f64,
    p99_us: f64,
    /// Canonical response body per node set.
    canon: Vec<String>,
    digest: u64,
    /// Everything recorded while the phase ran — client latency plus the
    /// server-side `serve_*` counters and histograms (shared registry).
    report: autoac_obs::ObsReport,
}

/// Closed-loop load: `clients` threads, each issuing `requests` classify
/// calls over one keep-alive connection. Asserts that every response for
/// a given node set is identical across clients and over time.
fn run_phase(addr: &str, clients: usize, requests: usize, sets: &[Vec<usize>]) -> PhaseStats {
    let _ = autoac_obs::drain(); // clean slate for the latency histogram
    let sets = Arc::new(sets.to_vec());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let sets = Arc::clone(&sets);
            let addr = addr.to_string();
            thread::spawn(move || {
                let mut c = Client::connect(addr.as_str()).expect("connect");
                let mut seen: Vec<Option<String>> = vec![None; sets.len()];
                for i in 0..requests {
                    let si = (ci * 7 + i) % sets.len();
                    let body = nodes_body(&sets[si]);
                    let r0 = Instant::now();
                    let r = c.post("/v1/classify", &body).expect("classify");
                    autoac_obs::hist_record("bench_client_ns", r0.elapsed().as_nanos() as f64);
                    assert_eq!(r.status, 200, "{}", r.text());
                    let text = r.text();
                    match &seen[si] {
                        Some(prev) => assert_eq!(
                            prev, &text,
                            "responses for one node set must never vary"
                        ),
                        None => seen[si] = Some(text),
                    }
                }
                seen
            })
        })
        .collect();

    let mut canon: Vec<Option<String>> = vec![None; sets.len()];
    for h in handles {
        for (si, body) in h.join().expect("client thread").into_iter().enumerate() {
            let Some(body) = body else { continue };
            match &canon[si] {
                Some(prev) => {
                    assert_eq!(prev, &body, "responses must agree across clients")
                }
                None => canon[si] = Some(body),
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    let rep = autoac_obs::drain();
    let (p50, p99) = match rep.hists.get("bench_client_ns") {
        Some(h) => (h.quantile(0.5) / 1e3, h.quantile(0.99) / 1e3),
        None => (f64::NAN, f64::NAN),
    };
    let canon: Vec<String> = canon.into_iter().map(Option::unwrap_or_default).collect();
    let mut all = Vec::new();
    for body in &canon {
        all.extend_from_slice(body.as_bytes());
        all.push(b'\n');
    }
    PhaseStats {
        wall_secs,
        total_requests: clients * requests,
        p50_us: p50,
        p99_us: p99,
        digest: fnv1a64(&all),
        canon,
        report: rep,
    }
}

/// Validates Prometheus exposition text: every line is a comment or
/// `name[{labels}] value` with a parseable value. Returns the series
/// count.
fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut series = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let name_end = name_part.find('{').unwrap_or(name_part.len());
        let name = &name_part[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name: {line:?}", lineno + 1));
        }
        if name_part[name_end..].starts_with('{') && !name_part.ends_with('}') {
            return Err(format!("line {}: unclosed label set: {line:?}", lineno + 1));
        }
        let ok = matches!(value_part, "+Inf" | "-Inf" | "NaN")
            || value_part.parse::<f64>().is_ok();
        if !ok {
            return Err(format!("line {}: bad value {value_part:?}", lineno + 1));
        }
        series += 1;
    }
    if series == 0 {
        return Err("no series in exposition text".into());
    }
    Ok(series)
}

fn main() {
    let mut out_path = PathBuf::from("results/BENCH_serve.json");
    let mut connect: Option<String> = None;
    let mut smoke = false;
    let mut shutdown = false;
    let mut clients = 8usize;
    let mut requests = 200usize;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().expect("flag takes a value");
        match flag.as_str() {
            "--out" => out_path = PathBuf::from(value()),
            "--connect" => connect = Some(value()),
            "--clients" => clients = value().parse().expect("--clients N"),
            "--requests" => requests = value().parse().expect("--requests N"),
            "--smoke" => smoke = true,
            "--shutdown" => shutdown = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    if smoke {
        clients = clients.min(4);
        requests = requests.min(40);
    }
    autoac_obs::set_force(Some(true));

    match connect {
        Some(addr) => drive_external(&addr, clients, requests, shutdown),
        None => ab_benchmark(&out_path, clients, requests, smoke),
    }
}

fn drive_external(addr: &str, clients: usize, requests: usize, shutdown: bool) {
    let mut c = Client::connect(addr).expect("connect");
    let health = c.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    let doc = json::parse(&health.text()).expect("healthz json");
    let num_nodes = doc.get("nodes").and_then(Value::as_usize).expect("nodes field");
    let ckpt = doc.get("ckpt").and_then(Value::as_str).expect("ckpt field").to_string();
    println!("healthz: ok, ckpt={ckpt}, nodes={num_nodes}");

    let sets = make_sets(num_nodes);
    let stats = run_phase(addr, clients, requests, &sets);
    println!(
        "load: {} requests in {:.2}s ({:.0} req/s), p50 {:.0}us p99 {:.0}us",
        stats.total_requests,
        stats.wall_secs,
        stats.total_requests as f64 / stats.wall_secs,
        stats.p50_us,
        stats.p99_us,
    );
    println!("digest: {:016x}", stats.digest);

    let m = c.get("/metrics").expect("metrics");
    assert_eq!(m.status, 200);
    let text = m.text();
    let series = validate_exposition(&text).expect("exposition text must parse");
    assert!(
        text.contains("autoac_serve_requests_total"),
        "serving counters must be exported"
    );
    println!("metrics: ok ({series} series)");

    if shutdown {
        let r = c.post("/admin/shutdown", "{}").expect("shutdown");
        assert_eq!(r.status, 200);
        println!("shutdown: ok");
    }
}

fn ab_benchmark(out_path: &PathBuf, clients: usize, requests: usize, smoke: bool) {
    let epochs = if smoke { 2 } else { 20 };
    let spec = ServeTrainSpec {
        train: TrainConfig { epochs, patience: epochs, ..Default::default() },
        ..Default::default()
    };
    println!(
        "serve_bench: training {} / {} ({} epochs), then {clients} clients x {requests} requests",
        spec.preset, spec.scale, epochs
    );
    let (state, outcome) = train_serve_state(&spec).expect("train");
    let ckpt = format!("{:016x}", state.meta.config_fp);
    let num_nodes = InferenceModel::from_state(&state).expect("load").num_nodes();
    let sets = make_sets(num_nodes);

    let mut phases = Vec::new();
    for batching in [true, false] {
        let cfg = ServeConfig {
            workers: clients.max(2),
            batch: BatchConfig { batching, ..Default::default() },
            ..Default::default()
        };
        let srv = Server::start(state.clone(), &cfg).expect("start server");
        let addr = srv.addr().to_string();
        let stats = run_phase(&addr, clients, requests, &sets);
        srv.stop();
        // Server-side batch statistics share the registry with the client
        // latency histogram, so they come out of the phase's own report.
        let forwards = stats.report.counter("serve_batches_total");
        let mean_batch = stats
            .report
            .hists
            .get("serve_batch_size")
            .filter(|h| h.count > 0)
            .map_or(f64::NAN, |h| h.sum / h.count as f64);
        println!(
            "  batching={batching:<5} {:>7.0} req/s  p50 {:>6.0}us  p99 {:>6.0}us  \
             {forwards} forwards, mean batch {mean_batch:.2}",
            stats.total_requests as f64 / stats.wall_secs,
            stats.p50_us,
            stats.p99_us,
        );
        phases.push((batching, stats, forwards, mean_batch));
    }

    let (_, on, on_fwd, on_mean) = &phases[0];
    let (_, off, off_fwd, off_mean) = &phases[1];
    assert_eq!(
        on.canon, off.canon,
        "batched responses must be bitwise identical to single-request responses"
    );
    assert_eq!(on.digest, off.digest);
    println!(
        "  digests : {:016x} == {:016x} (batched responses bitwise identical)",
        on.digest, off.digest
    );

    let rps_on = on.total_requests as f64 / on.wall_secs;
    let rps_off = off.total_requests as f64 / off.wall_secs;
    let json = format!(
        "{{\n  \"preset\": \"{}\",\n  \"scale\": \"{}\",\n  \"ckpt\": \"{ckpt}\",\n  \
         \"macro_f1\": {:.6},\n  \"micro_f1\": {:.6},\n  \
         \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"batching_on\": {{\n    \"throughput_rps\": {rps_on:.1},\n    \
         \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    \
         \"forwards\": {on_fwd},\n    \"mean_batch\": {on_mean:.2}\n  }},\n  \
         \"batching_off\": {{\n    \"throughput_rps\": {rps_off:.1},\n    \
         \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    \
         \"forwards\": {off_fwd},\n    \"mean_batch\": {off_mean:.2}\n  }},\n  \
         \"throughput_speedup\": {:.2},\n  \
         \"digest\": \"{:016x}\",\n  \"bitwise_identical\": true\n}}\n",
        spec.preset,
        spec.scale,
        outcome.macro_f1,
        outcome.micro_f1,
        on.p50_us,
        on.p99_us,
        off.p50_us,
        off.p99_us,
        rps_on / rps_off,
        on.digest,
    );
    if let Some(dir) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(dir).expect("create results dir");
    }
    fs::write(out_path, json).expect("write bench report");
    println!("  wrote   : {}", out_path.display());
}
