//! Serving benchmark and HTTP driver.
//!
//! Two modes:
//!
//! **In-process A/B (default)** — trains a small checkpoint, then runs the
//! same closed-loop concurrent client load twice against an in-process
//! server: once with micro-batching enabled, once disabled. Reports
//! throughput, client-observed p50/p99 latency (obs power-of-two
//! histogram quantiles), and server-side batch statistics, asserts the
//! two phases' responses are **bitwise identical**, and writes
//! `results/BENCH_serve.json`.
//!
//! **External driver (`--connect HOST:PORT`)** — drives an already
//! running `autoac_serve` process with the same closed-loop load, checks
//! `/healthz`, validates that `/metrics` parses as Prometheus exposition
//! text, prints the response digest (so `scripts/verify.sh` can diff a
//! batched against an unbatched server), and optionally issues a graceful
//! `POST /admin/shutdown` (`--shutdown`).
//!
//! ```text
//! serve_bench [--smoke] [--out FILE]              # in-process A/B
//! serve_bench --connect HOST:PORT [--clients N] [--requests N]
//!             [--shutdown]                        # drive external server
//! ```
//!
//! `--smoke` clamps the load for CI and, unless `--out` is given
//! explicitly, writes its report to a temp path so a smoke run can never
//! clobber the committed `results/BENCH_serve.json` measurement.
//!
//! A third mode, `--validate-flight PATH`, strictly parses a flight-
//! recorder dump (`FLIGHT_<run>.jsonl`) line by line and exits non-zero
//! on the first malformed record — `scripts/verify.sh` runs it against
//! the dump a terminated daemon leaves behind.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use autoac_core::{train_serve_state, InferenceModel, ServeTrainSpec, TrainConfig};
use autoac_data::json::{self, Value};
use autoac_serve::{BatchConfig, Client, ServeConfig, Server};

/// Fixed pool of node sets every client cycles through, so each (set,
/// checkpoint) pair has one well-defined canonical response.
const NUM_SETS: usize = 32;
const NODES_PER_SET: usize = 4;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn make_sets(num_nodes: usize) -> Vec<Vec<usize>> {
    (0..NUM_SETS)
        .map(|i| (0..NODES_PER_SET).map(|j| (i * 37 + j * 11 + 1) % num_nodes).collect())
        .collect()
}

fn nodes_body(nodes: &[usize]) -> String {
    let ids: Vec<String> = nodes.iter().map(usize::to_string).collect();
    format!("{{\"nodes\":[{}]}}", ids.join(","))
}

struct PhaseStats {
    wall_secs: f64,
    total_requests: usize,
    p50_us: f64,
    p99_us: f64,
    /// Canonical response body per node set.
    canon: Vec<String>,
    digest: u64,
    /// Everything recorded while the phase ran — client latency plus the
    /// server-side `serve_*` counters and histograms (shared registry).
    report: autoac_obs::ObsReport,
}

/// Closed-loop load: `clients` threads, each issuing `requests` classify
/// calls over one keep-alive connection. Asserts that every response for
/// a given node set is identical across clients and over time.
fn run_phase(addr: &str, clients: usize, requests: usize, sets: &[Vec<usize>]) -> PhaseStats {
    let _ = autoac_obs::drain(); // clean slate for the latency histogram
    let sets = Arc::new(sets.to_vec());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let sets = Arc::clone(&sets);
            let addr = addr.to_string();
            thread::spawn(move || {
                let mut c = Client::connect(addr.as_str()).expect("connect");
                let mut seen: Vec<Option<String>> = vec![None; sets.len()];
                for i in 0..requests {
                    let si = (ci * 7 + i) % sets.len();
                    let body = nodes_body(&sets[si]);
                    let r0 = Instant::now();
                    let r = c.post("/v1/classify", &body).expect("classify");
                    autoac_obs::hist_record("bench_client_ns", r0.elapsed().as_nanos() as f64);
                    assert_eq!(r.status, 200, "{}", r.text());
                    let text = r.text();
                    match &seen[si] {
                        Some(prev) => assert_eq!(
                            prev, &text,
                            "responses for one node set must never vary"
                        ),
                        None => seen[si] = Some(text),
                    }
                }
                seen
            })
        })
        .collect();

    let mut canon: Vec<Option<String>> = vec![None; sets.len()];
    for h in handles {
        for (si, body) in h.join().expect("client thread").into_iter().enumerate() {
            let Some(body) = body else { continue };
            match &canon[si] {
                Some(prev) => {
                    assert_eq!(prev, &body, "responses must agree across clients")
                }
                None => canon[si] = Some(body),
            }
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    let rep = autoac_obs::drain();
    let (p50, p99) = match rep.hists.get("bench_client_ns") {
        Some(h) => (h.quantile(0.5) / 1e3, h.quantile(0.99) / 1e3),
        None => (f64::NAN, f64::NAN),
    };
    let canon: Vec<String> = canon.into_iter().map(Option::unwrap_or_default).collect();
    let mut all = Vec::new();
    for body in &canon {
        all.extend_from_slice(body.as_bytes());
        all.push(b'\n');
    }
    PhaseStats {
        wall_secs,
        total_requests: clients * requests,
        p50_us: p50,
        p99_us: p99,
        digest: fnv1a64(&all),
        canon,
        report: rep,
    }
}

/// Validates Prometheus exposition text: every line is a comment or
/// `name[{labels}] value`, optionally followed by an OpenMetrics exemplar
/// suffix (` # {labels} value`), with parseable values. Returns the
/// series count.
fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut series = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let mut line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Exemplars ride after the sample value: `... # {trace_id="…"} v`.
        // Validate and strip the suffix so the plain-series check below
        // only sees `name{labels} value`.
        if let Some((sample, exemplar)) = line.split_once(" # ") {
            let (labels, ex_value) = exemplar
                .strip_prefix('{')
                .and_then(|rest| rest.split_once("} "))
                .ok_or_else(|| format!("line {}: malformed exemplar: {line:?}", lineno + 1))?;
            if labels.contains('{') || labels.contains('}') {
                return Err(format!("line {}: malformed exemplar labels: {line:?}", lineno + 1));
            }
            if ex_value.parse::<f64>().is_err() {
                return Err(format!("line {}: bad exemplar value {ex_value:?}", lineno + 1));
            }
            line = sample;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let name_end = name_part.find('{').unwrap_or(name_part.len());
        let name = &name_part[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name: {line:?}", lineno + 1));
        }
        if name_part[name_end..].starts_with('{') && !name_part.ends_with('}') {
            return Err(format!("line {}: unclosed label set: {line:?}", lineno + 1));
        }
        let ok = matches!(value_part, "+Inf" | "-Inf" | "NaN")
            || value_part.parse::<f64>().is_ok();
        if !ok {
            return Err(format!("line {}: bad value {value_part:?}", lineno + 1));
        }
        series += 1;
    }
    if series == 0 {
        return Err("no series in exposition text".into());
    }
    Ok(series)
}

fn main() {
    let mut out_path: Option<PathBuf> = None;
    let mut connect: Option<String> = None;
    let mut smoke = false;
    let mut shutdown = false;
    let mut clients = 8usize;
    let mut requests = 200usize;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().expect("flag takes a value");
        match flag.as_str() {
            "--out" => out_path = Some(PathBuf::from(value())),
            "--connect" => connect = Some(value()),
            "--validate-flight" => return validate_flight(&PathBuf::from(value())),
            "--clients" => clients = value().parse().expect("--clients N"),
            "--requests" => requests = value().parse().expect("--requests N"),
            "--smoke" => smoke = true,
            "--shutdown" => shutdown = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    if smoke {
        clients = clients.min(4);
        requests = requests.min(40);
    }
    // `--smoke` is a correctness pass, not a measurement: unless the
    // caller explicitly routed the output somewhere, keep it away from
    // the committed `results/BENCH_serve.json` artifact.
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir().join(format!("BENCH_serve_smoke_{}.json", std::process::id()))
        } else {
            PathBuf::from("results/BENCH_serve.json")
        }
    });
    autoac_obs::set_force(Some(true));

    match connect {
        Some(addr) => drive_external(&addr, clients, requests, shutdown),
        None => ab_benchmark(&out_path, clients, requests, smoke),
    }
}

/// Strictly parses a flight-recorder dump: every line must be valid
/// JSON, the first line must be the ring's meta header, and the body
/// must contain at least the request summaries a served run produces.
fn validate_flight(path: &std::path::Path) {
    let text = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read flight dump {}: {e}", path.display()));
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        let v = json::parse(line)
            .unwrap_or_else(|e| panic!("flight line {} invalid: {e}: {line}", i + 1));
        if i == 0 {
            assert_eq!(
                v.get("kind").and_then(Value::as_str),
                Some("flight"),
                "first line must be the ring meta header"
            );
        } else {
            assert!(v.get("kind").and_then(Value::as_str).is_some(), "record without kind");
            records += 1;
        }
    }
    assert!(records > 0, "flight dump has a header but no records");
    println!("flight dump: ok ({records} records, {})", path.display());
}

/// p50 of a server-side stage histogram in microseconds; `0.0` when the
/// stage never fired (keeps the JSON artifact strictly parseable —
/// `NaN` is not JSON).
fn stage_p50_us(rep: &autoac_obs::ObsReport, name: &str) -> f64 {
    rep.hists.get(name).filter(|h| h.count > 0).map_or(0.0, |h| h.quantile(0.5) / 1e3)
}

fn drive_external(addr: &str, clients: usize, requests: usize, shutdown: bool) {
    let mut c = Client::connect(addr).expect("connect");
    let health = c.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    let doc = json::parse(&health.text()).expect("healthz json");
    let num_nodes = doc.get("nodes").and_then(Value::as_usize).expect("nodes field");
    let ckpt = doc.get("ckpt").and_then(Value::as_str).expect("ckpt field").to_string();
    println!("healthz: ok, ckpt={ckpt}, nodes={num_nodes}");

    let sets = make_sets(num_nodes);
    let stats = run_phase(addr, clients, requests, &sets);
    println!(
        "load: {} requests in {:.2}s ({:.0} req/s), p50 {:.0}us p99 {:.0}us",
        stats.total_requests,
        stats.wall_secs,
        stats.total_requests as f64 / stats.wall_secs,
        stats.p50_us,
        stats.p99_us,
    );
    println!("digest: {:016x}", stats.digest);

    let m = c.get("/metrics").expect("metrics");
    assert_eq!(m.status, 200);
    let text = m.text();
    let series = validate_exposition(&text).expect("exposition text must parse");
    assert!(
        text.contains("autoac_serve_requests_total"),
        "serving counters must be exported"
    );
    println!("metrics: ok ({series} series)");

    // The observability surface of a live server: SLO status and the
    // retained slowest-request timelines must both be well-formed JSON.
    let s = c.get("/slo").expect("slo");
    assert_eq!(s.status, 200, "{}", s.text());
    let slo = json::parse(&s.text()).expect("slo json");
    assert!(slo.get("firing").is_some(), "slo status carries `firing`");
    let t = c.get("/debug/traces").expect("debug/traces");
    assert_eq!(t.status, 200, "{}", t.text());
    let traces = json::parse(&t.text()).expect("traces json");
    let count = traces.get("count").and_then(Value::as_usize).expect("count field");
    println!("slo: ok, traces: {count} retained");

    if shutdown {
        let r = c.post("/admin/shutdown", "{}").expect("shutdown");
        assert_eq!(r.status, 200);
        println!("shutdown: ok");
    }
}

fn ab_benchmark(out_path: &PathBuf, clients: usize, requests: usize, smoke: bool) {
    let epochs = if smoke { 2 } else { 20 };
    let spec = ServeTrainSpec {
        train: TrainConfig { epochs, patience: epochs, ..Default::default() },
        ..Default::default()
    };
    println!(
        "serve_bench: training {} / {} ({} epochs), then {clients} clients x {requests} requests",
        spec.preset, spec.scale, epochs
    );
    let (state, outcome) = train_serve_state(&spec).expect("train");
    let ckpt = format!("{:016x}", state.meta.config_fp);
    let num_nodes = InferenceModel::from_state(&state).expect("load").num_nodes();
    let sets = make_sets(num_nodes);

    let mut phases = Vec::new();
    for batching in [true, false] {
        let cfg = ServeConfig {
            workers: clients.max(2),
            batch: BatchConfig { batching, ..Default::default() },
            ..Default::default()
        };
        let srv = Server::start(state.clone(), &cfg).expect("start server");
        let addr = srv.addr().to_string();
        let stats = run_phase(&addr, clients, requests, &sets);
        srv.stop();
        // Server-side batch statistics share the registry with the client
        // latency histogram, so they come out of the phase's own report.
        let forwards = stats.report.counter("serve_batches_total");
        let mean_batch = stats
            .report
            .hists
            .get("serve_batch_size")
            .filter(|h| h.count > 0)
            .map_or(f64::NAN, |h| h.sum / h.count as f64);
        println!(
            "  batching={batching:<5} {:>7.0} req/s  p50 {:>6.0}us  p99 {:>6.0}us  \
             {forwards} forwards, mean batch {mean_batch:.2}",
            stats.total_requests as f64 / stats.wall_secs,
            stats.p50_us,
            stats.p99_us,
        );
        phases.push((batching, stats, forwards, mean_batch));
    }

    let (_, on, on_fwd, on_mean) = &phases[0];
    let (_, off, off_fwd, off_mean) = &phases[1];
    assert_eq!(
        on.canon, off.canon,
        "batched responses must be bitwise identical to single-request responses"
    );
    assert_eq!(on.digest, off.digest);
    println!(
        "  digests : {:016x} == {:016x} (batched responses bitwise identical)",
        on.digest, off.digest
    );

    let rps_on = on.total_requests as f64 / on.wall_secs;
    let rps_off = off.total_requests as f64 / off.wall_secs;
    // Server-side stage medians from the request timelines: where a
    // request actually spends its time (queue → batch window → compute).
    let stage = |rep: &autoac_obs::ObsReport| {
        format!(
            "\"queue_wait_p50_us\": {:.1},\n    \"batch_wait_p50_us\": {:.1},\n    \
             \"compute_p50_us\": {:.1}",
            stage_p50_us(rep, "serve_queue_wait_ns"),
            stage_p50_us(rep, "serve_batch_wait_ns"),
            stage_p50_us(rep, "serve_compute_ns"),
        )
    };
    let json = format!(
        "{{\n  \"preset\": \"{}\",\n  \"scale\": \"{}\",\n  \"ckpt\": \"{ckpt}\",\n  \
         \"macro_f1\": {:.6},\n  \"micro_f1\": {:.6},\n  \
         \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"batching_on\": {{\n    \"throughput_rps\": {rps_on:.1},\n    \
         \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    {},\n    \
         \"forwards\": {on_fwd},\n    \"mean_batch\": {on_mean:.2}\n  }},\n  \
         \"batching_off\": {{\n    \"throughput_rps\": {rps_off:.1},\n    \
         \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    {},\n    \
         \"forwards\": {off_fwd},\n    \"mean_batch\": {off_mean:.2}\n  }},\n  \
         \"throughput_speedup\": {:.2},\n  \
         \"digest\": \"{:016x}\",\n  \"bitwise_identical\": true\n}}\n",
        spec.preset,
        spec.scale,
        outcome.macro_f1,
        outcome.micro_f1,
        on.p50_us,
        on.p99_us,
        stage(&on.report),
        off.p50_us,
        off.p99_us,
        stage(&off.report),
        rps_on / rps_off,
        on.digest,
    );
    if let Some(dir) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(dir).expect("create results dir");
    }
    fs::write(out_path, json).expect("write bench report");
    println!("  wrote   : {}", out_path.display());
}

#[cfg(test)]
mod tests {
    use super::validate_exposition;

    #[test]
    fn validator_accepts_warn_family_with_tag_labels() {
        let text = "# TYPE autoac_warnings counter\n\
                    autoac_warnings{tag=\"ckpt\"} 3\n\
                    autoac_warnings{tag=\"reload_rejected\"} 1\n";
        assert_eq!(validate_exposition(text), Ok(2));
    }

    #[test]
    fn validator_accepts_exemplar_suffixed_bucket_lines() {
        let text = "# TYPE autoac_serve_request_ns histogram\n\
                    autoac_serve_request_ns_bucket{le=\"1024.0\"} 2 # {trace_id=\"000000000000beef\"} 1000.0\n\
                    autoac_serve_request_ns_bucket{le=\"+Inf\"} 2\n\
                    autoac_serve_request_ns_count 2\n";
        assert_eq!(validate_exposition(text), Ok(3));
    }

    #[test]
    fn validator_rejects_torn_exemplars() {
        for bad in [
            "m_bucket{le=\"1.0\"} 2 # trace_id=\"beef\" 1.0\n", // no braces
            "m_bucket{le=\"1.0\"} 2 # {trace_id=\"beef\"}\n",   // no value
            "m_bucket{le=\"1.0\"} 2 # {trace_id=\"beef\"} x\n", // bad value
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validator_still_rejects_plain_garbage() {
        assert!(validate_exposition("no_value_here\n").is_err());
        assert!(validate_exposition("bad name{x=\"1\"} 2\n").is_err());
        assert!(validate_exposition("m 1.5e3\n").is_ok());
    }
}
