//! # autoac-bench
//!
//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the paper (see `DESIGN.md` §3 for the
//! experiment index). Each binary accepts:
//!
//! ```text
//! --scale tiny|small|paper   dataset size profile            (default: small)
//! --seeds N                  repetitions                     (default: 3)
//! --epochs N                 max training epochs             (default: 120)
//! --search-epochs N          AutoAC search epochs            (default: 30)
//! --checkpoint-dir DIR       write crash-safe snapshots here (default: off)
//! --checkpoint-every N       snapshot cadence in epochs      (default: 5)
//! --resume                   resume from DIR's snapshots     (default: fresh)
//! ```

#![warn(missing_docs)]

use std::path::PathBuf;

use autoac_ckpt::CheckpointPolicy;
use autoac_core::{AutoAcConfig, Backbone, ClusteringMode, TrainConfig};
use autoac_data::{presets, synth, Dataset, Scale};
use autoac_nn::GnnConfig;

/// Parsed harness arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset scale profile.
    pub scale: Scale,
    /// Number of seeds per configuration.
    pub seeds: usize,
    /// Maximum training epochs.
    pub epochs: usize,
    /// AutoAC search epochs.
    pub search_epochs: usize,
    /// Root directory for crash-safe snapshots (`None` disables
    /// checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in epochs.
    pub checkpoint_every: usize,
    /// Resume from existing snapshots under `checkpoint_dir` instead of
    /// starting fresh.
    pub resume: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seeds: 3,
            epochs: 120,
            search_epochs: 30,
            checkpoint_dir: None,
            checkpoint_every: 5,
            resume: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args`; unknown flags abort with a usage message.
    pub fn parse() -> Args {
        Self::parse_extra(|_, _| false)
    }

    /// [`Args::parse`] with an escape hatch for binary-specific flags: the
    /// handler sees each `(flag, value)` pair first and returns `true` to
    /// claim it. Unclaimed unknown flags still abort with the usage
    /// message.
    pub fn parse_extra(mut extra: impl FnMut(&str, &str) -> bool) -> Args {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            // `--resume` is a boolean switch: no value, advances by one.
            if flag == "--resume" {
                out.resume = true;
                i += 1;
                continue;
            }
            let value = argv.get(i + 1).unwrap_or_else(|| usage(flag));
            match flag {
                "--scale" => {
                    out.scale = Scale::parse(value).unwrap_or_else(|| usage(flag));
                }
                "--seeds" => out.seeds = value.parse().unwrap_or_else(|_| usage(flag)),
                "--epochs" => out.epochs = value.parse().unwrap_or_else(|_| usage(flag)),
                "--search-epochs" => {
                    out.search_epochs = value.parse().unwrap_or_else(|_| usage(flag))
                }
                "--checkpoint-dir" => out.checkpoint_dir = Some(PathBuf::from(value)),
                "--checkpoint-every" => {
                    out.checkpoint_every = value.parse().unwrap_or_else(|_| usage(flag));
                    if out.checkpoint_every == 0 {
                        usage(flag);
                    }
                }
                _ if extra(flag, value) => {}
                _ => usage(flag),
            }
            i += 2;
        }
        out
    }

    /// Checkpoint policy for one named run (e.g. one dataset×seed cell),
    /// rooted at `<checkpoint-dir>/<label>`; `None` when checkpointing is
    /// off. Without `--resume` existing snapshots are ignored (snapshots
    /// are still written), so reruns stay reproducible by default.
    pub fn ckpt_policy(&self, label: &str) -> Option<CheckpointPolicy> {
        let dir = self.checkpoint_dir.as_ref()?;
        let policy = CheckpointPolicy::new(dir.join(label)).checkpoint_every(self.checkpoint_every);
        Some(if self.resume { policy } else { policy.fresh() })
    }

    /// Training settings derived from the arguments.
    pub fn train_cfg(&self) -> TrainConfig {
        TrainConfig { epochs: self.epochs, patience: 20, ..TrainConfig::default() }
    }

    /// Loads a preset dataset at the configured scale.
    pub fn dataset(&self, name: &str, seed: u64) -> Dataset {
        let spec = presets::by_name(name).unwrap_or_else(|| {
            // lint:allow(eprintln) — CLI-facing usage error, not library telemetry
            eprintln!("unknown dataset {name}");
            std::process::exit(2);
        });
        synth::generate(&spec, self.scale, seed)
    }
}

fn usage(flag: &str) -> ! {
    // lint:allow(eprintln) — CLI-facing usage error, not library telemetry
    eprintln!(
        "unexpected argument {flag}\nusage: --scale tiny|small|paper --seeds N --epochs N \
         --search-epochs N --checkpoint-dir DIR --checkpoint-every N --resume"
    );
    std::process::exit(2)
}

/// GNN hyperparameters per backbone (HGB-flavored defaults scaled to the
/// CPU substrate).
pub fn gnn_cfg(data: &Dataset, backbone: Backbone, lp: bool) -> GnnConfig {
    let out_dim = if lp { 64 } else { data.num_classes.max(2) };
    let layers = match backbone {
        Backbone::SimpleHgn | Backbone::SimpleHgnLp | Backbone::Gcn | Backbone::Gat => 2,
        Backbone::Hgt | Backbone::Gtn => 2,
        _ => 1,
    };
    GnnConfig {
        in_dim: 64,
        hidden: 64,
        out_dim,
        layers,
        heads: 2,
        dropout: 0.4,
        slope: 0.05,
        edge_dim: 32,
        beta: 0.05,
    }
}

/// AutoAC hyperparameters per backbone/dataset (paper §V-B: λ = 0.4 and
/// per-dataset M for SimpleHGN; λ = 0.5 and per-dataset M for MAGNN).
pub fn autoac_cfg(backbone: Backbone, dataset: &str, args: &Args) -> AutoAcConfig {
    let (lambda, clusters) = match backbone {
        Backbone::Magnn => {
            let m = match dataset {
                "DBLP" | "ACM" => 4,
                "IMDB" => 16,
                _ => 8,
            };
            (0.5, m)
        }
        _ => {
            let m = match dataset {
                "DBLP" => 8,
                "ACM" | "IMDB" => 12,
                _ => 8,
            };
            (0.4, m)
        }
    };
    AutoAcConfig {
        clusters,
        lambda,
        search_epochs: args.search_epochs,
        clustering: ClusteringMode::GmoC,
        train: args.train_cfg(),
        ..AutoAcConfig::default()
    }
}

/// Formats a `mean±std` cell from fractional scores.
pub fn cell(scores: &[f64]) -> String {
    autoac_eval::mean_std_pct(scores)
}

/// Prints a markdown-ish table row.
pub fn row(name: &str, cells: &[String]) {
    println!("| {:<22} | {} |", name, cells.join(" | "));
}

/// Prints a section header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n### {title}");
    println!("| {:<22} | {} |", "model", cols.join(" | "));
    println!("|{}|", "-".repeat(24 + cols.iter().map(|c| c.len() + 3).sum::<usize>()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let a = Args::default();
        assert_eq!(a.seeds, 3);
        assert!(matches!(a.scale, Scale::Small));
        assert!(!a.resume);
        assert_eq!(a.checkpoint_every, 5);
    }

    #[test]
    fn ckpt_policy_off_by_default_and_rooted_per_label() {
        assert!(Args::default().ckpt_policy("x").is_none());
        let with_dir =
            Args { checkpoint_dir: Some("/tmp/ckpts".into()), ..Args::default() };
        let p = with_dir.ckpt_policy("dblp-s0").unwrap();
        assert_eq!(p.dir(), std::path::Path::new("/tmp/ckpts/dblp-s0"));
    }

    #[test]
    fn autoac_cfg_follows_paper_hparams() {
        let args = Args::default();
        let c = autoac_cfg(Backbone::SimpleHgn, "DBLP", &args);
        assert_eq!(c.clusters, 8);
        assert!((c.lambda - 0.4).abs() < 1e-6);
        let c = autoac_cfg(Backbone::Magnn, "IMDB", &args);
        assert_eq!(c.clusters, 16);
        assert!((c.lambda - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gnn_cfg_dimensions() {
        let args = Args { scale: Scale::Tiny, ..Args::default() };
        let data = args.dataset("imdb", 0);
        let c = gnn_cfg(&data, Backbone::SimpleHgn, false);
        assert_eq!(c.out_dim, data.num_classes);
        let c = gnn_cfg(&data, Backbone::SimpleHgnLp, true);
        assert_eq!(c.out_dim, 64);
    }
}
