//! Property-based tests for the partitioner and the cache reordering:
//! every node lands in exactly one shard's core, per-type core
//! neighborhoods survive sharding intact, and reordering round-trips
//! bitwise on node-aligned payloads.

use autoac_graph::{
    Adjacency, HeteroGraph, ReorderStrategy, Reordering, ShardPlan, ShardStrategy,
};
use proptest::prelude::*;

/// Strategy: a random 3-type graph with two cross-type edge types (possibly
/// with duplicate edges — shards must tolerate multigraph semantics).
fn random_graph() -> impl Strategy<Value = HeteroGraph> {
    (
        2usize..8,
        2usize..8,
        1usize..5,
        proptest::collection::vec((0u32..8, 0u32..8, 0u32..2), 0..40),
    )
        .prop_map(|(na, nb, nc, edges)| {
            let mut b = HeteroGraph::builder();
            let ta = b.add_node_type("a", na);
            let tb = b.add_node_type("b", nb);
            let tc = b.add_node_type("c", nc);
            let eab = b.add_edge_type("a-b", ta, tb);
            let eac = b.add_edge_type("a-c", ta, tc);
            for (s, d, which) in edges {
                let s = s % na as u32;
                if which == 0 {
                    b.add_edge(eab, s, (d % nb as u32) + na as u32);
                } else {
                    b.add_edge(eac, s, (d % nc as u32) + (na + nb) as u32);
                }
            }
            b.build()
        })
}

fn strategies() -> [ShardStrategy; 2] {
    [ShardStrategy::Hash, ShardStrategy::DegreeLocality]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_node_is_core_in_exactly_one_shard(
        g in random_graph(),
        k in 1usize..5,
    ) {
        for strategy in strategies() {
            let plan = ShardPlan::partition(&g, strategy, k);
            // The plan's map covers every node with a valid shard index…
            let mut owners = vec![0usize; g.num_nodes()];
            for v in 0..g.num_nodes() {
                prop_assert!(plan.shard_of(v) < k, "{strategy:?}: shard index out of range");
                owners[v] += 1;
            }
            // …and the extracted shards' cores tile the node set exactly.
            let mut core_seen = vec![0usize; g.num_nodes()];
            for shard in plan.extract_all(&g) {
                for (i, &v) in shard.nodes.iter().enumerate() {
                    if shard.is_core[i] {
                        prop_assert_eq!(
                            plan.shard_of(v as usize), shard.index,
                            "{:?}: core node outside its planned shard", strategy
                        );
                        core_seen[v as usize] += 1;
                    }
                }
            }
            prop_assert!(
                core_seen.iter().all(|&c| c == 1),
                "{strategy:?}: cores must tile the node set exactly once, got {core_seen:?}"
            );
        }
    }

    #[test]
    fn per_type_core_neighborhoods_survive_sharding(
        g in random_graph(),
        k in 1usize..5,
    ) {
        let adj = Adjacency::build(&g);
        for strategy in strategies() {
            let plan = ShardPlan::partition(&g, strategy, k);
            for shard in plan.extract_all(&g) {
                let sub_adj = Adjacency::build(&shard.graph);
                for (i, &v) in shard.nodes.iter().enumerate() {
                    if !shard.is_core[i] {
                        continue;
                    }
                    // A core node's full typed neighborhood is inside the
                    // shard (core ∪ 1-hop halo), with multiplicities intact.
                    for t in 0..g.num_node_types() {
                        let mut want: Vec<u32> = adj.typed_neighbors(v as usize, t).to_vec();
                        let mut got: Vec<u32> = sub_adj
                            .typed_neighbors(i, t)
                            .iter()
                            .map(|&j| shard.global_of(j as usize))
                            .collect();
                        want.sort_unstable();
                        got.sort_unstable();
                        prop_assert_eq!(
                            got, want,
                            "{:?}: type-{} neighborhood of core node {} mangled",
                            strategy, t, v
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_fingerprint_is_stable_and_strategy_sensitive(
        g in random_graph(),
        k in 2usize..5,
    ) {
        let a = ShardPlan::partition(&g, ShardStrategy::Hash, k);
        let b = ShardPlan::partition(&g, ShardStrategy::Hash, k);
        prop_assert_eq!(a.fingerprint(), b.fingerprint(), "same inputs, same fingerprint");
        let c = ShardPlan::partition(&g, ShardStrategy::Hash, k + 1);
        prop_assert!(
            a.fingerprint() != c.fingerprint(),
            "shard count must be fingerprinted"
        );
    }

    #[test]
    fn reordering_round_trips_payloads_bitwise(g in random_graph()) {
        for strategy in [ReorderStrategy::DegreeSorted, ReorderStrategy::BfsClustered] {
            let r = Reordering::compute(&g, strategy);
            // Graph round-trip is bitwise (fingerprint + edge lists).
            let back = r.inverse().apply(&r.apply(&g));
            prop_assert_eq!(
                back.structural_fingerprint(),
                g.structural_fingerprint(),
                "{:?}: graph round-trip broke", strategy
            );
            // Attribute-like payload (f32 rows) and label-like payload (u32)
            // round-trip bitwise through permute_values.
            let attrs: Vec<f32> = (0..g.num_nodes()).map(|v| v as f32 * 0.5 + 1.0).collect();
            let labels: Vec<u32> = (0..g.num_nodes() as u32).map(|v| v % 5).collect();
            let attrs_back = r.inverse().permute_values(&r.permute_values(&attrs));
            let labels_back = r.inverse().permute_values(&r.permute_values(&labels));
            prop_assert!(
                attrs_back.iter().zip(&attrs).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{strategy:?}: attr payload round-trip not bitwise"
            );
            prop_assert_eq!(labels_back, labels, "{:?}: label round-trip broke", strategy);
        }
    }
}
