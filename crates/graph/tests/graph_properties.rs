//! Property-based tests over randomly generated heterogeneous graphs:
//! adjacency consistency, normalization invariants, metapath validity and
//! walk validity.

use autoac_graph::{metapath::Metapath, norm, Adjacency, HeteroGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random 2-type bipartite-ish graph plus optional same-type
/// edges.
fn random_graph() -> impl Strategy<Value = HeteroGraph> {
    (2usize..8, 2usize..8, proptest::collection::vec((0u32..8, 0u32..8), 0..30)).prop_map(
        |(na, nb, edges)| {
            let mut b = HeteroGraph::builder();
            let ta = b.add_node_type("a", na);
            let tb = b.add_node_type("b", nb);
            let e = b.add_edge_type("a-b", ta, tb);
            let mut seen = std::collections::HashSet::new();
            for (s, d) in edges {
                let s = s % na as u32;
                let d = (d % nb as u32) + na as u32;
                if seen.insert((s, d)) {
                    b.add_edge(e, s, d);
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacency_is_symmetric(g in random_graph()) {
        let adj = Adjacency::build(&g);
        for v in 0..g.num_nodes() {
            for &u in adj.neighbors(v) {
                let t = g.type_of(v);
                prop_assert!(
                    adj.has_edge(u as usize, v as u32, t),
                    "edge {v}->{u} missing its reverse"
                );
            }
        }
    }

    #[test]
    fn adjacency_degrees_match_graph(g in random_graph()) {
        let adj = Adjacency::build(&g);
        for (v, &d) in g.undirected_degrees().iter().enumerate() {
            prop_assert_eq!(adj.degree(v), d);
        }
    }

    #[test]
    fn sym_norm_is_symmetric_and_bounded(g in random_graph()) {
        let a = norm::sym_norm_adj(&g);
        let dense = a.to_dense();
        let t = dense.transpose();
        for (x, y) in dense.data().iter().zip(t.data()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
        // All weights in (0, 1].
        prop_assert!(dense.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Self-loops present on every node.
        for v in 0..g.num_nodes() {
            prop_assert!(dense.get(v, v) > 0.0);
        }
    }

    #[test]
    fn row_norm_rows_sum_to_one_or_zero(g in random_graph()) {
        let a = norm::row_norm_adj(&g);
        for s in a.row_sums() {
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attr_agg_rows_only_reference_attributed(g in random_graph()) {
        // Type a attributed, type b missing.
        let mut has = vec![false; g.num_nodes()];
        for v in g.nodes_of_type(0) {
            has[v] = true;
        }
        for csr in [norm::mean_attr_agg(&g, &has), norm::gcn_attr_agg(&g, &has)] {
            for r in 0..csr.n_rows() {
                for (c, w) in csr.row(r) {
                    prop_assert!(has[c as usize], "row {r} references unattributed {c}");
                    prop_assert!(w > 0.0);
                }
            }
        }
    }

    #[test]
    fn metapath_instances_are_paths(g in random_graph()) {
        let adj = Adjacency::build(&g);
        let mp = Metapath::new(vec![0usize, 1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        for start in g.nodes_of_type(0) {
            for inst in
                autoac_graph::metapath::sample_instances(&adj, &mp, start as u32, 16, &mut rng)
            {
                prop_assert_eq!(inst.len(), 3);
                prop_assert_eq!(inst[0] as usize, start);
                for w in inst.windows(2) {
                    let t = g.type_of(w[1] as usize);
                    prop_assert!(adj.has_edge(w[0] as usize, w[1], t));
                }
            }
        }
    }

    #[test]
    fn ppnp_preserves_l2_scale(g in random_graph()) {
        // Â is symmetric with spectral radius ≤ 1, so the PPNP fixed point
        // h = α(I−(1−α)Â)⁻¹x satisfies ‖h‖₂ ≤ ‖x‖₂. (Per-element bounds do
        // NOT hold — Â is not row-stochastic.)
        let a = norm::sym_norm_adj(&g);
        let x = autoac_tensor::Matrix::full(g.num_nodes(), 2, 1.0);
        let h = autoac_graph::ppr::ppnp_propagate_dense(&a, &x, 0.2, 64);
        prop_assert!(h.frob() <= x.frob() * (1.0 + 1e-4), "{} > {}", h.frob(), x.frob());
    }
}

#[test]
fn walks_on_singleton_graph() {
    let mut b = HeteroGraph::builder();
    b.add_node_type("solo", 1);
    let g = b.build();
    let adj = Adjacency::build(&g);
    let mut rng = StdRng::seed_from_u64(0);
    let walks = autoac_graph::walk::uniform_walks(&adj, 0..1u32, 5, 2, &mut rng);
    assert_eq!(walks.len(), 2);
    assert!(walks.iter().all(|w| w == &vec![0u32]));
}
