//! Property-based tests over randomly generated heterogeneous graphs:
//! adjacency consistency, normalization invariants, metapath validity and
//! walk validity.

use autoac_graph::{metapath::Metapath, norm, Adjacency, HeteroGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random 2-type bipartite-ish graph plus optional same-type
/// edges.
fn random_graph() -> impl Strategy<Value = HeteroGraph> {
    (2usize..8, 2usize..8, proptest::collection::vec((0u32..8, 0u32..8), 0..30)).prop_map(
        |(na, nb, edges)| {
            let mut b = HeteroGraph::builder();
            let ta = b.add_node_type("a", na);
            let tb = b.add_node_type("b", nb);
            let e = b.add_edge_type("a-b", ta, tb);
            let mut seen = std::collections::HashSet::new();
            for (s, d) in edges {
                let s = s % na as u32;
                let d = (d % nb as u32) + na as u32;
                if seen.insert((s, d)) {
                    b.add_edge(e, s, d);
                }
            }
            b.build()
        },
    )
}

/// Strategy: like [`random_graph`] but *keeps* duplicate edges — each drawn
/// edge is inserted `rep` times. Exercises the documented multigraph
/// semantics: every occurrence counts toward degrees and weights.
fn random_multigraph() -> impl Strategy<Value = HeteroGraph> {
    (2usize..8, 2usize..8, proptest::collection::vec((0u32..8, 0u32..8, 1usize..4), 1..20))
        .prop_map(|(na, nb, edges)| {
            let mut b = HeteroGraph::builder();
            let ta = b.add_node_type("a", na);
            let tb = b.add_node_type("b", nb);
            let e = b.add_edge_type("a-b", ta, tb);
            for (s, d, rep) in edges {
                let s = s % na as u32;
                let d = (d % nb as u32) + na as u32;
                for _ in 0..rep {
                    b.add_edge(e, s, d);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacency_is_symmetric(g in random_graph()) {
        let adj = Adjacency::build(&g);
        for v in 0..g.num_nodes() {
            for &u in adj.neighbors(v) {
                let t = g.type_of(v);
                prop_assert!(
                    adj.has_edge(u as usize, v as u32, t),
                    "edge {v}->{u} missing its reverse"
                );
            }
        }
    }

    #[test]
    fn adjacency_degrees_match_graph(g in random_graph()) {
        let adj = Adjacency::build(&g);
        for (v, &d) in g.undirected_degrees().iter().enumerate() {
            prop_assert_eq!(adj.degree(v), d);
        }
    }

    #[test]
    fn sym_norm_is_symmetric_and_bounded(g in random_graph()) {
        let a = norm::sym_norm_adj(&g);
        let dense = a.to_dense();
        let t = dense.transpose();
        for (x, y) in dense.data().iter().zip(t.data()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
        // All weights in (0, 1].
        prop_assert!(dense.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Self-loops present on every node.
        for v in 0..g.num_nodes() {
            prop_assert!(dense.get(v, v) > 0.0);
        }
    }

    #[test]
    fn row_norm_rows_sum_to_one_or_zero(g in random_graph()) {
        let a = norm::row_norm_adj(&g);
        for s in a.row_sums() {
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn attr_agg_rows_only_reference_attributed(g in random_graph()) {
        // Type a attributed, type b missing.
        let mut has = vec![false; g.num_nodes()];
        for v in g.nodes_of_type(0) {
            has[v] = true;
        }
        for csr in [norm::mean_attr_agg(&g, &has), norm::gcn_attr_agg(&g, &has)] {
            for r in 0..csr.n_rows() {
                for (c, w) in csr.row(r) {
                    prop_assert!(has[c as usize], "row {r} references unattributed {c}");
                    prop_assert!(w > 0.0);
                }
            }
        }
    }

    // Multigraph semantics: duplicate edges are *occurrence-counted* —
    // every occurrence contributes to degrees AND emits a weight, so the
    // normalizations stay consistent and stochastic rows still sum to 1.
    // (See the module docs of `autoac_graph::norm`.)

    #[test]
    fn row_norm_rows_sum_to_one_under_duplicate_edges(g in random_multigraph()) {
        for s in norm::row_norm_adj(&g).row_sums() {
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-5, "row sum {s}");
        }
    }

    #[test]
    fn mean_agg_rows_sum_to_one_under_duplicate_edges(g in random_multigraph()) {
        let mut has = vec![false; g.num_nodes()];
        for v in g.nodes_of_type(0) {
            has[v] = true;
        }
        let m = norm::mean_attr_agg(&g, &has);
        for (r, s) in m.row_sums().iter().enumerate() {
            prop_assert!(
                *s == 0.0 || (s - 1.0).abs() < 1e-5,
                "mean row {r} sums to {s}, want 0 or 1"
            );
        }
    }

    #[test]
    fn sym_norm_stays_symmetric_under_duplicate_edges(g in random_multigraph()) {
        let a = norm::sym_norm_adj(&g);
        let dense = a.to_dense();
        let n = g.num_nodes();
        for i in 0..n {
            prop_assert!(dense.get(i, i) > 0.0, "self-loop missing at {i}");
            for j in 0..n {
                prop_assert_eq!(dense.get(i, j), dense.get(j, i));
                prop_assert!(dense.get(i, j) <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn metapath_instances_are_paths(g in random_graph()) {
        let adj = Adjacency::build(&g);
        let mp = Metapath::new(vec![0usize, 1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        for start in g.nodes_of_type(0) {
            for inst in
                autoac_graph::metapath::sample_instances(&adj, &mp, start as u32, 16, &mut rng)
            {
                prop_assert_eq!(inst.len(), 3);
                prop_assert_eq!(inst[0] as usize, start);
                for w in inst.windows(2) {
                    let t = g.type_of(w[1] as usize);
                    prop_assert!(adj.has_edge(w[0] as usize, w[1], t));
                }
            }
        }
    }

    #[test]
    fn ppnp_preserves_l2_scale(g in random_graph()) {
        // Â is symmetric with spectral radius ≤ 1, so the PPNP fixed point
        // h = α(I−(1−α)Â)⁻¹x satisfies ‖h‖₂ ≤ ‖x‖₂. (Per-element bounds do
        // NOT hold — Â is not row-stochastic.)
        let a = norm::sym_norm_adj(&g);
        let x = autoac_tensor::Matrix::full(g.num_nodes(), 2, 1.0);
        let h = autoac_graph::ppr::ppnp_propagate_dense(&a, &x, 0.2, 64);
        prop_assert!(h.frob() <= x.frob() * (1.0 + 1e-4), "{} > {}", h.frob(), x.frob());
    }
}

/// Deterministic replay of the shrunk counterexample checked in at
/// `graph_properties.proptest-regressions` (`type_offsets: [0, 3, 5]`,
/// edges `(1,4),(1,3)`): every invariant of the property suite, pinned so
/// the case is exercised on every run regardless of RNG seeds.
#[test]
fn regression_shrunk_cross_type_case() {
    let mut b = HeteroGraph::builder();
    let ta = b.add_node_type("a", 3);
    let tb = b.add_node_type("b", 2);
    let e = b.add_edge_type("a-b", ta, tb);
    b.add_edge(e, 1, 4);
    b.add_edge(e, 1, 3);
    let g = b.build();

    // Adjacency symmetry + degree agreement.
    let adj = Adjacency::build(&g);
    for v in 0..g.num_nodes() {
        for &u in adj.neighbors(v) {
            let t = g.type_of(v);
            assert!(adj.has_edge(u as usize, v as u32, t), "edge {v}->{u} missing its reverse");
        }
    }
    for (v, &d) in g.undirected_degrees().iter().enumerate() {
        assert_eq!(adj.degree(v), d, "degree mismatch at node {v}");
    }

    // Symmetric normalization: symmetric, weights in (0, 1], self-loops.
    let a = norm::sym_norm_adj(&g);
    let dense = a.to_dense();
    let t = dense.transpose();
    for (x, y) in dense.data().iter().zip(t.data()) {
        assert!((x - y).abs() < 1e-6);
    }
    assert!(dense.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    for v in 0..g.num_nodes() {
        assert!(dense.get(v, v) > 0.0, "missing self-loop at {v}");
    }

    // Row normalization: rows sum to 1 (or 0 for isolated nodes).
    for (r, s) in norm::row_norm_adj(&g).row_sums().iter().enumerate() {
        assert!(*s == 0.0 || (s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
    }

    // Attribute aggregators only reference attributed neighbors.
    let mut has = vec![false; g.num_nodes()];
    for v in g.nodes_of_type(0) {
        has[v] = true;
    }
    for csr in [norm::mean_attr_agg(&g, &has), norm::gcn_attr_agg(&g, &has)] {
        for r in 0..csr.n_rows() {
            for (c, w) in csr.row(r) {
                assert!(has[c as usize], "row {r} references unattributed {c}");
                assert!(w > 0.0);
            }
        }
    }

    // Metapath instances are valid paths.
    let mp = Metapath::new(vec![0usize, 1, 0]);
    let mut rng = StdRng::seed_from_u64(0);
    for start in g.nodes_of_type(0) {
        for inst in autoac_graph::metapath::sample_instances(&adj, &mp, start as u32, 16, &mut rng)
        {
            assert_eq!(inst.len(), 3);
            assert_eq!(inst[0] as usize, start);
            for w in inst.windows(2) {
                let t = g.type_of(w[1] as usize);
                assert!(adj.has_edge(w[0] as usize, w[1], t));
            }
        }
    }

    // PPNP preserves L2 scale.
    let x = autoac_tensor::Matrix::full(g.num_nodes(), 2, 1.0);
    let h = autoac_graph::ppr::ppnp_propagate_dense(&a, &x, 0.2, 64);
    assert!(h.frob() <= x.frob() * (1.0 + 1e-4), "{} > {}", h.frob(), x.frob());
}

/// Pins the exact duplicate-edge weighting: a repeated edge gets a
/// proportionally larger normalized weight, never a renormalization of the
/// whole row to "deduplicated" form.
#[test]
fn regression_duplicate_edge_weights_are_occurrence_counted() {
    // movie 0 — actor 2 (twice), movie 0 — actor 3 (once), movie 1 isolated.
    let mut b = HeteroGraph::builder();
    let m = b.add_node_type("movie", 2);
    let a = b.add_node_type("actor", 2);
    let e = b.add_edge_type("m-a", m, a);
    b.add_edge(e, 0, 2);
    b.add_edge(e, 0, 2);
    b.add_edge(e, 0, 3);
    let g = b.build();

    // Degrees count occurrences: node 0 has degree 3, node 2 degree 2.
    assert_eq!(g.undirected_degrees(), vec![3, 0, 2, 1]);

    // D⁻¹A row 0: the doubled edge carries 2/3, the single one 1/3.
    let rn = norm::row_norm_adj(&g).to_dense();
    assert!((rn.get(0, 2) - 2.0 / 3.0).abs() < 1e-6);
    assert!((rn.get(0, 3) - 1.0 / 3.0).abs() < 1e-6);
    assert!((rn.get(2, 0) - 1.0).abs() < 1e-6);

    // Mean aggregation (movies attributed): actor 2's two occurrences both
    // point at movie 0 and collapse to weight 1.
    let has = vec![true, true, false, false];
    let mean = norm::mean_attr_agg(&g, &has).to_dense();
    assert!((mean.get(2, 0) - 1.0).abs() < 1e-6);
    assert!((mean.get(3, 0) - 1.0).abs() < 1e-6);

    // Symmetric norm: Â[0,2] = 2·(d̃₀·d̃₂)^(-1/2) with self-loop-augmented
    // degrees d̃₀ = 4, d̃₂ = 3.
    let sym = norm::sym_norm_adj(&g).to_dense();
    assert!((sym.get(0, 2) - 2.0 / (4.0f32 * 3.0).sqrt()).abs() < 1e-6);
    assert_eq!(sym.get(0, 2), sym.get(2, 0));
}

#[test]
fn walks_on_singleton_graph() {
    let mut b = HeteroGraph::builder();
    b.add_node_type("solo", 1);
    let g = b.build();
    let adj = Adjacency::build(&g);
    let mut rng = StdRng::seed_from_u64(0);
    let walks = autoac_graph::walk::uniform_walks(&adj, 0..1u32, 5, 2, &mut rng);
    assert_eq!(walks.len(), 2);
    assert!(walks.iter().all(|w| w == &vec![0u32]));
}
