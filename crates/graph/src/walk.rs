//! Random walks over heterogeneous graphs.
//!
//! Backs the metapath2vec-style pre-learning stage of the HGNN-AC baseline
//! (Table IV's expensive "Pre-learn" phase) and the HetGNN-lite neighbor
//! sampler.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::adjacency::Adjacency;
use crate::hetero::NodeTypeId;

/// Uniform random walks: at each step, jump to a uniformly random neighbor
/// (any type). Walks stop early at isolated nodes.
pub fn uniform_walks(
    adj: &Adjacency,
    starts: impl Iterator<Item = u32>,
    walk_len: usize,
    walks_per_node: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<u32>> {
    let mut walks = Vec::new();
    for s in starts {
        for _ in 0..walks_per_node {
            let mut walk = Vec::with_capacity(walk_len + 1);
            walk.push(s);
            let mut cur = s as usize;
            for _ in 0..walk_len {
                let nbrs = adj.neighbors(cur);
                let Some(&next) = nbrs.choose(rng) else { break };
                walk.push(next);
                cur = next as usize;
            }
            walks.push(walk);
        }
    }
    walks
}

/// Schema-guided (metapath2vec-style) walks: the node-type sequence cycles
/// through `schema` (whose first type must match the start node's type and
/// whose last type must equal its first, e.g. `M-A-M`). Walks stop early
/// when no neighbor of the required type exists.
pub fn schema_walks(
    adj: &Adjacency,
    schema: &[NodeTypeId],
    starts: impl Iterator<Item = u32>,
    walk_len: usize,
    walks_per_node: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<u32>> {
    assert!(schema.len() >= 2, "schema_walks: schema too short");
    assert_eq!(
        schema.first(),
        schema.last(),
        "schema_walks: schema must be cyclic (first type == last type)"
    );
    let period = schema.len() - 1;
    let mut walks = Vec::new();
    for s in starts {
        for _ in 0..walks_per_node {
            let mut walk = Vec::with_capacity(walk_len + 1);
            walk.push(s);
            let mut cur = s as usize;
            for step in 0..walk_len {
                let want = schema[(step % period) + 1];
                let nbrs = adj.typed_neighbors(cur, want);
                let Some(&next) = nbrs.choose(rng) else { break };
                walk.push(next);
                cur = next as usize;
            }
            walks.push(walk);
        }
    }
    walks
}

/// Extracts skip-gram `(center, context)` pairs within `window` of each
/// other from a corpus of walks.
pub fn skipgram_pairs(walks: &[Vec<u32>], window: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for walk in walks {
        for (i, &c) in walk.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(walk.len());
            for (j, &ctx) in walk.iter().enumerate().take(hi).skip(lo) {
                if i != j {
                    pairs.push((c, ctx));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::HeteroGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (HeteroGraph, Adjacency) {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 4);
        let g = b.build();
        let adj = Adjacency::build(&g);
        (g, adj)
    }

    #[test]
    fn uniform_walks_stay_on_edges() {
        let (g, adj) = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let walks =
            uniform_walks(&adj, 0..g.num_nodes() as u32, 10, 3, &mut rng);
        assert_eq!(walks.len(), g.num_nodes() * 3);
        for w in &walks {
            for pair in w.windows(2) {
                let t = g.type_of(pair[1] as usize);
                assert!(adj.has_edge(pair[0] as usize, pair[1], t), "non-edge step {pair:?}");
            }
        }
    }

    #[test]
    fn schema_walks_alternate_types() {
        let (g, adj) = toy();
        let mut rng = StdRng::seed_from_u64(8);
        let walks = schema_walks(
            &adj,
            &[0, 1, 0],
            g.nodes_of_type(0).map(|v| v as u32),
            8,
            2,
            &mut rng,
        );
        for w in &walks {
            for (i, &v) in w.iter().enumerate() {
                let want = if i % 2 == 0 { 0 } else { 1 };
                assert_eq!(g.type_of(v as usize), want, "walk {w:?} step {i}");
            }
        }
    }

    #[test]
    fn walks_stop_at_dead_ends() {
        // A graph where actors have no actor-typed neighbors: schema A-A-A
        // yields length-1 walks.
        let (g, adj) = toy();
        let mut rng = StdRng::seed_from_u64(9);
        let walks = schema_walks(
            &adj,
            &[1, 1, 1],
            g.nodes_of_type(1).map(|v| v as u32),
            5,
            1,
            &mut rng,
        );
        assert!(walks.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn skipgram_pairs_window() {
        let walks = vec![vec![1u32, 2, 3, 4]];
        let pairs = skipgram_pairs(&walks, 1);
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 1)));
        assert!(pairs.contains(&(3, 4)));
        assert!(!pairs.contains(&(1, 3)), "outside window");
        assert_eq!(pairs.len(), 6);
    }
}
