//! Heterogeneous graph store.
//!
//! Follows the HGB convention: node ids are global (`0..num_nodes`) with all
//! nodes of one type occupying a contiguous id range; edges are grouped by
//! edge type, each edge type connecting a fixed (source-type, target-type)
//! pair.

use std::ops::Range;

/// Index of a node type.
pub type NodeTypeId = usize;
/// Index of an edge type.
pub type EdgeTypeId = usize;

/// Metadata of one edge type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeType {
    /// Human-readable name, e.g. `"paper-author"`.
    pub name: String,
    /// Source node type.
    pub src: NodeTypeId,
    /// Target node type.
    pub dst: NodeTypeId,
}

/// An immutable heterogeneous graph.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    node_type_names: Vec<String>,
    /// `type_offsets[t]..type_offsets[t+1]` is the global id range of type `t`.
    type_offsets: Vec<usize>,
    edge_types: Vec<EdgeType>,
    /// Per edge type, `(src, dst)` pairs in global ids.
    edges: Vec<Vec<(u32, u32)>>,
}

/// Incremental builder for [`HeteroGraph`].
#[derive(Debug, Default)]
pub struct HeteroGraphBuilder {
    node_type_names: Vec<String>,
    type_counts: Vec<usize>,
    edge_types: Vec<EdgeType>,
    edges: Vec<Vec<(u32, u32)>>,
}

impl HeteroGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a node type with `count` nodes; returns its id. Node ids of
    /// this type start where the previous type ended.
    pub fn add_node_type(&mut self, name: impl Into<String>, count: usize) -> NodeTypeId {
        self.node_type_names.push(name.into());
        self.type_counts.push(count);
        self.node_type_names.len() - 1
    }

    /// Declares an edge type between two node types; returns its id.
    pub fn add_edge_type(
        &mut self,
        name: impl Into<String>,
        src: NodeTypeId,
        dst: NodeTypeId,
    ) -> EdgeTypeId {
        assert!(src < self.node_type_names.len(), "unknown src node type");
        assert!(dst < self.node_type_names.len(), "unknown dst node type");
        self.edge_types.push(EdgeType { name: name.into(), src, dst });
        self.edges.push(Vec::new());
        self.edge_types.len() - 1
    }

    /// Adds one edge in *global* node ids.
    pub fn add_edge(&mut self, etype: EdgeTypeId, src: u32, dst: u32) {
        // analyze:allow(panic, etype is the id returned by add_edge_type which pushed the matching edges entry)
        self.edges[etype].push((src, dst));
    }

    /// Finalizes the graph, validating that every edge endpoint lies in the
    /// declared type range of its edge type.
    pub fn build(self) -> HeteroGraph {
        let mut type_offsets = Vec::with_capacity(self.type_counts.len() + 1);
        type_offsets.push(0);
        for &c in &self.type_counts {
            type_offsets.push(type_offsets.last().expect("non-empty") + c);
        }
        let g = HeteroGraph {
            node_type_names: self.node_type_names,
            type_offsets,
            edge_types: self.edge_types,
            edges: self.edges,
        };
        for (et, list) in g.edge_types.iter().zip(&g.edges) {
            let sr = g.nodes_of_type(et.src);
            let dr = g.nodes_of_type(et.dst);
            for &(s, d) in list {
                assert!(
                    sr.contains(&(s as usize)),
                    "edge type '{}': source {s} outside type range {sr:?}",
                    et.name
                );
                assert!(
                    dr.contains(&(d as usize)),
                    "edge type '{}': target {d} outside type range {dr:?}",
                    et.name
                );
            }
        }
        g
    }
}

impl HeteroGraph {
    /// Starts a builder.
    pub fn builder() -> HeteroGraphBuilder {
        HeteroGraphBuilder::new()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        *self.type_offsets.last().expect("offsets non-empty")
    }

    /// Total number of (directed, as-stored) edges across all types.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Number of node types.
    pub fn num_node_types(&self) -> usize {
        self.node_type_names.len()
    }

    /// Number of edge types.
    pub fn num_edge_types(&self) -> usize {
        self.edge_types.len()
    }

    /// Name of node type `t`.
    pub fn node_type_name(&self, t: NodeTypeId) -> &str {
        &self.node_type_names[t]
    }

    /// Looks up a node type by name.
    pub fn node_type_by_name(&self, name: &str) -> Option<NodeTypeId> {
        self.node_type_names.iter().position(|n| n == name)
    }

    /// Metadata of edge type `e`.
    pub fn edge_type(&self, e: EdgeTypeId) -> &EdgeType {
        &self.edge_types[e]
    }

    /// Looks up an edge type by name.
    pub fn edge_type_by_name(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_types.iter().position(|et| et.name == name)
    }

    /// Global id range of node type `t`.
    pub fn nodes_of_type(&self, t: NodeTypeId) -> Range<usize> {
        // analyze:allow(panic, type_offsets has one entry per declared node type plus a sentinel; t is a declared type id)
        self.type_offsets[t]..self.type_offsets[t + 1]
    }

    /// Number of nodes of type `t`.
    pub fn num_nodes_of_type(&self, t: NodeTypeId) -> usize {
        self.nodes_of_type(t).len()
    }

    /// Node type of global node `v`.
    pub fn type_of(&self, v: usize) -> NodeTypeId {
        debug_assert!(v < self.num_nodes(), "node {v} out of range");
        // type_offsets is sorted; partition_point returns the first offset > v.
        self.type_offsets.partition_point(|&o| o <= v) - 1
    }

    /// Index of node `v` *within* its type (e.g. for one-hot encodings).
    pub fn local_index(&self, v: usize) -> usize {
        v - self.type_offsets[self.type_of(v)]
    }

    /// Edges of type `e` as stored (source, target) global-id pairs.
    pub fn edges_of_type(&self, e: EdgeTypeId) -> &[(u32, u32)] {
        &self.edges[e]
    }

    /// Order-sensitive structural hash over node-type sizes, edge-type
    /// endpoints, and every stored edge (names excluded — they don't affect
    /// any operator). [`crate::cache::OpCache`] uses this to refuse serving
    /// operators computed for a different graph.
    pub fn structural_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.type_offsets.hash(&mut h);
        for et in &self.edge_types {
            et.src.hash(&mut h);
            et.dst.hash(&mut h);
        }
        self.edges.hash(&mut h);
        h.finish()
    }

    /// Iterates over `(edge_type, src, dst)` for all edges.
    pub fn all_edges(&self) -> impl Iterator<Item = (EdgeTypeId, u32, u32)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(e, list)| list.iter().map(move |&(s, d)| (e, s, d)))
    }

    /// Returns a copy of this graph with a subset of edges of one type
    /// removed (used for link-prediction masking). `keep[i]` marks whether
    /// the `i`-th edge of `etype` survives.
    pub fn without_edges(&self, etype: EdgeTypeId, keep: &[bool]) -> HeteroGraph {
        assert_eq!(keep.len(), self.edges[etype].len(), "without_edges: mask length mismatch");
        let mut g = self.clone();
        g.edges[etype] = self.edges[etype]
            .iter()
            .zip(keep)
            .filter_map(|(&e, &k)| k.then_some(e))
            .collect();
        g
    }

    /// Undirected degree of every node (each stored edge contributes to both
    /// endpoints).
    pub fn undirected_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for (_, s, d) in self.all_edges() {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy() -> HeteroGraph {
        // 3 movies (0-2), 2 actors (3-4), 1 director (5).
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let d = b.add_node_type("director", 1);
        let ma = b.add_edge_type("movie-actor", m, a);
        let md = b.add_edge_type("movie-director", m, d);
        b.add_edge(ma, 0, 3);
        b.add_edge(ma, 1, 3);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 4);
        b.add_edge(md, 0, 5);
        b.add_edge(md, 2, 5);
        b.build()
    }

    #[test]
    fn counts_and_ranges() {
        let g = toy();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.num_node_types(), 3);
        assert_eq!(g.num_edge_types(), 2);
        assert_eq!(g.nodes_of_type(0), 0..3);
        assert_eq!(g.nodes_of_type(1), 3..5);
        assert_eq!(g.nodes_of_type(2), 5..6);
    }

    #[test]
    fn type_of_and_local_index() {
        let g = toy();
        assert_eq!(g.type_of(0), 0);
        assert_eq!(g.type_of(2), 0);
        assert_eq!(g.type_of(3), 1);
        assert_eq!(g.type_of(5), 2);
        assert_eq!(g.local_index(3), 0);
        assert_eq!(g.local_index(4), 1);
        assert_eq!(g.local_index(5), 0);
    }

    #[test]
    fn lookup_by_name() {
        let g = toy();
        assert_eq!(g.node_type_by_name("actor"), Some(1));
        assert_eq!(g.node_type_by_name("nope"), None);
        assert_eq!(g.edge_type_by_name("movie-director"), Some(1));
        assert_eq!(g.edge_type(0).name, "movie-actor");
    }

    #[test]
    fn without_edges_masks_only_target_type() {
        let g = toy();
        let g2 = g.without_edges(0, &[true, false, false, true]);
        assert_eq!(g2.edges_of_type(0), &[(0, 3), (2, 4)]);
        assert_eq!(g2.edges_of_type(1).len(), 2);
        assert_eq!(g.edges_of_type(0).len(), 4, "original untouched");
    }

    #[test]
    fn undirected_degrees_count_both_endpoints() {
        let g = toy();
        let deg = g.undirected_degrees();
        assert_eq!(deg, vec![2, 2, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "outside type range")]
    fn build_rejects_out_of_range_edges() {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 2);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 0); // 0 is a movie, not an actor
        b.build();
    }
}
