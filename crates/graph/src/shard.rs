//! Heterogeneity-aware graph partitioning.
//!
//! A [`ShardPlan`] assigns every node to exactly one of `k` shards; a
//! [`Shard`] materializes one shard as an induced [`HeteroGraph`] over the
//! shard's *core* nodes plus their full 1-hop halo. Keeping the complete
//! 1-hop neighborhood of every core node means the per-type neighbor
//! multisets that attribute-completion operators consume are bitwise
//! preserved inside the shard: a `mean_attr_agg` row of a core node computed
//! on the shard equals the same row computed on the whole graph (the row
//! depends only on the node's own neighbors and their attribute mask).
//! Degree-normalized operators (`gcn_attr_agg`) and K-hop propagation (PPNP)
//! additionally read *halo* degrees / deeper hops and are approximations
//! under sharding — documented, measured by `bench_shard`, never silently
//! assumed exact.
//!
//! Two strategies:
//!
//! * [`ShardStrategy::Hash`] — stateless splitmix64 of the node id; perfect
//!   expected balance, no locality.
//! * [`ShardStrategy::DegreeLocality`] — deterministic BFS growth seeded
//!   from the highest-degree unassigned node, capacity-capped at
//!   `ceil(n/k)`; clusters neighborhoods into the same shard so halos (and
//!   therefore per-shard operator size) shrink.
//!
//! Both are fully deterministic functions of `(graph, strategy, k)`, and the
//! plan exposes a [`ShardPlan::fingerprint`] over exactly those inputs plus
//! the resulting assignment so checkpoint identity guards can bind a resumed
//! run to the same partition.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

use crate::adjacency::Adjacency;
use crate::hetero::{HeteroGraph, NodeTypeId};

/// Partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardStrategy {
    /// Stateless hash of the global node id (splitmix64 mod `k`).
    Hash,
    /// Capacity-capped BFS growth from degree-sorted seeds.
    DegreeLocality,
}

impl ShardStrategy {
    /// Stable numeric tag, used in plan and checkpoint fingerprints.
    pub fn tag(self) -> u8 {
        match self {
            ShardStrategy::Hash => 0,
            ShardStrategy::DegreeLocality => 1,
        }
    }

    /// Parses the spellings accepted by bench flags / env knobs.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(ShardStrategy::Hash),
            "degree" | "locality" | "degree-locality" => Some(ShardStrategy::DegreeLocality),
            _ => None,
        }
    }
}

/// splitmix64 — the same stateless mixer the vendored rand uses for seeding;
/// good avalanche, so sequential node ids spread uniformly across shards.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A complete node→shard assignment for one graph.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    strategy: ShardStrategy,
    num_shards: usize,
    graph_fp: u64,
    /// Per global node, the owning shard.
    shard_of: Vec<u32>,
    /// Core (owned) node count per shard.
    core_counts: Vec<usize>,
}

impl ShardPlan {
    /// Partitions every node of `g` into `num_shards` shards.
    ///
    /// Deterministic: the same `(graph, strategy, num_shards)` always yields
    /// the same assignment, at any thread count.
    pub fn partition(g: &HeteroGraph, strategy: ShardStrategy, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "ShardPlan: num_shards must be >= 1");
        let _span = autoac_obs::span("shard_partition");
        let n = g.num_nodes();
        let shard_of = match strategy {
            ShardStrategy::Hash => (0..n)
                .map(|v| (splitmix64(v as u64) % num_shards as u64) as u32)
                .collect(),
            ShardStrategy::DegreeLocality => degree_locality_assign(g, num_shards),
        };
        let mut core_counts = vec![0usize; num_shards];
        for &s in &shard_of {
            core_counts[s as usize] += 1;
        }
        let plan = Self {
            strategy,
            num_shards,
            graph_fp: g.structural_fingerprint(),
            shard_of,
            core_counts,
        };
        autoac_obs::gauge_set("shard_balance", plan.balance());
        plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The strategy this plan was computed with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Owning shard of global node `v`.
    pub fn shard_of(&self, v: usize) -> usize {
        self.shard_of[v] as usize
    }

    /// Core (owned) node count of shard `s`.
    pub fn core_count(&self, s: usize) -> usize {
        self.core_counts[s]
    }

    /// Load-balance factor: `max core size / mean core size` (1.0 = perfect).
    pub fn balance(&self) -> f64 {
        let max = self.core_counts.iter().copied().max().unwrap_or(0);
        let mean = self.shard_of.len() as f64 / self.num_shards as f64;
        if mean > 0.0 { max as f64 / mean } else { 1.0 }
    }

    /// Identity hash over `(graph fingerprint, strategy, k, assignment)` —
    /// the value checkpoint guards store so a resume refuses a run that was
    /// partitioned differently.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.graph_fp.hash(&mut h);
        self.strategy.tag().hash(&mut h);
        self.num_shards.hash(&mut h);
        self.shard_of.hash(&mut h);
        h.finish()
    }

    /// Extracts shard `s` (builds a throwaway [`Adjacency`]; use
    /// [`ShardPlan::extract_all`] to amortize it across shards).
    pub fn extract(&self, g: &HeteroGraph, s: usize) -> Shard {
        let adj = Adjacency::build(g);
        self.extract_with(g, &adj, s)
    }

    /// Extracts every shard, sharing one adjacency build.
    pub fn extract_all(&self, g: &HeteroGraph) -> Vec<Shard> {
        let adj = Adjacency::build(g);
        (0..self.num_shards).map(|s| self.extract_with(g, &adj, s)).collect()
    }

    /// Extracts shard `s` as core ∪ full 1-hop halo, with the induced
    /// subgraph over that node set.
    pub fn extract_with(&self, g: &HeteroGraph, adj: &Adjacency, s: usize) -> Shard {
        assert!(s < self.num_shards, "ShardPlan: shard {s} out of range");
        assert_eq!(
            g.structural_fingerprint(),
            self.graph_fp,
            "ShardPlan: graph does not match the one this plan partitioned"
        );
        let _span = autoac_obs::span("shard_extract");
        let n = g.num_nodes();
        let mut selected = vec![false; n];
        for v in 0..n {
            if self.shard_of[v] == s as u32 {
                selected[v] = true;
                for &u in adj.neighbors(v) {
                    selected[u as usize] = true;
                }
            }
        }
        let nodes: Vec<u32> =
            (0..n as u32).filter(|&v| selected[v as usize]).collect();
        let is_core: Vec<bool> =
            nodes.iter().map(|&v| self.shard_of[v as usize] == s as u32).collect();
        let halo = nodes.len() - is_core.iter().filter(|&&c| c).count();
        autoac_obs::counter_add("shard_halo_nodes", halo as u64);
        let graph = induce_subgraph(g, &nodes);
        Shard { index: s, nodes, is_core, graph }
    }
}

/// Deterministic capacity-capped BFS growth: shards are filled one at a
/// time; each pulls the highest-degree unassigned node as a BFS seed and
/// claims unassigned neighbors (in adjacency order) until `ceil(n/k)` nodes
/// are claimed or no unassigned node remains.
fn degree_locality_assign(g: &HeteroGraph, k: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let adj = Adjacency::build(g);
    let deg = g.undirected_degrees();
    let mut by_deg: Vec<u32> = (0..n as u32).collect();
    by_deg.sort_by_key(|&v| (std::cmp::Reverse(deg[v as usize]), v));
    let cap = n.div_ceil(k);
    let mut shard_of = vec![u32::MAX; n];
    let mut seed_cursor = 0usize;
    let mut queue: VecDeque<u32> = VecDeque::new();
    for s in 0..k as u32 {
        let mut claimed = 0usize;
        queue.clear();
        'fill: while claimed < cap {
            let v = if let Some(v) = queue.pop_front() {
                v
            } else {
                while seed_cursor < n && shard_of[by_deg[seed_cursor] as usize] != u32::MAX {
                    seed_cursor += 1;
                }
                if seed_cursor == n {
                    break 'fill; // every node assigned
                }
                let seed = by_deg[seed_cursor];
                shard_of[seed as usize] = s;
                claimed += 1;
                seed
            };
            for &u in adj.neighbors(v as usize) {
                if claimed == cap {
                    continue 'fill;
                }
                if shard_of[u as usize] == u32::MAX {
                    shard_of[u as usize] = s;
                    claimed += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    // k * cap >= n, so the loop above assigns every node; the sweep is a
    // defensive backstop that keeps the "exactly one shard" invariant even
    // if the capacity arithmetic ever changes.
    for slot in shard_of.iter_mut() {
        if *slot == u32::MAX {
            *slot = k as u32 - 1;
        }
    }
    shard_of
}

/// Builds the induced subgraph of `g` over `nodes` (sorted global ids).
/// Because global ids are type-contiguous and `nodes` is sorted, sub-ids are
/// automatically type-contiguous too, so the result is a valid
/// [`HeteroGraph`] with the same node/edge-type schema. Edge order follows
/// the parent's stored order, so induction is deterministic.
fn induce_subgraph(g: &HeteroGraph, nodes: &[u32]) -> HeteroGraph {
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must be sorted unique");
    let mut sub_of = vec![u32::MAX; g.num_nodes()];
    for (i, &v) in nodes.iter().enumerate() {
        sub_of[v as usize] = i as u32;
    }
    let mut b = HeteroGraph::builder();
    let mut cursor = 0usize;
    for t in 0..g.num_node_types() {
        let range = g.nodes_of_type(t);
        let start = cursor;
        while cursor < nodes.len() && (nodes[cursor] as usize) < range.end {
            cursor += 1;
        }
        b.add_node_type(g.node_type_name(t), cursor - start);
    }
    for e in 0..g.num_edge_types() {
        let et = g.edge_type(e);
        b.add_edge_type(et.name.clone(), et.src, et.dst);
    }
    for (e, s, d) in g.all_edges() {
        let (ss, dd) = (sub_of[s as usize], sub_of[d as usize]);
        if ss != u32::MAX && dd != u32::MAX {
            b.add_edge(e, ss, dd);
        }
    }
    b.build()
}

/// One materialized shard: the core nodes it owns, their 1-hop halo, and the
/// induced subgraph over both.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Shard index within its plan.
    pub index: usize,
    /// Sorted global ids of every node present (core ∪ halo).
    pub nodes: Vec<u32>,
    /// Parallel to `nodes`: whether the node is core (owned) vs halo.
    pub is_core: Vec<bool>,
    /// Induced subgraph in shard-local ids (`nodes[i]` ↦ `i`).
    pub graph: HeteroGraph,
}

impl Shard {
    /// Shard-local id of global node `v`, if present in this shard.
    pub fn sub_of(&self, v: u32) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Global id of shard-local node `i`.
    pub fn global_of(&self, i: usize) -> u32 {
        self.nodes[i]
    }

    /// Number of core (owned) nodes.
    pub fn num_core(&self) -> usize {
        self.is_core.iter().filter(|&&c| c).count()
    }

    /// Global ids of the core nodes, ascending.
    pub fn core_globals(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .zip(&self.is_core)
            .filter_map(|(&v, &c)| c.then_some(v))
            .collect()
    }

    /// Restricts a per-node value vector of the parent graph to this
    /// shard's nodes, in shard-local order.
    pub fn gather_values<T: Clone>(&self, parent: &[T]) -> Vec<T> {
        self.nodes.iter().map(|&v| parent[v as usize].clone()).collect()
    }

    /// Per-type neighbor list of a *core* node, read from the induced
    /// subgraph but reported in global ids — the unit the completion-op
    /// preservation tests compare against the parent graph.
    pub fn core_typed_neighbors(
        &self,
        adj: &Adjacency,
        v: u32,
        t: NodeTypeId,
    ) -> Option<Vec<u32>> {
        let sub = self.sub_of(v)?;
        if !self.is_core[sub] {
            return None;
        }
        Some(
            adj.typed_neighbors(sub, t)
                .iter()
                .map(|&u| self.global_of(u as usize))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        // 3 movies (0-2), 2 actors (3-4), 1 director (5).
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let d = b.add_node_type("director", 1);
        let ma = b.add_edge_type("movie-actor", m, a);
        let md = b.add_edge_type("movie-director", m, d);
        b.add_edge(ma, 0, 3);
        b.add_edge(ma, 1, 3);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 4);
        b.add_edge(md, 0, 5);
        b.add_edge(md, 2, 5);
        b.build()
    }

    #[test]
    fn every_node_in_exactly_one_shard_both_strategies() {
        let g = toy();
        for strategy in [ShardStrategy::Hash, ShardStrategy::DegreeLocality] {
            for k in 1..=4 {
                let plan = ShardPlan::partition(&g, strategy, k);
                let mut counts = vec![0usize; k];
                for v in 0..g.num_nodes() {
                    counts[plan.shard_of(v)] += 1;
                }
                assert_eq!(counts.iter().sum::<usize>(), g.num_nodes());
                for s in 0..k {
                    assert_eq!(counts[s], plan.core_count(s), "{strategy:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn degree_locality_respects_capacity() {
        let g = toy();
        let plan = ShardPlan::partition(&g, ShardStrategy::DegreeLocality, 3);
        let cap = g.num_nodes().div_ceil(3);
        for s in 0..3 {
            assert!(plan.core_count(s) <= cap, "shard {s} over capacity");
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let g = toy();
        for strategy in [ShardStrategy::Hash, ShardStrategy::DegreeLocality] {
            let a = ShardPlan::partition(&g, strategy, 2);
            let b = ShardPlan::partition(&g, strategy, 2);
            assert_eq!(a.shard_of, b.shard_of);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn fingerprint_binds_strategy_and_k() {
        let g = toy();
        let hash2 = ShardPlan::partition(&g, ShardStrategy::Hash, 2);
        let hash3 = ShardPlan::partition(&g, ShardStrategy::Hash, 3);
        let loc2 = ShardPlan::partition(&g, ShardStrategy::DegreeLocality, 2);
        assert_ne!(hash2.fingerprint(), hash3.fingerprint());
        assert_ne!(hash2.fingerprint(), loc2.fingerprint());
    }

    #[test]
    fn shard_keeps_core_typed_neighborhoods_intact() {
        let g = toy();
        let full = Adjacency::build(&g);
        for strategy in [ShardStrategy::Hash, ShardStrategy::DegreeLocality] {
            let plan = ShardPlan::partition(&g, strategy, 2);
            for shard in plan.extract_all(&g) {
                let sub_adj = Adjacency::build(&shard.graph);
                for (i, &v) in shard.nodes.iter().enumerate() {
                    if !shard.is_core[i] {
                        continue;
                    }
                    for t in 0..g.num_node_types() {
                        let mut want: Vec<u32> = full.typed_neighbors(v as usize, t).to_vec();
                        want.sort_unstable();
                        let mut got = shard
                            .core_typed_neighbors(&sub_adj, v, t)
                            .expect("core node present");
                        got.sort_unstable();
                        assert_eq!(got, want, "{strategy:?} node {v} type {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_schema_and_type_contiguity() {
        let g = toy();
        let plan = ShardPlan::partition(&g, ShardStrategy::Hash, 2);
        let shard = plan.extract(&g, 0);
        assert_eq!(shard.graph.num_node_types(), g.num_node_types());
        assert_eq!(shard.graph.num_edge_types(), g.num_edge_types());
        // Every present node's type matches its parent's type.
        for (i, &v) in shard.nodes.iter().enumerate() {
            assert_eq!(shard.graph.type_of(i), g.type_of(v as usize));
        }
        // Round trip of the id maps.
        for (i, &v) in shard.nodes.iter().enumerate() {
            assert_eq!(shard.sub_of(v), Some(i));
            assert_eq!(shard.global_of(i), v);
        }
    }

    #[test]
    fn single_shard_is_the_whole_graph() {
        let g = toy();
        let plan = ShardPlan::partition(&g, ShardStrategy::DegreeLocality, 1);
        let shard = plan.extract(&g, 0);
        assert_eq!(shard.nodes.len(), g.num_nodes());
        assert_eq!(shard.num_core(), g.num_nodes());
        assert_eq!(
            shard.graph.structural_fingerprint(),
            g.structural_fingerprint(),
            "one shard with full halo must induce the identical graph"
        );
    }

    #[test]
    fn strategy_parse_roundtrip() {
        assert_eq!(ShardStrategy::parse("hash"), Some(ShardStrategy::Hash));
        assert_eq!(ShardStrategy::parse("degree"), Some(ShardStrategy::DegreeLocality));
        assert_eq!(ShardStrategy::parse("locality"), Some(ShardStrategy::DegreeLocality));
        assert_eq!(ShardStrategy::parse("nope"), None);
    }

    #[test]
    fn balance_is_one_for_perfect_split() {
        let g = toy();
        let plan = ShardPlan::partition(&g, ShardStrategy::DegreeLocality, 2);
        assert!((plan.balance() - 1.0).abs() < 1e-9, "6 nodes / 2 shards caps at 3+3");
    }
}
