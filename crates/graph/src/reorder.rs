//! Cache-friendly node reordering.
//!
//! CSR kernels walk `indptr` in row order and chase column indices through
//! the operand matrix; when high-degree rows are scattered and neighbor ids
//! are far apart, every nonzero is a cache miss. A [`Reordering`] is a
//! *within-type* permutation of the global id space — node types keep their
//! contiguous ranges (the HGB invariant every operator relies on), but nodes
//! inside each type are renumbered either by descending degree
//! ([`ReorderStrategy::DegreeSorted`]: hot rows first, so the top of every
//! CSR stays resident) or by BFS visit order
//! ([`ReorderStrategy::BfsClustered`]: neighborhoods get nearby ids, so
//! column accesses cluster).
//!
//! The permutation is stored in both directions and is exactly invertible:
//! `r.inverse().apply(&r.apply(&g))` rebuilds a bitwise-identical graph
//! (same edge order, same fingerprint), and [`Reordering::permute_values`]
//! round-trips per-node vectors (features, labels, masks) the same way.

use crate::adjacency::Adjacency;
use crate::hetero::HeteroGraph;

/// Which within-type order to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderStrategy {
    /// Nodes of each type sorted by descending undirected degree (ties by
    /// ascending old id).
    DegreeSorted,
    /// Nodes of each type sorted by global BFS first-visit order (roots
    /// picked in descending degree order, so each component is contiguous).
    BfsClustered,
}

impl ReorderStrategy {
    /// Parses the spellings accepted by bench flags / env knobs.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "degree" | "degree-sorted" => Some(ReorderStrategy::DegreeSorted),
            "bfs" | "bfs-clustered" => Some(ReorderStrategy::BfsClustered),
            _ => None,
        }
    }
}

/// A within-type permutation of a graph's global node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordering {
    /// `new_of_old[v]` = new id of old node `v`.
    new_of_old: Vec<u32>,
    /// `old_of_new[v]` = old id of new node `v`.
    old_of_new: Vec<u32>,
}

impl Reordering {
    /// The identity permutation over `n` nodes.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<u32> = (0..n as u32).collect();
        Self { new_of_old: ids.clone(), old_of_new: ids }
    }

    /// Computes the permutation for `g` under `strategy`. Deterministic and
    /// type-preserving: a node's new id stays inside its type's range.
    pub fn compute(g: &HeteroGraph, strategy: ReorderStrategy) -> Self {
        let _span = autoac_obs::span("reorder_compute");
        let n = g.num_nodes();
        let deg = g.undirected_degrees();
        // Per-node sort key; smaller key = earlier new id within the type.
        let key: Vec<u64> = match strategy {
            ReorderStrategy::DegreeSorted => {
                // Descending degree: invert so sort ascending works.
                deg.iter().map(|&d| u64::MAX - d as u64).collect()
            }
            ReorderStrategy::BfsClustered => bfs_visit_rank(g, &deg),
        };
        let mut old_of_new = Vec::with_capacity(n);
        for t in 0..g.num_node_types() {
            let mut ids: Vec<u32> = g.nodes_of_type(t).map(|v| v as u32).collect();
            ids.sort_by_key(|&v| (key[v as usize], v));
            old_of_new.extend(ids);
        }
        let mut new_of_old = vec![0u32; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        Self { new_of_old, old_of_new }
    }

    /// Number of nodes the permutation covers.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation is over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New id of old node `v`.
    pub fn new_of_old(&self, v: usize) -> usize {
        self.new_of_old[v] as usize
    }

    /// Old id of new node `v`.
    pub fn old_of_new(&self, v: usize) -> usize {
        self.old_of_new[v] as usize
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        Self { new_of_old: self.old_of_new.clone(), old_of_new: self.new_of_old.clone() }
    }

    /// Rebuilds `g` with nodes renumbered. Type ranges and edge-list order
    /// are preserved; only endpoint ids change.
    pub fn apply(&self, g: &HeteroGraph) -> HeteroGraph {
        assert_eq!(self.len(), g.num_nodes(), "Reordering: node count mismatch");
        let _span = autoac_obs::span("reorder_apply");
        let mut b = HeteroGraph::builder();
        for t in 0..g.num_node_types() {
            b.add_node_type(g.node_type_name(t), g.num_nodes_of_type(t));
        }
        for e in 0..g.num_edge_types() {
            let et = g.edge_type(e);
            b.add_edge_type(et.name.clone(), et.src, et.dst);
        }
        for (e, s, d) in g.all_edges() {
            b.add_edge(e, self.new_of_old[s as usize], self.new_of_old[d as usize]);
        }
        b.build()
    }

    /// Permutes a per-node value vector into the new order:
    /// `out[new_of_old[v]] = values[v]`.
    pub fn permute_values<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "Reordering: value length mismatch");
        self.old_of_new.iter().map(|&old| values[old as usize].clone()).collect()
    }
}

/// Global BFS first-visit rank, roots in descending-degree order (ties by
/// ascending id) so every connected component is numbered contiguously.
fn bfs_visit_rank(g: &HeteroGraph, deg: &[usize]) -> Vec<u64> {
    let n = g.num_nodes();
    let adj = Adjacency::build(g);
    let mut roots: Vec<u32> = (0..n as u32).collect();
    roots.sort_by_key(|&v| (std::cmp::Reverse(deg[v as usize]), v));
    let mut rank = vec![0u64; n];
    let mut seen = vec![false; n];
    let mut next = 0u64;
    let mut queue = std::collections::VecDeque::new();
    for &root in &roots {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            rank[v as usize] = next;
            next += 1;
            for &u in adj.neighbors(v as usize) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let d = b.add_node_type("director", 1);
        let ma = b.add_edge_type("movie-actor", m, a);
        let md = b.add_edge_type("movie-director", m, d);
        b.add_edge(ma, 0, 3);
        b.add_edge(ma, 1, 3);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 4);
        b.add_edge(md, 0, 5);
        b.add_edge(md, 2, 5);
        b.build()
    }

    #[test]
    fn permutation_is_within_type_and_bijective() {
        let g = toy();
        for strategy in [ReorderStrategy::DegreeSorted, ReorderStrategy::BfsClustered] {
            let r = Reordering::compute(&g, strategy);
            let mut seen = vec![false; g.num_nodes()];
            for v in 0..g.num_nodes() {
                let nv = r.new_of_old(v);
                assert_eq!(g.type_of(nv), g.type_of(v), "{strategy:?}: type changed");
                assert!(!seen[nv], "{strategy:?}: new id {nv} assigned twice");
                seen[nv] = true;
                assert_eq!(r.old_of_new(nv), v);
            }
        }
    }

    #[test]
    fn apply_then_inverse_is_bitwise_identity() {
        let g = toy();
        for strategy in [ReorderStrategy::DegreeSorted, ReorderStrategy::BfsClustered] {
            let r = Reordering::compute(&g, strategy);
            let forward = r.apply(&g);
            let back = r.inverse().apply(&forward);
            assert_eq!(back.structural_fingerprint(), g.structural_fingerprint());
            for e in 0..g.num_edge_types() {
                assert_eq!(back.edges_of_type(e), g.edges_of_type(e), "{strategy:?}");
            }
        }
    }

    #[test]
    fn degree_sorted_puts_hot_rows_first_within_type() {
        let g = toy();
        let r = Reordering::compute(&g, ReorderStrategy::DegreeSorted);
        let deg = g.undirected_degrees();
        let reordered = r.apply(&g);
        let new_deg = reordered.undirected_degrees();
        for t in 0..g.num_node_types() {
            let range = g.nodes_of_type(t);
            // Degrees are non-increasing inside each type's new id range.
            for w in new_deg[range].windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
        // Sanity: permuting old degrees matches the reordered graph's.
        assert_eq!(r.permute_values(&deg), new_deg);
    }

    #[test]
    fn permute_values_round_trips() {
        let g = toy();
        let r = Reordering::compute(&g, ReorderStrategy::BfsClustered);
        let vals: Vec<i32> = (0..g.num_nodes() as i32).collect();
        let permuted = r.permute_values(&vals);
        let back = r.inverse().permute_values(&permuted);
        assert_eq!(back, vals);
    }

    #[test]
    fn identity_is_a_no_op() {
        let g = toy();
        let r = Reordering::identity(g.num_nodes());
        let h = r.apply(&g);
        assert_eq!(h.structural_fingerprint(), g.structural_fingerprint());
    }

    #[test]
    fn strategy_parse_roundtrip() {
        assert_eq!(ReorderStrategy::parse("degree"), Some(ReorderStrategy::DegreeSorted));
        assert_eq!(ReorderStrategy::parse("bfs"), Some(ReorderStrategy::BfsClustered));
        assert_eq!(ReorderStrategy::parse("nope"), None);
    }
}
