//! Normalized adjacency constructions.
//!
//! These feed three consumers: plain GCN/GAT layers (symmetric norm over the
//! whole graph), the PPNP completion operation (same), and the mean/GCN
//! completion operations, which aggregate only from *attributed* 1-hop
//! neighbors (`N_v⁺` in the paper, Eqs. 2–3).
//!
//! # Multigraph semantics
//!
//! [`HeteroGraph`] permits duplicate edges (HGB dumps contain them, e.g. an
//! author appearing twice on one paper). Every operator here treats them
//! *occurrence-counted*, consistently: each occurrence increments the
//! degrees **and** contributes one weight term, which [`Csr::from_coo`]
//! sums into a single entry. A doubled edge therefore carries twice the
//! normalized weight of a single edge — it is never silently deduplicated,
//! and it never breaks stochasticity: rows of [`row_norm_adj`] and
//! [`mean_attr_agg`] still sum to exactly 1 (or 0 for nodes with no
//! (attributed) neighbors), and [`sym_norm_adj`] stays symmetric. The
//! property tests in `tests/graph_properties.rs` pin this down with
//! explicitly repeated edges.

use autoac_tensor::Csr;

use crate::hetero::HeteroGraph;

/// Symmetrically normalized adjacency with self-loops,
/// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`, over the whole (undirected) graph.
pub fn sym_norm_adj(g: &HeteroGraph) -> Csr {
    let n = g.num_nodes();
    let mut deg = vec![1.0f32; n]; // self-loop contributes 1
    for (_, s, d) in g.all_edges() {
        deg[s as usize] += 1.0;
        deg[d as usize] += 1.0;
    }
    let inv_sqrt: Vec<f32> = deg.iter().map(|&d| 1.0 / d.sqrt()).collect();
    let triplets = g
        .all_edges()
        .flat_map(|(_, s, d)| {
            let w = inv_sqrt[s as usize] * inv_sqrt[d as usize];
            [(s, d, w), (d, s, w)]
        })
        .chain((0..n as u32).map(|v| (v, v, inv_sqrt[v as usize] * inv_sqrt[v as usize])));
    Csr::from_coo(n, n, triplets)
}

/// Row-normalized adjacency (no self-loops): `D^{-1} A` over the undirected
/// graph. Rows of isolated nodes are empty.
pub fn row_norm_adj(g: &HeteroGraph) -> Csr {
    let n = g.num_nodes();
    let deg = g.undirected_degrees();
    let triplets = g.all_edges().flat_map(|(_, s, d)| {
        let ws = 1.0 / deg[s as usize].max(1) as f32;
        let wd = 1.0 / deg[d as usize].max(1) as f32;
        [(s, d, ws), (d, s, wd)]
    });
    Csr::from_coo(n, n, triplets)
}

/// Mean aggregation operator over *attributed* neighbors (paper Eq. 2):
/// row `v` holds `1/|N_v⁺|` at each attributed neighbor `u ∈ N_v⁺`.
/// Rows of nodes with no attributed neighbor are empty (their completed
/// attribute falls back to zero, matching the paper's zero-fill).
pub fn mean_attr_agg(g: &HeteroGraph, has_attr: &[bool]) -> Csr {
    assert_eq!(has_attr.len(), g.num_nodes(), "mean_attr_agg: mask length mismatch");
    let n = g.num_nodes();
    let mut attr_deg = vec![0usize; n];
    for (_, s, d) in g.all_edges() {
        if has_attr[d as usize] {
            attr_deg[s as usize] += 1;
        }
        if has_attr[s as usize] {
            attr_deg[d as usize] += 1;
        }
    }
    let triplets = g.all_edges().flat_map(|(_, s, d)| {
        let mut out = Vec::with_capacity(2);
        if has_attr[d as usize] {
            out.push((s, d, 1.0 / attr_deg[s as usize] as f32));
        }
        if has_attr[s as usize] {
            out.push((d, s, 1.0 / attr_deg[d as usize] as f32));
        }
        out
    });
    Csr::from_coo(n, n, triplets)
}

/// GCN-style aggregation operator over *attributed* neighbors (paper Eq. 3):
/// row `v` holds `(deg(v)·deg(u))^{-1/2}` at each attributed neighbor `u`.
/// Degrees are full undirected degrees (not restricted to attributed
/// neighbors), matching the renormalized convolution form.
pub fn gcn_attr_agg(g: &HeteroGraph, has_attr: &[bool]) -> Csr {
    assert_eq!(has_attr.len(), g.num_nodes(), "gcn_attr_agg: mask length mismatch");
    let n = g.num_nodes();
    let deg = g.undirected_degrees();
    let inv_sqrt: Vec<f32> =
        deg.iter().map(|&d| if d > 0 { 1.0 / (d as f32).sqrt() } else { 0.0 }).collect();
    let triplets = g.all_edges().flat_map(|(_, s, d)| {
        let w = inv_sqrt[s as usize] * inv_sqrt[d as usize];
        let mut out = Vec::with_capacity(2);
        if has_attr[d as usize] {
            out.push((s, d, w));
        }
        if has_attr[s as usize] {
            out.push((d, s, w));
        }
        out
    });
    Csr::from_coo(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        // movie 0,1 — actor 2,3; edges (0,2),(0,3),(1,3)
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 2);
        let a = b.add_node_type("actor", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 2);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.build()
    }

    #[test]
    fn sym_norm_rows_and_symmetry() {
        let g = toy();
        let a = sym_norm_adj(&g);
        assert_eq!(a.n_rows(), 4);
        let dense = a.to_dense();
        // Symmetric.
        assert_eq!(dense, dense.transpose());
        // deg+1: node0 = 3, node2 = 2 → entry (0,2) = 1/sqrt(3·2).
        let want = 1.0 / (3.0f32 * 2.0).sqrt();
        assert!((dense.get(0, 2) - want).abs() < 1e-6);
        // Self-loop present.
        assert!(dense.get(0, 0) > 0.0);
    }

    #[test]
    fn sym_norm_spectral_radius_at_most_one() {
        // Power iteration on Â must not blow up (largest |eigenvalue| ≤ 1).
        let g = toy();
        let a = sym_norm_adj(&g);
        let mut x = autoac_tensor::Matrix::ones(4, 1);
        for _ in 0..50 {
            x = a.matmul_dense(&x);
        }
        assert!(x.data().iter().all(|v| v.abs() <= 1.5), "power iteration diverged: {x:?}");
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let g = toy();
        let a = row_norm_adj(&g);
        for (r, s) in a.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn mean_attr_agg_restricts_to_attributed() {
        let g = toy();
        // Only movies (0, 1) have attributes.
        let has = vec![true, true, false, false];
        let m = mean_attr_agg(&g, &has);
        let dense = m.to_dense();
        // Actor 3 has attributed neighbors {0, 1} → 1/2 each.
        assert!((dense.get(3, 0) - 0.5).abs() < 1e-6);
        assert!((dense.get(3, 1) - 0.5).abs() < 1e-6);
        // Actor 2 has attributed neighbor {0} → 1.
        assert!((dense.get(2, 0) - 1.0).abs() < 1e-6);
        // Movie rows aggregate only from attributed neighbors; actors have
        // none, so movie rows are empty.
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn gcn_attr_agg_weights() {
        let g = toy();
        let has = vec![true, true, false, false];
        let m = gcn_attr_agg(&g, &has);
        let dense = m.to_dense();
        // deg(3) = 2, deg(0) = 2 → (2·2)^{-1/2} = 0.5
        assert!((dense.get(3, 0) - 0.5).abs() < 1e-6);
        // deg(2) = 1, deg(0) = 2 → (1·2)^{-1/2}
        assert!((dense.get(2, 0) - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn isolated_nodes_have_empty_completion_rows() {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 1);
        let a = b.add_node_type("a", 2); // actor 2 is isolated
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 1);
        let g = b.build();
        let has = vec![true, false, false];
        let mm = mean_attr_agg(&g, &has);
        assert_eq!(mm.row_nnz(2), 0);
        let gg = gcn_attr_agg(&g, &has);
        assert_eq!(gg.row_nnz(2), 0);
    }
}
