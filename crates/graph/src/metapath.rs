//! Metapath machinery for metapath-based HGNNs (HAN, MAGNN).
//!
//! A metapath is a node-type sequence such as `M-A-M` (movie–actor–movie).
//! Two views are provided:
//!   * [`metapath_adjacency`] — the homogeneous neighbor graph connecting
//!     endpoints of metapath instances (what HAN consumes);
//!   * [`sample_instances`] — concrete node sequences per start node,
//!     capped per node (what MAGNN's instance encoders consume).

use autoac_tensor::Csr;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::adjacency::Adjacency;
use crate::hetero::NodeTypeId;

/// A metapath: a sequence of node types of length ≥ 2 whose first and last
/// types are the "endpoint" types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metapath(pub Vec<NodeTypeId>);

impl Metapath {
    /// Creates a metapath, validating the length.
    pub fn new(types: impl Into<Vec<NodeTypeId>>) -> Self {
        let types = types.into();
        assert!(types.len() >= 2, "metapath needs at least two node types");
        Self(types)
    }

    /// The start node type.
    pub fn start(&self) -> NodeTypeId {
        self.0[0]
    }

    /// The terminal node type.
    pub fn end(&self) -> NodeTypeId {
        *self.0.last().expect("non-empty")
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.0.len() - 1
    }
}

/// One concrete metapath instance: the full global-id node sequence.
pub type Instance = Vec<u32>;

/// Samples up to `cap` metapath instances starting at `start` (which must be
/// of the metapath's start type). Neighbors at each hop are visited in
/// random order so the cap yields an unbiased-ish sample instead of a
/// lexicographic prefix.
pub fn sample_instances(
    adj: &Adjacency,
    mp: &Metapath,
    start: u32,
    cap: usize,
    rng: &mut impl Rng,
) -> Vec<Instance> {
    let mut out = Vec::new();
    let mut path = vec![start];
    extend(adj, mp, 1, &mut path, cap, &mut out, rng);
    out
}

fn extend(
    adj: &Adjacency,
    mp: &Metapath,
    depth: usize,
    path: &mut Vec<u32>,
    cap: usize,
    out: &mut Vec<Instance>,
    rng: &mut impl Rng,
) {
    if out.len() >= cap {
        return;
    }
    if depth == mp.0.len() {
        out.push(path.clone());
        return;
    }
    let last = *path.last().expect("path non-empty") as usize;
    let mut nbrs: Vec<u32> = adj.typed_neighbors(last, mp.0[depth]).to_vec();
    nbrs.shuffle(rng);
    for nb in nbrs {
        if out.len() >= cap {
            break;
        }
        path.push(nb);
        extend(adj, mp, depth + 1, path, cap, out, rng);
        path.pop();
    }
}

/// Builds the metapath-based neighbor graph: entry `(u, v)` counts metapath
/// instances from `u` to `v` (both of the endpoint types, in global ids over
/// the whole node set). Instances per start node are capped at
/// `cap_per_node` to bound cost on hub-heavy graphs.
pub fn metapath_adjacency(
    adj: &Adjacency,
    mp: &Metapath,
    start_nodes: impl Iterator<Item = u32>,
    cap_per_node: usize,
    rng: &mut impl Rng,
) -> Csr {
    let n = adj.num_nodes();
    let mut triplets = Vec::new();
    for s in start_nodes {
        for inst in sample_instances(adj, mp, s, cap_per_node, rng) {
            let t = *inst.last().expect("instance non-empty");
            triplets.push((s, t, 1.0));
        }
    }
    Csr::from_coo(n, n, triplets)
}

/// Row-normalizes a metapath adjacency in place-ish (returns a new CSR with
/// each row scaled to sum 1; empty rows stay empty).
pub fn row_normalize(csr: &Csr) -> Csr {
    let sums = csr.row_sums();
    let n = csr.n_rows();
    let triplets = (0..n).flat_map(|r| {
        let s = sums[r];
        csr.row(r)
            .map(move |(c, v)| (r as u32, c, if s > 0.0 { v / s } else { 0.0 }))
            .collect::<Vec<_>>()
    });
    Csr::from_coo(n, csr.n_cols(), triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::HeteroGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (HeteroGraph, Adjacency) {
        // movies 0..3, actors 3..5: edges (0,3),(1,3),(1,4),(2,4)
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 4);
        let g = b.build();
        let adj = Adjacency::build(&g);
        (g, adj)
    }

    #[test]
    fn instances_follow_schema() {
        let (_, adj) = toy();
        let mp = Metapath::new(vec![0, 1, 0]); // M-A-M
        let mut rng = StdRng::seed_from_u64(0);
        let mut inst = sample_instances(&adj, &mp, 0, 100, &mut rng);
        inst.sort();
        // From movie 0: 0-3-0, 0-3-1.
        assert_eq!(inst, vec![vec![0, 3, 0], vec![0, 3, 1]]);
    }

    #[test]
    fn cap_limits_instance_count() {
        let (_, adj) = toy();
        let mp = Metapath::new(vec![0, 1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let inst = sample_instances(&adj, &mp, 1, 2, &mut rng);
        assert_eq!(inst.len(), 2); // movie 1 has 4 M-A-M instances, capped at 2
    }

    #[test]
    fn metapath_adjacency_counts_paths() {
        let (g, adj) = toy();
        let mp = Metapath::new(vec![0, 1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let a = metapath_adjacency(
            &adj,
            &mp,
            g.nodes_of_type(0).map(|v| v as u32),
            1000,
            &mut rng,
        );
        let d = a.to_dense();
        // Movie 1 reaches movie 0 via actor 3, movie 2 via actor 4, itself twice.
        assert_eq!(d.get(1, 0), 1.0);
        assert_eq!(d.get(1, 2), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        // Movies 0 and 2 share no actor.
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn row_normalize_sums_to_one_or_zero() {
        let (g, adj) = toy();
        let mp = Metapath::new(vec![0, 1, 0]);
        let mut rng = StdRng::seed_from_u64(0);
        let a = metapath_adjacency(
            &adj,
            &mp,
            g.nodes_of_type(0).map(|v| v as u32),
            1000,
            &mut rng,
        );
        let norm = row_normalize(&a);
        for (r, s) in norm.row_sums().iter().enumerate() {
            assert!(*s == 0.0 || (s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn longer_metapaths() {
        let (_, adj) = toy();
        let mp = Metapath::new(vec![1, 0, 1, 0]); // A-M-A-M
        let mut rng = StdRng::seed_from_u64(0);
        let inst = sample_instances(&adj, &mp, 3, 100, &mut rng);
        assert!(inst.iter().all(|p| p.len() == 4));
        // 3-1-4-1 and 3-1-4-2 reachable, plus back-tracking paths.
        assert!(inst.contains(&vec![3, 1, 4, 2]));
    }
}
