//! # autoac-graph
//!
//! Heterogeneous graph store and graph kernels for the AutoAC reproduction:
//! typed node/edge storage (HGB conventions), normalized adjacency
//! constructions, PPNP propagation, metapath enumeration, and random walks.

#![warn(missing_docs)]

mod adjacency;
pub mod cache;
mod hetero;
pub mod metapath;
pub mod norm;
pub mod ppr;
pub mod reorder;
pub mod shard;
pub mod walk;

pub use adjacency::Adjacency;
pub use cache::{OpCache, ShardedOpCache};
pub use hetero::{EdgeType, EdgeTypeId, HeteroGraph, HeteroGraphBuilder, NodeTypeId};
pub use reorder::{ReorderStrategy, Reordering};
pub use shard::{Shard, ShardPlan, ShardStrategy};
