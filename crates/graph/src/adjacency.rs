//! Undirected neighbor lists with per-type buckets.
//!
//! Built once per graph and shared by the metapath enumerator, the random
//! walker, and the completion-operation kernels. Neighbors of each node are
//! grouped by the neighbor's node type so schema-guided traversals are O(1)
//! per hop.

use crate::hetero::{HeteroGraph, NodeTypeId};

/// Undirected adjacency with neighbors bucketed by node type.
#[derive(Debug, Clone)]
pub struct Adjacency {
    num_nodes: usize,
    num_types: usize,
    /// `indptr[v * num_types + t] .. indptr[v * num_types + t + 1]` indexes
    /// `neighbors` with the type-`t` neighbors of node `v`.
    indptr: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Adjacency {
    /// Builds the bucketed adjacency from all edges of `g`, treating every
    /// edge as undirected.
    pub fn build(g: &HeteroGraph) -> Self {
        let n = g.num_nodes();
        let t = g.num_node_types();
        // Precompute node types to avoid repeated binary searches.
        let types: Vec<NodeTypeId> = (0..n).map(|v| g.type_of(v)).collect();
        let mut counts = vec![0usize; n * t + 1];
        for (_, s, d) in g.all_edges() {
            counts[s as usize * t + types[d as usize] + 1] += 1;
            counts[d as usize * t + types[s as usize] + 1] += 1;
        }
        for i in 0..n * t {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut neighbors = vec![0u32; *indptr.last().expect("non-empty")];
        for (_, s, d) in g.all_edges() {
            let slot = s as usize * t + types[d as usize];
            neighbors[cursor[slot]] = d;
            cursor[slot] += 1;
            let slot = d as usize * t + types[s as usize];
            neighbors[cursor[slot]] = s;
            cursor[slot] += 1;
        }
        // Sort each bucket for determinism and binary-searchable membership.
        for v in 0..n {
            for ty in 0..t {
                let r = indptr[v * t + ty]..indptr[v * t + ty + 1];
                neighbors[r].sort_unstable();
            }
        }
        Self { num_nodes: n, num_types: t, indptr, neighbors }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All neighbors of `v` (all types, ordered by type then id).
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.indptr[v * self.num_types];
        let hi = self.indptr[(v + 1) * self.num_types];
        &self.neighbors[lo..hi]
    }

    /// Neighbors of `v` with node type `t`.
    pub fn typed_neighbors(&self, v: usize, t: NodeTypeId) -> &[u32] {
        let lo = self.indptr[v * self.num_types + t];
        let hi = self.indptr[v * self.num_types + t + 1];
        &self.neighbors[lo..hi]
    }

    /// Undirected degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `u` is adjacent to `v` (binary search within the bucket).
    pub fn has_edge(&self, v: usize, u: u32, u_type: NodeTypeId) -> bool {
        self.typed_neighbors(v, u_type).binary_search(&u).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::HeteroGraph;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let d = b.add_node_type("director", 1);
        let ma = b.add_edge_type("movie-actor", m, a);
        let md = b.add_edge_type("movie-director", m, d);
        b.add_edge(ma, 0, 3);
        b.add_edge(ma, 1, 3);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 4);
        b.add_edge(md, 0, 5);
        b.add_edge(md, 2, 5);
        b.build()
    }

    #[test]
    fn typed_buckets() {
        let adj = Adjacency::build(&toy());
        assert_eq!(adj.typed_neighbors(1, 1), &[3, 4]);
        assert_eq!(adj.typed_neighbors(1, 2), &[] as &[u32]);
        assert_eq!(adj.typed_neighbors(0, 1), &[3]);
        assert_eq!(adj.typed_neighbors(0, 2), &[5]);
        assert_eq!(adj.typed_neighbors(5, 0), &[0, 2]);
    }

    #[test]
    fn neighbors_concatenate_buckets() {
        let adj = Adjacency::build(&toy());
        assert_eq!(adj.neighbors(0), &[3, 5]);
        assert_eq!(adj.degree(1), 2);
        assert_eq!(adj.degree(5), 2);
    }

    #[test]
    fn membership_queries() {
        let adj = Adjacency::build(&toy());
        assert!(adj.has_edge(0, 3, 1));
        assert!(!adj.has_edge(0, 4, 1));
        assert!(adj.has_edge(3, 0, 0));
    }
}
