//! Per-graph memoization of normalized graph operators.
//!
//! Building a normalized CSR ([`norm::sym_norm_adj`] and friends) walks
//! every edge and sorts every row. The AutoAC driver builds the *same*
//! operators repeatedly — the completion context and the GCN backbone both
//! want `Â`, and the search stage and the retraining stage each assemble a
//! fresh pipeline over one unchanged graph. [`OpCache`] makes those rebuilds
//! free: operators (plus their row-restricted forms and transposes) are
//! computed once and shared as [`Rc<Csr>`] clones.
//!
//! A cache is bound to exactly one graph at construction via
//! [`HeteroGraph::structural_fingerprint`]; every lookup re-checks the
//! fingerprint and panics on mismatch, so a cache can never silently serve
//! operators for the wrong graph. There is no invalidation — graphs are
//! immutable, so entries stay valid for the cache's lifetime. Keys store the
//! full attribute mask / row set (not hashes of them), so lookups are exact.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use autoac_tensor::Csr;

use crate::hetero::HeteroGraph;
use crate::norm;

/// Which normalized operator an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormOp {
    /// [`norm::sym_norm_adj`] — `Â`, symmetric norm with self-loops.
    SymNorm,
    /// [`norm::row_norm_adj`] — `D⁻¹A`, no self-loops.
    RowNorm,
    /// [`norm::mean_attr_agg`] — mean over attributed neighbors (masked).
    MeanAttr,
    /// [`norm::gcn_attr_agg`] — degree-normalized sum over attributed
    /// neighbors (masked).
    GcnAttr,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    op: NormOp,
    mask: Option<Vec<bool>>,
    rows: Option<Vec<u32>>,
    transposed: bool,
}

/// Memoized normalized operators for one immutable [`HeteroGraph`].
///
/// Single-threaded by design (interior mutability via [`RefCell`]), matching
/// the `Rc`-based tensor layer; kernel parallelism lives *inside* the CSR
/// kernels (`autoac_tensor::parallel`), not across cache entries.
pub struct OpCache {
    fingerprint: u64,
    entries: RefCell<HashMap<CacheKey, Rc<Csr>>>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

impl OpCache {
    /// Creates an empty cache bound to `g`'s structure.
    pub fn new(g: &HeteroGraph) -> Self {
        Self {
            fingerprint: g.structural_fingerprint(),
            entries: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The fingerprint this cache is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// `(hits, misses)` since construction. A miss that derives from a
    /// cached base (e.g. the transpose of an already-cached operator) counts
    /// one miss for the derived entry and one hit for the base.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of distinct operators currently cached.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches (building on first use) an operator variant:
    ///
    /// * `mask` — attribute mask, required for [`NormOp::MeanAttr`] /
    ///   [`NormOp::GcnAttr`], forbidden for the topology-only ops;
    /// * `rows` — if set, the operator is row-restricted
    ///   ([`Csr::restrict_rows`]) to these rows;
    /// * `transposed` — if set, the transpose of the (possibly restricted)
    ///   operator is returned.
    ///
    /// Panics if `g` does not match the graph the cache was built for.
    pub fn get(
        &self,
        g: &HeteroGraph,
        op: NormOp,
        mask: Option<&[bool]>,
        rows: Option<&[u32]>,
        transposed: bool,
    ) -> Rc<Csr> {
        assert_eq!(
            g.structural_fingerprint(),
            self.fingerprint,
            "OpCache: graph does not match the one this cache was built for"
        );
        match op {
            NormOp::SymNorm | NormOp::RowNorm => {
                assert!(mask.is_none(), "OpCache: {op:?} takes no attribute mask")
            }
            NormOp::MeanAttr | NormOp::GcnAttr => {
                assert!(mask.is_some(), "OpCache: {op:?} requires an attribute mask")
            }
        }
        self.fetch(g, op, mask, rows, transposed)
    }

    fn fetch(
        &self,
        g: &HeteroGraph,
        op: NormOp,
        mask: Option<&[bool]>,
        rows: Option<&[u32]>,
        transposed: bool,
    ) -> Rc<Csr> {
        // Â is symmetric, and the symmetric-norm weight `d_s^-1/2 d_d^-1/2`
        // is computed identically for both directions, so the unrestricted
        // transpose is bitwise the same matrix — share the entry.
        let transposed = transposed && !(op == NormOp::SymNorm && rows.is_none());
        let key = CacheKey {
            op,
            mask: mask.map(<[bool]>::to_vec),
            rows: rows.map(<[u32]>::to_vec),
            transposed,
        };
        if let Some(hit) = self.entries.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            autoac_obs::counter_add("opcache_hits", 1);
            return Rc::clone(hit);
        }
        self.misses.set(self.misses.get() + 1);
        autoac_obs::counter_add("opcache_misses", 1);
        let _obs = autoac_obs::span("opcache_build");
        let built = if transposed {
            Rc::new(self.fetch(g, op, mask, rows, false).transpose())
        } else if let Some(rows) = rows {
            Rc::new(self.fetch(g, op, mask, None, false).restrict_rows(rows))
        } else {
            Rc::new(match op {
                NormOp::SymNorm => norm::sym_norm_adj(g),
                NormOp::RowNorm => norm::row_norm_adj(g),
                NormOp::MeanAttr => norm::mean_attr_agg(g, mask.expect("mask checked in get")),
                NormOp::GcnAttr => norm::gcn_attr_agg(g, mask.expect("mask checked in get")),
            })
        };
        self.entries.borrow_mut().insert(key, Rc::clone(&built));
        built
    }

    /// Cached [`norm::sym_norm_adj`].
    pub fn sym_norm_adj(&self, g: &HeteroGraph) -> Rc<Csr> {
        self.get(g, NormOp::SymNorm, None, None, false)
    }

    /// Cached [`norm::row_norm_adj`].
    pub fn row_norm_adj(&self, g: &HeteroGraph) -> Rc<Csr> {
        self.get(g, NormOp::RowNorm, None, None, false)
    }

    /// Cached [`norm::mean_attr_agg`].
    pub fn mean_attr_agg(&self, g: &HeteroGraph, has_attr: &[bool]) -> Rc<Csr> {
        self.get(g, NormOp::MeanAttr, Some(has_attr), None, false)
    }

    /// Cached [`norm::gcn_attr_agg`].
    pub fn gcn_attr_agg(&self, g: &HeteroGraph, has_attr: &[bool]) -> Rc<Csr> {
        self.get(g, NormOp::GcnAttr, Some(has_attr), None, false)
    }
}

/// Registry of per-segment [`OpCache`]s for sharded / minibatch training.
///
/// Whole-graph training binds one `OpCache` to one immutable graph. Sharded
/// training works over many small induced subgraphs (one per shard or
/// sampled minibatch), each with its own structural fingerprint; this
/// registry keys a cache per segment fingerprint so repeated visits to the
/// same shard reuse its operators while distinct subgraphs can never collide
/// (the inner `OpCache` still re-checks its fingerprint on every get).
pub struct ShardedOpCache {
    segments: RefCell<HashMap<u64, Rc<OpCache>>>,
}

impl ShardedOpCache {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self { segments: RefCell::new(HashMap::new()) }
    }

    /// The cache for `g`'s structure, created on first use.
    pub fn for_graph(&self, g: &HeteroGraph) -> Rc<OpCache> {
        let fp = g.structural_fingerprint();
        if let Some(hit) = self.segments.borrow().get(&fp) {
            autoac_obs::counter_add("opcache_segment_hits", 1);
            return Rc::clone(hit);
        }
        autoac_obs::counter_add("opcache_segment_misses", 1);
        let cache = Rc::new(OpCache::new(g));
        self.segments.borrow_mut().insert(fp, Rc::clone(&cache));
        cache
    }

    /// Number of distinct segments seen so far.
    pub fn num_segments(&self) -> usize {
        self.segments.borrow().len()
    }

    /// Aggregated `(hits, misses)` across every segment cache.
    pub fn stats(&self) -> (usize, usize) {
        self.segments
            .borrow()
            .values()
            .fold((0, 0), |(h, m), c| {
                let (ch, cm) = c.stats();
                (h + ch, m + cm)
            })
    }
}

impl Default for ShardedOpCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (HeteroGraph, Vec<bool>) {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 3);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.add_edge(e, 2, 4);
        (b.build(), vec![true, true, true, false, false])
    }

    #[test]
    fn cached_operators_match_direct_construction() {
        let (g, has) = toy();
        let cache = OpCache::new(&g);
        assert_eq!(*cache.sym_norm_adj(&g), norm::sym_norm_adj(&g));
        assert_eq!(*cache.row_norm_adj(&g), norm::row_norm_adj(&g));
        assert_eq!(*cache.mean_attr_agg(&g, &has), norm::mean_attr_agg(&g, &has));
        assert_eq!(*cache.gcn_attr_agg(&g, &has), norm::gcn_attr_agg(&g, &has));
    }

    #[test]
    fn repeated_fetch_hits_and_shares_the_allocation() {
        let (g, _) = toy();
        let cache = OpCache::new(&g);
        let first = cache.sym_norm_adj(&g);
        let second = cache.sym_norm_adj(&g);
        assert!(Rc::ptr_eq(&first, &second), "hit must share the Rc");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn restricted_and_transposed_variants_derive_from_cached_base() {
        let (g, has) = toy();
        let cache = OpCache::new(&g);
        let rows = [3u32, 4];
        let restricted = cache.get(&g, NormOp::MeanAttr, Some(&has), Some(&rows), false);
        let want = norm::mean_attr_agg(&g, &has).restrict_rows(&rows);
        assert_eq!(*restricted, want);
        let transposed = cache.get(&g, NormOp::MeanAttr, Some(&has), Some(&rows), true);
        assert_eq!(*transposed, want.transpose());
        // Base, restricted, and restricted-transposed are three entries.
        assert_eq!(cache.len(), 3);
        // Re-fetching any of them is a pure hit.
        let before = cache.stats();
        cache.get(&g, NormOp::MeanAttr, Some(&has), Some(&rows), true);
        let after = cache.stats();
        assert_eq!(after.0, before.0 + 1);
        assert_eq!(after.1, before.1);
    }

    #[test]
    fn sym_norm_transpose_shares_the_symmetric_entry() {
        let (g, _) = toy();
        let cache = OpCache::new(&g);
        let a = cache.get(&g, NormOp::SymNorm, None, None, false);
        let at = cache.get(&g, NormOp::SymNorm, None, None, true);
        assert!(Rc::ptr_eq(&a, &at), "Â is symmetric; transpose shares the entry");
        assert_eq!(*at, a.transpose());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_graph_is_rejected() {
        let (g, _) = toy();
        let cache = OpCache::new(&g);
        let mut b = HeteroGraph::builder();
        b.add_node_type("x", 4);
        let other = b.build();
        let _ = cache.sym_norm_adj(&other);
    }

    #[test]
    #[should_panic(expected = "requires an attribute mask")]
    fn masked_op_without_mask_is_rejected() {
        let (g, _) = toy();
        let cache = OpCache::new(&g);
        let _ = cache.get(&g, NormOp::MeanAttr, None, None, false);
    }

    #[test]
    fn sharded_cache_keys_segments_by_fingerprint() {
        let (g, _) = toy();
        let mut b = HeteroGraph::builder();
        b.add_node_type("x", 4);
        let other = b.build();

        let reg = ShardedOpCache::new();
        let c1 = reg.for_graph(&g);
        let c2 = reg.for_graph(&g);
        assert!(Rc::ptr_eq(&c1, &c2), "same structure must share a segment cache");
        let c3 = reg.for_graph(&other);
        assert!(!Rc::ptr_eq(&c1, &c3), "distinct structures get distinct caches");
        assert_eq!(reg.num_segments(), 2);

        // Operators served through segment caches behave like direct ones.
        let a = c1.sym_norm_adj(&g);
        let b2 = reg.for_graph(&g).sym_norm_adj(&g);
        assert!(Rc::ptr_eq(&a, &b2));
        let (hits, misses) = reg.stats();
        assert_eq!((hits, misses), (1, 1));
    }
}
