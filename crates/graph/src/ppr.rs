//! Personalized-PageRank propagation (the PPNP completion kernel, Eq. 4).
//!
//! The paper writes PPNP in closed form with a matrix inverse,
//! `α (I − (1−α) Â)^{-1} X'`. As in APPNP we solve it by power iteration,
//! `X⁽ᵏ⁺¹⁾ = (1−α) Â X⁽ᵏ⁾ + α X'`, which converges geometrically and only
//! needs sparse products — the inverse is never materialized.

use std::rc::Rc;

use autoac_tensor::{spmm, Csr, Matrix, Tensor};

/// Differentiable K-step PPNP propagation.
///
/// `adj` must be the symmetrically normalized adjacency with self-loops
/// (spectral radius ≤ 1, so iteration converges); it is its own transpose,
/// hence a single matrix is enough for autograd.
pub fn ppnp_propagate(adj: &Rc<Csr>, x: &Tensor, alpha: f32, k: usize) -> Tensor {
    // alpha = 0 is excluded: it kills the teleport term, so the iteration no
    // longer approximates PPNP (it degenerates to plain power iteration on Â
    // and forgets the input features entirely).
    assert!(alpha > 0.0 && alpha <= 1.0, "ppnp: alpha must be in (0, 1], got {alpha}");
    assert!(k > 0, "ppnp: need at least one propagation step");
    let teleport = x.scale(alpha);
    let mut h = x.clone();
    for _ in 0..k {
        h = spmm(adj, adj, &h).scale(1.0 - alpha).add(&teleport);
    }
    h
}

/// Non-differentiable PPNP on raw matrices (dataset preprocessing, tests).
/// Same `alpha ∈ (0, 1]` contract as [`ppnp_propagate`].
pub fn ppnp_propagate_dense(adj: &Csr, x: &Matrix, alpha: f32, k: usize) -> Matrix {
    assert!(alpha > 0.0 && alpha <= 1.0, "ppnp: alpha must be in (0, 1], got {alpha}");
    let teleport = x.scale(alpha);
    let mut h = x.clone();
    for _ in 0..k {
        h = adj.matmul_dense(&h).scale(1.0 - alpha);
        h.add_assign(&teleport);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::HeteroGraph;
    use crate::norm::sym_norm_adj;

    fn chain() -> Csr {
        let mut b = HeteroGraph::builder();
        let t = b.add_node_type("n", 4);
        let e = b.add_edge_type("n-n", t, t);
        b.add_edge(e, 0, 1);
        b.add_edge(e, 1, 2);
        b.add_edge(e, 2, 3);
        sym_norm_adj(&b.build())
    }

    #[test]
    fn converges_to_fixed_point() {
        let adj = chain();
        let x = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0], &[0.0]]);
        let h64 = ppnp_propagate_dense(&adj, &x, 0.2, 64);
        let h128 = ppnp_propagate_dense(&adj, &x, 0.2, 128);
        for (a, b) in h64.data().iter().zip(h128.data()) {
            assert!((a - b).abs() < 1e-5, "not converged: {a} vs {b}");
        }
    }

    #[test]
    fn fixed_point_satisfies_ppnp_equation() {
        // h = (1-α) Â h + α x at the fixed point.
        let adj = chain();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[0.5], &[-1.0]]);
        let h = ppnp_propagate_dense(&adj, &x, 0.3, 200);
        let rhs = adj.matmul_dense(&h).scale(0.7);
        for ((hv, rv), xv) in h.data().iter().zip(rhs.data()).zip(x.data()) {
            assert!((hv - (rv + 0.3 * xv)).abs() < 1e-4);
        }
    }

    #[test]
    fn alpha_one_is_identity() {
        let adj = chain();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let h = ppnp_propagate_dense(&adj, &x, 1.0, 10);
        assert_eq!(h, x);
    }

    #[test]
    fn propagation_spreads_mass() {
        let adj = chain();
        let x = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0], &[0.0]]);
        let h = ppnp_propagate_dense(&adj, &x, 0.2, 32);
        // Mass decays with distance from the seed.
        assert!(h.get(0, 0) > h.get(1, 0));
        assert!(h.get(1, 0) > h.get(2, 0));
        assert!(h.get(2, 0) > h.get(3, 0));
        assert!(h.get(3, 0) > 0.0, "multi-hop reach");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn alpha_zero_is_rejected() {
        // Regression: alpha = 0 used to be accepted but silently degenerates
        // the teleport term — the output forgets the input features.
        let adj = Rc::new(chain());
        let x = Tensor::param(Matrix::ones(4, 1));
        let _ = ppnp_propagate(&adj, &x, 0.0, 4);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn alpha_zero_is_rejected_dense() {
        let _ = ppnp_propagate_dense(&chain(), &Matrix::ones(4, 1), 0.0, 4);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn alpha_above_one_is_rejected() {
        let _ = ppnp_propagate_dense(&chain(), &Matrix::ones(4, 1), 1.5, 4);
    }

    #[test]
    fn differentiable_version_matches_dense() {
        let adj = Rc::new(chain());
        let xm = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, 0.0], &[1.0, 1.0]]);
        let x = Tensor::param(xm.clone());
        let h = ppnp_propagate(&adj, &x, 0.25, 16);
        let dense = ppnp_propagate_dense(&adj, &xm, 0.25, 16);
        for (a, b) in h.value().data().iter().zip(dense.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        // And gradients flow.
        h.sum().backward();
        assert!(x.grad().unwrap().frob() > 0.0);
    }
}
