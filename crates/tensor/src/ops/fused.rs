//! Fused `linear + bias + activation` — one autograd node for the single
//! most common op chain in the GNN stack (`act(x·W + b)`).
//!
//! Fusing buys two things over the unfused chain:
//!
//! - **Allocation**: the bias add and the activation mutate the matmul
//!   output in place, and backward keeps one `dpre` temporary instead of a
//!   gradient buffer per intermediate node (three nodes collapse to one).
//! - **Graph overhead**: one `Rc` node, one backward closure, one
//!   topo-order entry per layer call instead of three.
//!
//! Every scalar operation and its ordering is identical to the unfused
//! `x.matmul(w).add_row_vec(b).act()` chain, so results — forward values
//! *and* accumulated gradients — are bitwise equal. The backward pass
//! re-derives the activation derivative from the **output** `y` alone
//! (`relu`: `y>0 ⟺ x>0`; `elu`: `y≤0 ⟺ x≤0` with `exp(x) = y+1`;
//! `sigmoid`/`tanh` are natively output-based), which avoids retaining the
//! pre-activation matrix.

use crate::autograd::Tensor;
use crate::matrix::Matrix;

/// Pointwise activation selector for [`Tensor::linear`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Act {
    /// No activation: plain affine `x·W + b`.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope (must be non-negative so the
    /// derivative can be recovered from the output sign).
    LeakyRelu(f32),
    /// Exponential linear unit (alpha = 1).
    Elu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Act {
    /// Applies the activation in place. Scalar formulas match the
    /// standalone ops in `ops/activation.rs` exactly.
    pub(crate) fn apply_assign(&self, m: &mut Matrix) {
        match *self {
            Act::Identity => {}
            Act::Relu => m.map_assign(|v| v.max(0.0)),
            Act::LeakyRelu(slope) => m.map_assign(move |v| if v > 0.0 { v } else { slope * v }),
            Act::Elu => m.map_assign(|v| if v > 0.0 { v } else { v.exp() - 1.0 }),
            Act::Sigmoid => m.map_assign(|v| 1.0 / (1.0 + (-v).exp())),
            Act::Tanh => m.map_assign(f32::tanh),
        }
    }

    /// `d act/d pre ∘ g`, reconstructed from the activation output `y`.
    /// Branch conditions and scalar expressions are chosen to be bitwise
    /// equivalent to the pre-activation-based formulas in
    /// `ops/activation.rs` (including NaN and `x == 0` edge cases).
    fn grad_from_output(&self, g: &Matrix, y: &Matrix) -> Matrix {
        match *self {
            Act::Identity => unreachable!("identity is short-circuited by the caller"),
            Act::Relu => g.zip_map(y, |gv, yv| if yv > 0.0 { gv } else { 0.0 }),
            Act::LeakyRelu(slope) => {
                g.zip_map(y, move |gv, yv| if yv > 0.0 { gv } else { slope * gv })
            }
            // exp(x) = y + 1 on the x ≤ 0 branch; x = 0 lands there with
            // y = 0, so the factor degenerates to exactly 1.0.
            Act::Elu => g.zip_map(y, |gv, yv| if yv > 0.0 { gv } else { gv * (yv + 1.0) }),
            Act::Sigmoid => g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv)),
            Act::Tanh => g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv)),
        }
    }
}

impl Tensor {
    /// Fused affine + activation: `act(self · w + b)` as a single autograd
    /// node. Bitwise-equivalent to the unfused
    /// `self.matmul(w).add_row_vec(b)` followed by the activation, forward
    /// and backward.
    pub fn linear(&self, w: &Tensor, b: Option<&Tensor>, act: Act) -> Tensor {
        let _op = crate::chk::op_scope("linear");
        if let Act::LeakyRelu(slope) = act {
            debug_assert!(slope >= 0.0, "linear: negative leaky slope breaks output-based grad");
        }
        let mut value = self.value().matmul(&w.value());
        if let Some(b) = b {
            value.add_row_vec_assign(&b.value());
        }
        act.apply_assign(&mut value);

        let (x, wt) = (self.clone(), w.clone());
        let bt = b.cloned();
        let (xv, wv) = (self.to_matrix(), w.to_matrix());
        // Identity needs no activation backward, so skip retaining y.
        let yv = (act != Act::Identity).then(|| value.clone());
        let mut parents = vec![self.clone(), w.clone()];
        if let Some(b) = b {
            parents.push(b.clone());
        }
        Tensor::from_op(
            value,
            parents,
            Box::new(move |g| {
                let dpre_owned;
                let dpre: &Matrix = match &yv {
                    None => g,
                    Some(y) => {
                        dpre_owned = act.grad_from_output(g, y);
                        &dpre_owned
                    }
                };
                // dX = dpre · Wᵀ ; dW = Xᵀ · dpre ; db = Σ_rows dpre
                x.accum_grad_owned(dpre.matmul_nt(&wv));
                wt.accum_grad_owned(xv.matmul_tn(dpre));
                if let Some(bt) = &bt {
                    bt.accum_grad_owned(dpre.sum_cols());
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unfused(x: &Tensor, w: &Tensor, b: Option<&Tensor>, act: Act) -> Tensor {
        let mut out = x.matmul(w);
        if let Some(b) = b {
            out = out.add_row_vec(b);
        }
        match act {
            Act::Identity => out,
            Act::Relu => out.relu(),
            Act::LeakyRelu(s) => out.leaky_relu(s),
            Act::Elu => out.elu(),
            Act::Sigmoid => out.sigmoid(),
            Act::Tanh => out.tanh(),
        }
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn fused_matches_unfused_bitwise_forward_and_backward() {
        let acts = [
            Act::Identity,
            Act::Relu,
            Act::LeakyRelu(0.05),
            Act::Elu,
            Act::Sigmoid,
            Act::Tanh,
        ];
        // Mixed signs and an exact zero pre-activation row to hit every
        // activation branch, including the x == 0 boundary.
        let xm = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 0.0], &[-0.5, 3.0]]);
        let wm = Matrix::from_rows(&[&[0.7, -1.2, 0.4], &[-0.3, 0.8, 1.5]]);
        let bm = Matrix::from_rows(&[&[0.1, -0.2, 0.0]]);
        for act in acts {
            for with_bias in [false, true] {
                let (x1, w1) = (Tensor::param(xm.clone()), Tensor::param(wm.clone()));
                let b1 = with_bias.then(|| Tensor::param(bm.clone()));
                let out1 = x1.linear(&w1, b1.as_ref(), act);
                out1.sum().backward();

                let (x2, w2) = (Tensor::param(xm.clone()), Tensor::param(wm.clone()));
                let b2 = with_bias.then(|| Tensor::param(bm.clone()));
                let out2 = unfused(&x2, &w2, b2.as_ref(), act);
                out2.sum().backward();

                let what = format!("{act:?} bias={with_bias}");
                assert_bitwise_eq(&out1.to_matrix(), &out2.to_matrix(), &what);
                assert_bitwise_eq(&x1.grad().unwrap(), &x2.grad().unwrap(), &what);
                assert_bitwise_eq(&w1.grad().unwrap(), &w2.grad().unwrap(), &what);
                if let (Some(b1), Some(b2)) = (b1, b2) {
                    assert_bitwise_eq(&b1.grad().unwrap(), &b2.grad().unwrap(), &what);
                }
            }
        }
    }

    #[test]
    fn fused_linear_is_one_graph_node() {
        // The fused op must not retain intermediate nodes: the output's
        // parents are exactly {x, w, b}.
        let x = Tensor::param(Matrix::ones(2, 2));
        let w = Tensor::param(Matrix::ones(2, 2));
        let b = Tensor::param(Matrix::ones(1, 2));
        let before = x.id().max(w.id()).max(b.id());
        let out = x.linear(&w, Some(&b), Act::Relu);
        assert_eq!(out.id(), before + 1, "exactly one node allocated");
    }
}
