//! Differentiable reductions.

use crate::autograd::Tensor;
use crate::matrix::Matrix;

impl Tensor {
    /// Sum of all elements, as a `(1,1)` tensor.
    pub fn sum(&self) -> Tensor {
        let _op = crate::chk::op_scope("sum");
        let (rows, cols) = self.shape();
        let value = Matrix::full(1, 1, self.value().sum());
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(Matrix::full(rows, cols, g.data()[0]));
            }),
        )
    }

    /// Mean of all elements, as a `(1,1)` tensor.
    pub fn mean(&self) -> Tensor {
        let (rows, cols) = self.shape();
        let n = (rows * cols).max(1) as f32;
        self.sum().scale(1.0 / n)
    }

    /// Row sums, as a `(rows, 1)` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let _op = crate::chk::op_scope("sum_rows");
        let (rows, cols) = self.shape();
        let value = self.value().sum_rows();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = Matrix::scratch(rows, cols); // every entry written
                for r in 0..rows {
                    let gv = g.get(r, 0);
                    for d in dx.row_mut(r) {
                        *d = gv;
                    }
                }
                a.accum_grad_owned(dx);
            }),
        )
    }

    /// Column sums, as a `(1, cols)` tensor.
    pub fn sum_cols(&self) -> Tensor {
        let _op = crate::chk::op_scope("sum_cols");
        let (rows, cols) = self.shape();
        let value = self.value().sum_cols();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = Matrix::scratch(rows, cols); // every entry written
                for r in 0..rows {
                    dx.row_mut(r).copy_from_slice(g.row(0));
                }
                a.accum_grad_owned(dx);
            }),
        )
    }

    /// Row means, as a `(rows, 1)` tensor.
    pub fn mean_rows(&self) -> Tensor {
        let (_, cols) = self.shape();
        self.sum_rows().scale(1.0 / cols.max(1) as f32)
    }

    /// Squared Frobenius norm, as a `(1,1)` tensor.
    pub fn frob_sq(&self) -> Tensor {
        self.square().sum()
    }

    /// Frobenius norm, as a `(1,1)` tensor.
    pub fn frob(&self) -> Tensor {
        self.frob_sq().sqrt()
    }

    /// Scalar trace of `selfᵀ · other` (the Frobenius inner product),
    /// computed without materializing the product matrix.
    pub fn frob_inner(&self, other: &Tensor) -> Tensor {
        self.mul(other).sum()
    }
}
