//! Differentiable pointwise nonlinearities and row-softmax ops.

use rand::Rng;

use crate::autograd::Tensor;
use crate::matrix::Matrix;

impl Tensor {
    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let _op = crate::chk::op_scope("relu");
        let x = self.to_matrix();
        let value = x.map(|v| v.max(0.0));
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.zip_map(&x, |gv, xv| if xv > 0.0 { gv } else { 0.0 }));
            }),
        )
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        let _op = crate::chk::op_scope("leaky_relu");
        let x = self.to_matrix();
        let value = x.map(|v| if v > 0.0 { v } else { slope * v });
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.zip_map(&x, |gv, xv| if xv > 0.0 { gv } else { slope * gv }));
            }),
        )
    }

    /// Exponential linear unit (alpha = 1).
    pub fn elu(&self) -> Tensor {
        let _op = crate::chk::op_scope("elu");
        let x = self.to_matrix();
        let value = x.map(|v| if v > 0.0 { v } else { v.exp() - 1.0 });
        let y = value.clone();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                // d/dx elu = 1 for x>0, exp(x) = y+1 otherwise.
                let mut dg = g.clone();
                for ((d, &xv), &yv) in dg.data_mut().iter_mut().zip(x.data()).zip(y.data()) {
                    if xv <= 0.0 {
                        *d *= yv + 1.0;
                    }
                }
                a.accum_grad_owned(dg);
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let _op = crate::chk::op_scope("sigmoid");
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let y = value.clone();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.zip_map(&y, |gv, yv| gv * yv * (1.0 - yv)));
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let _op = crate::chk::op_scope("tanh");
        let value = self.value().map(f32::tanh);
        let y = value.clone();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.zip_map(&y, |gv, yv| gv * (1.0 - yv * yv)));
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        let _op = crate::chk::op_scope("exp");
        let value = self.value().map(f32::exp);
        let y = value.clone();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad_owned(g.mul(&y))),
        )
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        let _op = crate::chk::op_scope("ln");
        let x = self.to_matrix();
        let value = x.map(f32::ln);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad_owned(g.zip_map(&x, |gv, xv| gv / xv))),
        )
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        let _op = crate::chk::op_scope("sqrt");
        let value = self.value().map(f32::sqrt);
        let y = value.clone();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.zip_map(&y, |gv, yv| gv * 0.5 / yv.max(1e-12)));
            }),
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        let _op = crate::chk::op_scope("square");
        let x = self.to_matrix();
        let value = x.map(|v| v * v);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad_owned(g.zip_map(&x, |gv, xv| gv * 2.0 * xv))),
        )
    }

    /// Inverted-scale dropout. A no-op when `training` is false or `p == 0`.
    pub fn dropout(&self, p: f32, training: bool, rng: &mut impl Rng) -> Tensor {
        let _op = crate::chk::op_scope("dropout");
        assert!((0.0..1.0).contains(&p), "dropout: p must be in [0, 1)");
        if !training || p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let (rows, cols) = self.shape();
        let mut mask = Matrix::zeros(rows, cols);
        for m in mask.data_mut() {
            if rng.gen::<f32>() >= p {
                *m = 1.0 / keep;
            }
        }
        let value = self.value().mul(&mask);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad_owned(g.mul(&mask))),
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let _op = crate::chk::op_scope("softmax_rows");
        let value = self.value().softmax_rows();
        let y = value.clone();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                // dx_r = y_r ∘ (g_r − ⟨g_r, y_r⟩)
                let mut dx = g.clone();
                for r in 0..dx.rows() {
                    let yr = y.row(r);
                    let inner: f32 = dx.row(r).iter().zip(yr).map(|(gv, yv)| gv * yv).sum();
                    for (d, &yv) in dx.row_mut(r).iter_mut().zip(yr) {
                        *d = yv * (*d - inner);
                    }
                }
                a.accum_grad_owned(dx);
            }),
        )
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Tensor {
        let _op = crate::chk::op_scope("log_softmax_rows");
        let value = self.value().log_softmax_rows();
        let softmax = value.map(f32::exp);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                // dx_r = g_r − softmax_r · Σ g_r
                let mut dx = g.clone();
                for r in 0..dx.rows() {
                    let gsum: f32 = dx.row(r).iter().sum();
                    for (d, &sv) in dx.row_mut(r).iter_mut().zip(softmax.row(r)) {
                        *d -= sv * gsum;
                    }
                }
                a.accum_grad_owned(dx);
            }),
        )
    }
}
