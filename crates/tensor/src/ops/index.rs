//! Differentiable row-indexing ops: gather / scatter-add / embedding lookup
//! and grouped (per-destination) softmax — the primitives behind all
//! message-passing and attention layers in the GNN stack.

use std::rc::Rc;

use crate::autograd::Tensor;
use crate::matrix::Matrix;

impl Tensor {
    /// Gathers rows by index: `out[i] = self[idx[i]]`. Duplicate indices are
    /// allowed; gradients scatter-add back.
    pub fn gather_rows(&self, idx: &[u32]) -> Tensor {
        let _op = crate::chk::op_scope("gather_rows");
        let (rows, _) = self.shape();
        let value = self.value().gather_rows(idx);
        let a = self.clone();
        let idx: Rc<[u32]> = idx.into();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.scatter_add_rows(&idx, rows));
            }),
        )
    }

    /// Scatter-adds rows by index into a `(num_out, cols)` tensor:
    /// `out[idx[i]] += self[i]`. The adjoint of [`Tensor::gather_rows`].
    pub fn scatter_add_rows(&self, idx: &[u32], num_out: usize) -> Tensor {
        let _op = crate::chk::op_scope("scatter_add_rows");
        let value = self.value().scatter_add_rows(idx, num_out);
        let a = self.clone();
        let idx: Rc<[u32]> = idx.into();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.gather_rows(&idx));
            }),
        )
    }

    /// Mean-aggregates rows into groups: `out[k] = mean of self rows with
    /// idx == k` (zero row for empty groups).
    pub fn segment_mean(&self, idx: &[u32], num_out: usize) -> Tensor {
        let mut counts = vec![0.0f32; num_out];
        for &i in idx {
            counts[i as usize] += 1.0;
        }
        let mut inv = Matrix::scratch(num_out, 1); // every entry written below
        for (o, &c) in inv.data_mut().iter_mut().zip(&counts) {
            *o = if c > 0.0 { 1.0 / c } else { 0.0 };
        }
        let summed = self.scatter_add_rows(idx, num_out);
        summed.mul_col_vec(&Tensor::constant(inv))
    }

    /// Grouped softmax over a `(E, 1)` score column: scores sharing the same
    /// `group[i]` are softmax-normalized together. This is the edge-softmax
    /// used by attention GNNs (groups = destination nodes).
    pub fn group_softmax(&self, group: &[u32], num_groups: usize) -> Tensor {
        let _op = crate::chk::op_scope("group_softmax");
        let (rows, cols) = self.shape();
        assert_eq!(cols, 1, "group_softmax: expected an (E, 1) score column");
        assert_eq!(rows, group.len(), "group_softmax: group length mismatch");
        let x = self.to_matrix();
        // Numerically stable per-group softmax: subtract per-group max.
        let mut gmax = vec![f32::NEG_INFINITY; num_groups];
        for (i, &gid) in group.iter().enumerate() {
            let gid = gid as usize;
            gmax[gid] = gmax[gid].max(x.data()[i]);
        }
        let mut out = Matrix::scratch(rows, 1); // every entry written below
        let mut gsum = vec![0.0f32; num_groups];
        for (i, &gid) in group.iter().enumerate() {
            let gid = gid as usize;
            let e = (x.data()[i] - gmax[gid]).exp();
            out.data_mut()[i] = e;
            gsum[gid] += e;
        }
        for (i, &gid) in group.iter().enumerate() {
            let s = gsum[gid as usize];
            if s > 0.0 {
                out.data_mut()[i] /= s;
            }
        }
        let y = out.clone();
        let a = self.clone();
        let group: Rc<[u32]> = group.into();
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                // Within each group: dx_i = y_i (g_i − Σ_j y_j g_j).
                let mut inner = vec![0.0f32; num_groups];
                for (i, &gid) in group.iter().enumerate() {
                    inner[gid as usize] += y.data()[i] * g.data()[i];
                }
                let mut dx = Matrix::scratch(y.rows(), 1); // every entry written
                for (i, &gid) in group.iter().enumerate() {
                    dx.data_mut()[i] = y.data()[i] * (g.data()[i] - inner[gid as usize]);
                }
                a.accum_grad_owned(dx);
            }),
        )
    }
}
