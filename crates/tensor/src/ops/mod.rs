//! Differentiable op implementations on [`crate::Tensor`], grouped by kind.

mod activation;
mod arith;
mod fused;
mod index;
mod loss;
pub(crate) mod microkernel;
mod reduce;

pub use fused::Act;
