//! Differentiable op implementations on [`crate::Tensor`], grouped by kind.

mod activation;
mod arith;
mod index;
mod loss;
mod reduce;
