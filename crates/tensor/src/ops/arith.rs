//! Differentiable arithmetic and linear-algebra ops.
//!
//! Backward closures hand their gradient temporaries to
//! `accum_grad_owned`: the buffer is moved into the parent's empty gradient
//! slot (no clone) or scattered in place, so every per-op gradient
//! allocation recycles through the pool.

use crate::autograd::Tensor;
use crate::matrix::Matrix;

impl Tensor {
    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("add");
        let value = self.value().add(&other.value());
        let (a, b) = (self.clone(), other.clone());
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad(g);
                b.accum_grad(g);
            }),
        )
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("sub");
        let value = self.value().sub(&other.value());
        let (a, b) = (self.clone(), other.clone());
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad(g);
                b.accum_grad_owned(g.scale(-1.0));
            }),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("mul");
        let value = self.value().mul(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let (av, bv) = (self.to_matrix(), other.to_matrix());
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.mul(&bv));
                b.accum_grad_owned(g.mul(&av));
            }),
        )
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        let _op = crate::chk::op_scope("scale");
        let value = self.value().scale(s);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad_owned(g.scale(s))),
        )
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        self.scale(-1.0)
    }

    /// Adds a scalar offset to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let _op = crate::chk::op_scope("add_scalar");
        let value = self.value().map(|v| v + s);
        let a = self.clone();
        Tensor::from_op(value, vec![self.clone()], Box::new(move |g| a.accum_grad(g)))
    }

    /// Multiplies every element by a trainable `(1,1)` scalar tensor.
    pub fn mul_scalar_tensor(&self, s: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("mul_scalar_tensor");
        assert_eq!(s.shape(), (1, 1), "mul_scalar_tensor: scalar must be (1,1)");
        let sv = s.item();
        let value = self.value().scale(sv);
        let (a, b) = (self.clone(), s.clone());
        let av = self.to_matrix();
        Tensor::from_op(
            value,
            vec![self.clone(), s.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.scale(sv));
                let ds = g.mul(&av).sum();
                b.accum_grad_owned(Matrix::full(1, 1, ds));
            }),
        )
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("matmul");
        let value = self.value().matmul(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let (av, bv) = (self.to_matrix(), other.to_matrix());
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                // dA = g · Bᵀ ; dB = Aᵀ · g
                a.accum_grad_owned(g.matmul_nt(&bv));
                b.accum_grad_owned(av.matmul_tn(g));
            }),
        )
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let _op = crate::chk::op_scope("transpose");
        let value = self.value().transpose();
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| a.accum_grad_owned(g.transpose())),
        )
    }

    /// Adds a `(1, cols)` bias row to every row.
    pub fn add_row_vec(&self, bias: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("add_row_vec");
        let value = self.value().add_row_vec(&bias.value());
        let (a, b) = (self.clone(), bias.clone());
        Tensor::from_op(
            value,
            vec![self.clone(), bias.clone()],
            Box::new(move |g| {
                a.accum_grad(g);
                b.accum_grad_owned(g.sum_cols());
            }),
        )
    }

    /// Multiplies each row by the matching entry of a `(rows, 1)` column
    /// vector (per-row scaling, e.g. attention weights applied to messages).
    pub fn mul_col_vec(&self, col: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("mul_col_vec");
        let value = self.value().mul_col_vec(&col.value());
        let (a, b) = (self.clone(), col.clone());
        let (av, bv) = (self.to_matrix(), col.to_matrix());
        Tensor::from_op(
            value,
            vec![self.clone(), col.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(g.mul_col_vec(&bv));
                b.accum_grad_owned(g.rowwise_dot(&av));
            }),
        )
    }

    /// Per-row dot product with another same-shape tensor, as `(rows, 1)`.
    pub fn rowwise_dot(&self, other: &Tensor) -> Tensor {
        let _op = crate::chk::op_scope("rowwise_dot");
        let value = self.value().rowwise_dot(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let (av, bv) = (self.to_matrix(), other.to_matrix());
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                a.accum_grad_owned(bv.mul_col_vec(g));
                b.accum_grad_owned(av.mul_col_vec(g));
            }),
        )
    }

    /// Horizontal concatenation.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        let _op = crate::chk::op_scope("concat_cols");
        let values: Vec<Matrix> = parts.iter().map(|p| p.to_matrix()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let value = Matrix::concat_cols(&refs);
        let owned: Vec<Tensor> = parts.iter().map(|&p| p.clone()).collect();
        let widths: Vec<usize> = values.iter().map(|v| v.cols()).collect();
        let captured = owned.clone();
        Tensor::from_op(
            value,
            owned,
            Box::new(move |g| {
                let mut off = 0;
                for (p, &w) in captured.iter().zip(&widths) {
                    p.accum_grad_owned(g.slice_cols(off, w));
                    off += w;
                }
            }),
        )
    }

    /// Vertical concatenation.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        let _op = crate::chk::op_scope("concat_rows");
        let values: Vec<Matrix> = parts.iter().map(|p| p.to_matrix()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let value = Matrix::concat_rows(&refs);
        let owned: Vec<Tensor> = parts.iter().map(|&p| p.clone()).collect();
        let heights: Vec<usize> = values.iter().map(|v| v.rows()).collect();
        let captured = owned.clone();
        Tensor::from_op(
            value,
            owned,
            Box::new(move |g| {
                let mut off = 0;
                for (p, &h) in captured.iter().zip(&heights) {
                    let cols = g.cols();
                    let block =
                        Matrix::from_slice(h, cols, &g.data()[off * cols..(off + h) * cols]);
                    p.accum_grad_owned(block);
                    off += h;
                }
            }),
        )
    }

    /// Extracts the column block `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        let _op = crate::chk::op_scope("slice_cols");
        let value = self.value().slice_cols(start, len);
        let a = self.clone();
        let (rows, cols) = self.shape();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                let mut padded = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    padded.row_mut(r)[start..start + len].copy_from_slice(g.row(r));
                }
                a.accum_grad_owned(padded);
            }),
        )
    }
}
