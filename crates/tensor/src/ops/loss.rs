//! Differentiable loss functions.

use std::rc::Rc;

use crate::autograd::Tensor;
use crate::matrix::Matrix;

impl Tensor {
    /// Negative log-likelihood over a subset of rows of a `(N, C)`
    /// log-probability matrix (the output of [`Tensor::log_softmax_rows`]).
    ///
    /// `targets[i]` is the class of node `i` (length `N`); `rows` selects
    /// which nodes contribute (e.g. the training split). Returns the mean
    /// NLL as a `(1,1)` tensor.
    pub fn nll_loss_rows(&self, targets: &[u32], rows: &[u32]) -> Tensor {
        let _op = crate::chk::op_scope("nll_loss_rows");
        let (n, c) = self.shape();
        assert_eq!(targets.len(), n, "nll_loss_rows: target length mismatch");
        assert!(!rows.is_empty(), "nll_loss_rows: empty row subset");
        let logp = self.value();
        let inv = 1.0 / rows.len() as f32;
        let mut loss = 0.0;
        for &r in rows {
            let r = r as usize;
            let t = targets[r] as usize;
            debug_assert!(t < c, "nll_loss_rows: target {t} out of range");
            loss -= logp.get(r, t);
        }
        drop(logp);
        let a = self.clone();
        let targets: Rc<[u32]> = targets.into();
        let rows: Rc<[u32]> = rows.into();
        Tensor::from_op(
            Matrix::full(1, 1, loss * inv),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.data()[0] * inv;
                let mut dx = Matrix::zeros(n, c);
                for &r in rows.iter() {
                    let r = r as usize;
                    dx.set(r, targets[r] as usize, -scale);
                }
                a.accum_grad_owned(dx);
            }),
        )
    }

    /// Cross-entropy with logits over row subset: `log_softmax` + NLL.
    pub fn cross_entropy_rows(&self, targets: &[u32], rows: &[u32]) -> Tensor {
        self.log_softmax_rows().nll_loss_rows(targets, rows)
    }

    /// Binary cross-entropy with logits for an `(E, 1)` score column against
    /// `{0, 1}` labels. Numerically stable formulation; returns the mean.
    pub fn bce_with_logits(&self, labels: &[f32]) -> Tensor {
        let _op = crate::chk::op_scope("bce_with_logits");
        let (e, c) = self.shape();
        assert_eq!(c, 1, "bce_with_logits: expected an (E, 1) logit column");
        assert_eq!(labels.len(), e, "bce_with_logits: label length mismatch");
        assert!(e > 0, "bce_with_logits: empty input");
        let z = self.to_matrix();
        let inv = 1.0 / e as f32;
        let mut loss = 0.0;
        for (zi, &y) in z.data().iter().zip(labels) {
            // max(z, 0) − z·y + ln(1 + e^{−|z|})
            loss += zi.max(0.0) - zi * y + (1.0 + (-zi.abs()).exp()).ln();
        }
        let a = self.clone();
        let labels: Rc<[f32]> = labels.into();
        Tensor::from_op(
            Matrix::full(1, 1, loss * inv),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.data()[0] * inv;
                let mut dx = Matrix::scratch(z.rows(), 1); // every entry written
                for ((d, zi), &y) in dx.data_mut().iter_mut().zip(z.data()).zip(labels.iter()) {
                    let sig = 1.0 / (1.0 + (-zi).exp());
                    *d = scale * (sig - y);
                }
                a.accum_grad_owned(dx);
            }),
        )
    }

    /// Multi-label binary cross-entropy with logits over a row subset of an
    /// `(N, C)` logit matrix against a `{0,1}` target matrix of the same
    /// shape. Returns the mean over `rows × C` entries.
    pub fn multilabel_bce_rows(&self, targets: &Matrix, rows: &[u32]) -> Tensor {
        let _op = crate::chk::op_scope("multilabel_bce_rows");
        let (n, c) = self.shape();
        assert_eq!(targets.shape(), (n, c), "multilabel_bce_rows: target shape mismatch");
        assert!(!rows.is_empty(), "multilabel_bce_rows: empty row subset");
        let z = self.to_matrix();
        let inv = 1.0 / (rows.len() * c) as f32;
        let mut loss = 0.0;
        for &r in rows {
            let r = r as usize;
            for (zi, &y) in z.row(r).iter().zip(targets.row(r)) {
                loss += zi.max(0.0) - zi * y + (1.0 + (-zi.abs()).exp()).ln();
            }
        }
        let a = self.clone();
        let targets = targets.clone();
        let rows: Rc<[u32]> = rows.into();
        Tensor::from_op(
            Matrix::full(1, 1, loss * inv),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.data()[0] * inv;
                let mut dx = Matrix::zeros(n, c);
                for &r in rows.iter() {
                    let r = r as usize;
                    for ((d, zi), &y) in
                        dx.row_mut(r).iter_mut().zip(z.row(r)).zip(targets.row(r))
                    {
                        let sig = 1.0 / (1.0 + (-zi).exp());
                        *d = scale * (sig - y);
                    }
                }
                a.accum_grad_owned(dx);
            }),
        )
    }

    /// Mean squared error against a constant target of the same shape.
    pub fn mse(&self, target: &Matrix) -> Tensor {
        assert_eq!(self.shape(), target.shape(), "mse: shape mismatch");
        let diff = self.sub(&Tensor::constant(target.clone()));
        diff.square().mean()
    }
}
