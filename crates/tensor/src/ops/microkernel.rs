//! Register-blocked microkernels for the dense/sparse matmul family.
//!
//! Each public kernel here exists in two variants sharing one contract:
//!
//! - `*_scalar` — the original streaming loops, kept verbatim as the
//!   reference implementation.
//! - `*_blocked` — register-blocked versions (MR×NR output tiles held in
//!   local `[f32; NR]` accumulators) that compute **the same floating-point
//!   operations in the same order per output element** and are therefore
//!   bitwise equal to the scalar variant.
//!
//! # Why blocking is bitwise-safe here
//!
//! Every output element of every kernel in this family is a sum
//! `Σ_p a_p · b_p` accumulated left to right in ascending `p` (for CSR, in
//! nonzero storage order). f32 addition is not associative, so the *order*
//! of those adds is the contract — but *where* the partial sum lives is
//! not: Rust lowers `f32` arithmetic to strict IEEE-754 single precision
//! (no FMA contraction, no x87 excess precision on any supported target),
//! so a partial sum round-trips through a register, the stack, or the
//! output buffer without changing a single bit. The blocked kernels
//! therefore reorganize only:
//!
//! - **which registers hold partial sums** (an NR-wide column panel of
//!   accumulators instead of read-modify-writing the output row through
//!   memory once per `p`), and
//! - **how many rows share one pass over `b`** (an MR-row tile reuses each
//!   loaded `b` lane for MR independent accumulator chains),
//!
//! while keeping, per output element, the exact scalar sequence: ascending
//! `p`, the same `a == 0.0` skip (dropping the skip would *not* be bitwise
//! neutral: `0.0 * -x` flips the sign of a `-0.0` partial sum and
//! `0.0 * ±inf` is NaN), and plain `mul` + `add` (never `mul_add`).
//!
//! The practical speedup comes from breaking the single latency-bound
//! dependency chain per element: MR×NR independent chains keep the FPU
//! pipeline full, and the panel accumulators eliminate one output-row load
//! and store per `p` iteration.
//!
//! # Chunk interface
//!
//! Kernels operate on a row-aligned output chunk handed out by
//! [`crate::parallel::for_each_row_chunk`] — `(first_row, chunk)` with
//! `chunk.len() == rows * n`. Row grouping into MR-tiles restarts at every
//! chunk boundary; since tiling only affects *sharing of loads*, never the
//! per-element add order, results are bitwise equal for any thread count,
//! matching the guarantee documented in [`crate::parallel`].
//!
//! `zeroed` mirrors [`crate::matrix::Matrix::accum_scratch`]: scalar
//! variants accumulate in place and must clear recycled rows first. Most
//! blocked variants overwrite every element exactly once from their
//! accumulators and ignore the flag; [`matmul_tn_blocked`] accumulates in
//! place (its partial sums round-trip through the output buffer, which is
//! bit-exact per the argument above) and clears the chunk itself when
//! handed unzeroed scratch.

/// Column-panel width: one panel of NR accumulators lives in registers.
pub(crate) const NR: usize = 8;

/// Row-tile height: MR output rows share each streamed `b` panel load.
pub(crate) const MR: usize = 4;

/// k-slab depth for [`matmul_blocked`]: bounds the `b` sub-panel working
/// set to `KC × NR` floats (8 KiB) so it stays L1-resident while every
/// row tile of the chunk streams through it.
pub(crate) const KC: usize = 256;

/// Wide-panel width for [`matmul_blocked`]'s main pass: 32 columns (four
/// 8-lane vectors) per row halves the per-flop branch and loop overhead
/// relative to the NR tile while still fitting the accumulators plus a
/// `b` panel in the register file at [`MR2`] rows.
pub(crate) const NRW: usize = 32;

/// Row-tile height for the wide pass.
pub(crate) const MR2: usize = 2;

// ---------------------------------------------------------------------
// matmul: C[m×n] = A[m×k] · B[k×n]
// ---------------------------------------------------------------------

/// Reference kernel for [`crate::Matrix::matmul`]: ikj loop order, inner
/// loop streaming contiguously over the `b` row and the output row.
pub(crate) fn matmul_scalar(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    zeroed: bool,
) {
    for (i, out_row) in chunk.chunks_mut(n).enumerate() {
        if !zeroed {
            out_row.fill(0.0);
        }
        let row = first_row + i;
        let a_row = &a[row * k..(row + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Register-blocked [`crate::Matrix::matmul`] kernel: MR×NR output tiles,
/// ascending-`p` accumulation, bitwise equal to [`matmul_scalar`].
///
/// Column panels are the *outer* loop so one `b` panel (`k × NR` values,
/// strided but cache-resident) is reused by every row tile of the chunk
/// before moving on — the loop interchange that makes large-`k` shapes
/// win. Writing output panel-major instead of row-major touches the same
/// disjoint elements; per-element order is unaffected.
pub(crate) fn matmul_blocked(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    _zeroed: bool,
) {
    let rows = if n == 0 { 0 } else { chunk.len() / n };
    if k == 0 {
        // No adds at all: match the scalar kernel's cleared output.
        chunk.fill(0.0);
        return;
    }
    let a = &a[first_row * k..(first_row + rows) * k];
    let mut j = 0;
    // Wide pass: MR2 × NRW tiles. Each `a` element loaded feeds 32
    // outputs and each `p` iteration costs two branches instead of the
    // NR tile's four, so this pass dominates whenever n ≥ 32.
    while j + NRW <= n {
        // k-blocking: each KC slab keeps its `b` sub-panel cache-resident
        // across every row tile of the chunk. Partial sums park in the
        // output between slabs and are reloaded bit-exactly; per element
        // the adds still run p = 0..k ascending.
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + KC).min(k);
            let mut i = 0;
            while i + MR2 <= rows {
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let mut acc0 = [0.0f32; NRW];
                let mut acc1 = [0.0f32; NRW];
                if p0 > 0 {
                    acc0.copy_from_slice(&chunk[i * n + j..i * n + j + NRW]);
                    acc1.copy_from_slice(&chunk[(i + 1) * n + j..(i + 1) * n + j + NRW]);
                }
                for p in p0..p1 {
                    let bp = &b[p * n + j..p * n + j + NRW];
                    let (v0, v1) = (a0[p], a1[p]);
                    if v0 != 0.0 {
                        for l in 0..NRW {
                            acc0[l] += v0 * bp[l];
                        }
                    }
                    if v1 != 0.0 {
                        for l in 0..NRW {
                            acc1[l] += v1 * bp[l];
                        }
                    }
                }
                chunk[i * n + j..i * n + j + NRW].copy_from_slice(&acc0);
                chunk[(i + 1) * n + j..(i + 1) * n + j + NRW].copy_from_slice(&acc1);
                i += MR2;
            }
            // Remainder row, same per-element order.
            while i < rows {
                let a_row = &a[i * k..(i + 1) * k];
                let mut acc = [0.0f32; NRW];
                if p0 > 0 {
                    acc.copy_from_slice(&chunk[i * n + j..i * n + j + NRW]);
                }
                for p in p0..p1 {
                    let av = a_row[p];
                    if av == 0.0 {
                        continue;
                    }
                    let bp = &b[p * n + j..p * n + j + NRW];
                    for l in 0..NRW {
                        acc[l] += av * bp[l];
                    }
                }
                chunk[i * n + j..i * n + j + NRW].copy_from_slice(&acc);
                i += 1;
            }
            p0 = p1;
        }
        j += NRW;
    }
    // Narrow pass: NR-wide MR-row tiles cover the remaining columns.
    while j + NR <= n {
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + KC).min(k);
            let mut i = 0;
            while i + MR <= rows {
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let mut acc0 = [0.0f32; NR];
                let mut acc1 = [0.0f32; NR];
                let mut acc2 = [0.0f32; NR];
                let mut acc3 = [0.0f32; NR];
                if p0 > 0 {
                    acc0.copy_from_slice(&chunk[i * n + j..i * n + j + NR]);
                    acc1.copy_from_slice(&chunk[(i + 1) * n + j..(i + 1) * n + j + NR]);
                    acc2.copy_from_slice(&chunk[(i + 2) * n + j..(i + 2) * n + j + NR]);
                    acc3.copy_from_slice(&chunk[(i + 3) * n + j..(i + 3) * n + j + NR]);
                }
                for p in p0..p1 {
                    let bp = &b[p * n + j..p * n + j + NR];
                    let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                    if v0 != 0.0 {
                        for l in 0..NR {
                            acc0[l] += v0 * bp[l];
                        }
                    }
                    if v1 != 0.0 {
                        for l in 0..NR {
                            acc1[l] += v1 * bp[l];
                        }
                    }
                    if v2 != 0.0 {
                        for l in 0..NR {
                            acc2[l] += v2 * bp[l];
                        }
                    }
                    if v3 != 0.0 {
                        for l in 0..NR {
                            acc3[l] += v3 * bp[l];
                        }
                    }
                }
                chunk[i * n + j..i * n + j + NR].copy_from_slice(&acc0);
                chunk[(i + 1) * n + j..(i + 1) * n + j + NR].copy_from_slice(&acc1);
                chunk[(i + 2) * n + j..(i + 2) * n + j + NR].copy_from_slice(&acc2);
                chunk[(i + 3) * n + j..(i + 3) * n + j + NR].copy_from_slice(&acc3);
                i += MR;
            }
            // Remainder rows (< MR): single-row panels, same order.
            while i < rows {
                let a_row = &a[i * k..(i + 1) * k];
                let mut acc = [0.0f32; NR];
                if p0 > 0 {
                    acc.copy_from_slice(&chunk[i * n + j..i * n + j + NR]);
                }
                for p in p0..p1 {
                    let av = a_row[p];
                    if av == 0.0 {
                        continue;
                    }
                    let bp = &b[p * n + j..p * n + j + NR];
                    for l in 0..NR {
                        acc[l] += av * bp[l];
                    }
                }
                chunk[i * n + j..i * n + j + NR].copy_from_slice(&acc);
                i += 1;
            }
            p0 = p1;
        }
        j += NR;
    }
    if j < n {
        // Column tail (`n % NR` trailing columns): per-row partial
        // accumulator panels, identical add order.
        let t = n - j;
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let mut acc = [0.0f32; NR];
            for p in 0..k {
                let av = a_row[p];
                if av == 0.0 {
                    continue;
                }
                let bp = &b[p * n + j..p * n + j + t];
                for l in 0..t {
                    acc[l] += av * bp[l];
                }
            }
            chunk[i * n + j..i * n + j + t].copy_from_slice(&acc[..t]);
        }
    }
}

// ---------------------------------------------------------------------
// matmul_tn: C[m×n] = Aᵀ[m×k] · B[k×n], with A stored k×m
// ---------------------------------------------------------------------

/// Reference kernel for [`crate::Matrix::matmul_tn`]: ascending-`p`
/// accumulation with a strided `a` read (`a[p·m + i]`).
pub(crate) fn matmul_tn_scalar(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    zeroed: bool,
) {
    for (i_off, out_row) in chunk.chunks_mut(n).enumerate() {
        if !zeroed {
            out_row.fill(0.0);
        }
        let i = first_row + i_off;
        for p in 0..k {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Loop-interchanged [`crate::Matrix::matmul_tn`] kernel. `a` is stored
/// k×m, so the chunk's slice of any stored row `p` — `a[p·m + first_row
/// ..]` — is *contiguous*: iterating `p` outermost streams `a` exactly
/// once in its natural layout (the scalar kernel's strided `a[p·m + i]`
/// walk is what made it slow at large `k`) and reads each `b` row once
/// total instead of once per output row. Output rows are accumulated in
/// place; each element still receives its adds in ascending-`p` order
/// with the same zero skip, and f32 partial sums round-trip through
/// memory bit-exactly, so this is bitwise equal to [`matmul_tn_scalar`].
pub(crate) fn matmul_tn_blocked(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    zeroed: bool,
) {
    let rows = if n == 0 { 0 } else { chunk.len() / n };
    if !zeroed {
        chunk.fill(0.0);
    }
    for p in 0..k {
        let a_strip = &a[p * m + first_row..p * m + first_row + rows];
        let b_row = &b[p * n..(p + 1) * n];
        for (r, &av) in a_strip.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out = &mut chunk[r * n..(r + 1) * n];
            for (o, &bv) in out.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------
// matmul_nt: C[m×n] = A[m×k] · Bᵀ[k×n], with B stored n×k
// ---------------------------------------------------------------------

/// Reference kernel for [`crate::Matrix::matmul_nt`]: each output element
/// is an independent sequential dot product ([`crate::dot`]).
pub(crate) fn matmul_nt_scalar(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
) {
    for (i_off, out_row) in chunk.chunks_mut(n).enumerate() {
        let i = first_row + i_off;
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *o = crate::matrix::dot(a_row, b_row);
        }
    }
}

/// Register-blocked [`crate::Matrix::matmul_nt`] kernel: MR adjacent
/// output columns (rows of the stored `b`) accumulate simultaneously,
/// sharing one stream over `a_row` while each dot keeps the scalar's
/// sequential `((0 + a₀b₀) + a₁b₁) + …` chain. Breaking the single
/// latency-bound chain into MR independent ones is the entire speedup.
/// Bitwise equal to [`matmul_nt_scalar`].
pub(crate) fn matmul_nt_blocked(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
) {
    for (i_off, out_row) in chunk.chunks_mut(n).enumerate() {
        let i = first_row + i_off;
        let a_row = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + MR <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            // `dot` is `Iterator::sum`, whose f32 identity is -0.0 (the
            // true additive identity: x + -0.0 == x bitwise for every x,
            // while +0.0 + -0.0 == +0.0). Start the chains the same way.
            let (mut s0, mut s1, mut s2, mut s3) = (-0.0f32, -0.0f32, -0.0f32, -0.0f32);
            for p in 0..k {
                let av = a_row[p];
                s0 += av * b0[p];
                s1 += av * b1[p];
                s2 += av * b2[p];
                s3 += av * b3[p];
            }
            out_row[j] = s0;
            out_row[j + 1] = s1;
            out_row[j + 2] = s2;
            out_row[j + 3] = s3;
            j += MR;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = &b[jj * k..(jj + 1) * k];
            *o = crate::matrix::dot(a_row, b_row);
        }
    }
}

// ---------------------------------------------------------------------
// spmm: C[m×n] = A_csr[m×k] · X[k×n]
// ---------------------------------------------------------------------

/// Reference kernel for [`crate::Csr::matmul_dense`]: per output row,
/// accumulate each stored nonzero (CSR order) into the full output row.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmm_scalar(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    zeroed: bool,
) {
    for (i, out_row) in chunk.chunks_mut(n).enumerate() {
        if !zeroed {
            out_row.fill(0.0);
        }
        let r = first_row + i;
        for (c, v) in indices[indptr[r]..indptr[r + 1]]
            .iter()
            .zip(&values[indptr[r]..indptr[r + 1]])
        {
            let x_row = &x[*c as usize * n..(*c as usize + 1) * n];
            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                *o += v * xv;
            }
        }
    }
}

/// Register-blocked [`crate::Csr::matmul_dense`] kernel: NR-column panels
/// accumulate a row's nonzeros (in CSR storage order) in registers instead
/// of read-modify-writing the output row once per nonzero. Rows are not
/// tiled — CSR rows have ragged nonzero counts. Bitwise equal to
/// [`spmm_scalar`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmm_blocked(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
    n: usize,
    first_row: usize,
    chunk: &mut [f32],
    _zeroed: bool,
) {
    for (i, out_row) in chunk.chunks_mut(n).enumerate() {
        let r = first_row + i;
        let cols = &indices[indptr[r]..indptr[r + 1]];
        let vals = &values[indptr[r]..indptr[r + 1]];
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [0.0f32; NR];
            for (c, &v) in cols.iter().zip(vals) {
                let xp = &x[*c as usize * n + j..*c as usize * n + j + NR];
                for l in 0..NR {
                    acc[l] += v * xp[l];
                }
            }
            out_row[j..j + NR].copy_from_slice(&acc);
            j += NR;
        }
        if j < n {
            let t = n - j;
            let mut acc = [0.0f32; NR];
            for (c, &v) in cols.iter().zip(vals) {
                let xp = &x[*c as usize * n + j..*c as usize * n + j + t];
                for l in 0..t {
                    acc[l] += v * xp[l];
                }
            }
            out_row[j..j + t].copy_from_slice(&acc[..t]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bitwise(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: len");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    /// Deterministic pseudo-random fill with exact zeros sprinkled in to
    /// exercise the zero-skip path.
    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = ((s >> 33) as u32 % 2000) as f32 / 500.0 - 2.0;
                if (s >> 17) % 7 == 0 {
                    0.0
                } else {
                    r
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matmul_bitwise_matches_scalar_on_awkward_shapes() {
        // (3, 300, 10) and (2, 600, 8) cross the KC k-slab boundary so the
        // park-and-reload path is exercised.
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 3, 8),
            (5, 7, 13),
            (9, 16, 17),
            (3, 0, 5),
            (0, 4, 4),
            (13, 5, 1),
            (3, 300, 10),
            (2, 600, 8),
            (5, 9, 33),
            (6, 300, 65),
            (3, 17, 32),
        ] {
            let a = fill(m * k, 1 + (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, 2 + (m + k + n) as u64);
            let mut c_s = vec![9.0f32; m * n];
            let mut c_b = vec![7.0f32; m * n];
            matmul_scalar(&a, &b, k, n, 0, &mut c_s, false);
            matmul_blocked(&a, &b, k, n, 0, &mut c_b, false);
            assert_bitwise(&c_s, &c_b, &format!("matmul {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_matmul_tn_bitwise_matches_scalar() {
        for &(k, m, n) in &[(3, 4, 8), (7, 5, 13), (16, 9, 17), (0, 3, 5), (5, 13, 1), (4, 1, 9)] {
            let a = fill(k * m, 3 + (m * 17 + k + n) as u64);
            let b = fill(k * n, 4 + (m + k * 3 + n) as u64);
            let mut c_s = vec![9.0f32; m * n];
            let mut c_b = vec![7.0f32; m * n];
            matmul_tn_scalar(&a, &b, k, m, n, 0, &mut c_s, false);
            matmul_tn_blocked(&a, &b, k, m, n, 0, &mut c_b, false);
            assert_bitwise(&c_s, &c_b, &format!("matmul_tn {k}x{m}x{n}"));
        }
    }

    #[test]
    fn blocked_matmul_nt_bitwise_matches_scalar() {
        for &(m, k, n) in &[(4, 3, 8), (5, 7, 13), (9, 16, 3), (3, 0, 5), (1, 5, 1)] {
            let a = fill(m * k, 5 + (m + k + n * 11) as u64);
            let b = fill(n * k, 6 + (m * 5 + k + n) as u64);
            let mut c_s = vec![9.0f32; m * n];
            let mut c_b = vec![7.0f32; m * n];
            matmul_nt_scalar(&a, &b, k, n, 0, &mut c_s);
            matmul_nt_blocked(&a, &b, k, n, 0, &mut c_b);
            assert_bitwise(&c_s, &c_b, &format!("matmul_nt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_kernels_ignore_garbage_scratch() {
        // Blocked variants must fully overwrite the chunk even when handed
        // unzeroed recycled scratch (zeroed = false with garbage contents).
        let (m, k, n) = (6, 5, 11);
        let a = fill(m * k, 42);
        let b = fill(k * n, 43);
        let mut clean = vec![0.0f32; m * n];
        let mut dirty = vec![f32::NAN; m * n];
        matmul_blocked(&a, &b, k, n, 0, &mut clean, true);
        matmul_blocked(&a, &b, k, n, 0, &mut dirty, false);
        assert_bitwise(&clean, &dirty, "garbage scratch");

        // matmul_tn_blocked accumulates in place, so it must clear the
        // chunk itself when the scratch arrives unzeroed.
        let at = fill(k * m, 44);
        let mut clean_tn = vec![0.0f32; m * n];
        let mut dirty_tn = vec![f32::NAN; m * n];
        matmul_tn_blocked(&at, &b, k, m, n, 0, &mut clean_tn, true);
        matmul_tn_blocked(&at, &b, k, m, n, 0, &mut dirty_tn, false);
        assert_bitwise(&clean_tn, &dirty_tn, "garbage scratch tn");
    }

    #[test]
    fn chunked_blocked_matmul_matches_unchunked() {
        // Tiling restarts at chunk boundaries; the result must not care.
        let (m, k, n) = (11, 6, 9);
        let a = fill(m * k, 77);
        let b = fill(k * n, 78);
        let mut whole = vec![0.0f32; m * n];
        matmul_blocked(&a, &b, k, n, 0, &mut whole, true);
        for split in [1, 3, 5, 10] {
            let mut parts = vec![0.0f32; m * n];
            let (lo, hi) = parts.split_at_mut(split * n);
            matmul_blocked(&a, &b, k, n, 0, lo, true);
            matmul_blocked(&a, &b, k, n, split, hi, true);
            assert_bitwise(&whole, &parts, &format!("split at {split}"));
        }
    }
}
