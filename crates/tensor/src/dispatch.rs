//! Kernel variant selection: scalar vs register-blocked microkernels.
//!
//! Every op in the matmul family ([`crate::Matrix::matmul`],
//! [`crate::Matrix::matmul_tn`], [`crate::Matrix::matmul_nt`],
//! [`crate::Csr::matmul_dense`]) has two bitwise-identical implementations
//! (see [`crate::ops::microkernel`]); this module decides which one runs.
//! Because the variants are bitwise equal, dispatch is purely a performance
//! decision — training results cannot depend on it.
//!
//! Selection policy, in priority order:
//!
//! 1. [`with_kernel`] — a scoped, test-friendly override.
//! 2. The `AUTOAC_KERNEL` environment variable: `scalar`, `blocked`, or
//!    `auto` (read once, parsed strictly — a malformed value aborts instead
//!    of silently falling back).
//! 3. Default `auto`: a per-[`ShapeClass`] **selection table**, built
//!    lazily by evaluating a linear [`CostModel`] on every shape-class
//!    bucket. The baked-in model weights are fitted offline against the
//!    A/B timing table written by `bench_kernels`, which can replay the
//!    kernel shapes recorded in an obs JSONL export
//!    (`bench_kernels --replay results/OBS_<run>.jsonl`, using the
//!    `"type":"shape"` records emitted by [`autoac_obs::shape_record`]);
//!    the weights approximate measured `log2(scalar_time / blocked_time)`
//!    over the class features. The table is the cost model memoized over
//!    the (small) class space, so `select` costs a classify + array load
//!    on the hot path.
//!
//! When obs is enabled, every selection records its shape
//! ([`autoac_obs::shape_record`]) — the data the tuner replays — and bumps
//! the `kernel.scalar` / `kernel.blocked` counters.

use std::cell::Cell;
use std::sync::OnceLock;

/// Every dispatchable kernel variant, by microkernel function name.
///
/// autoac-lint's `dispatch-parity-coverage` rule requires each name listed
/// here to appear in the parity harness
/// (`crates/tensor/tests/kernel_parity.rs`) — registering a variant
/// without covering it is a lint failure.
pub const VARIANTS: &[&str] = &[
    "matmul_scalar",
    "matmul_blocked",
    "matmul_tn_scalar",
    "matmul_tn_blocked",
    "matmul_nt_scalar",
    "matmul_nt_blocked",
    "spmm_scalar",
    "spmm_blocked",
];

/// Selection policy: force one variant, or let the table decide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Always run the scalar reference kernels.
    Scalar,
    /// Always run the register-blocked kernels.
    Blocked,
    /// Per-shape-class selection table (the default).
    Auto,
}

/// A concrete kernel implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Scalar reference kernel.
    Scalar,
    /// Register-blocked kernel.
    Blocked,
}

/// The dispatchable ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelOp {
    /// `A · B` ([`crate::Matrix::matmul`]).
    MatMul,
    /// `Aᵀ · B` ([`crate::Matrix::matmul_tn`]).
    MatMulTn,
    /// `A · Bᵀ` ([`crate::Matrix::matmul_nt`]).
    MatMulNt,
    /// CSR · dense ([`crate::Csr::matmul_dense`]).
    Spmm,
}

impl KernelOp {
    /// Obs span/shape name for this op.
    pub fn name(self) -> &'static str {
        match self {
            KernelOp::MatMul => "matmul",
            KernelOp::MatMulTn => "matmul_tn",
            KernelOp::MatMulNt => "matmul_nt",
            KernelOp::Spmm => "spmm",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelOp::MatMul => 0,
            KernelOp::MatMulTn => 1,
            KernelOp::MatMulNt => 2,
            KernelOp::Spmm => 3,
        }
    }
}

/// Strict parser for `AUTOAC_KERNEL`: `scalar`, `blocked`, or `auto`
/// (ASCII case-insensitive, surrounding whitespace ignored). Anything else
/// is an error — a malformed setting must abort instead of silently
/// falling back to auto.
pub fn parse_kernel_env(raw: &str) -> Result<KernelChoice, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "scalar" => Ok(KernelChoice::Scalar),
        "blocked" => Ok(KernelChoice::Blocked),
        "auto" => Ok(KernelChoice::Auto),
        "" => Err(
            "AUTOAC_KERNEL is set but empty; use scalar, blocked, or auto (or unset it)".into(),
        ),
        other => Err(format!(
            "AUTOAC_KERNEL={other:?} is invalid; use scalar, blocked, or auto"
        )),
    }
}

fn env_choice() -> Option<KernelChoice> {
    static ENV: OnceLock<Option<KernelChoice>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("AUTOAC_KERNEL").ok()?;
        Some(parse_kernel_env(&raw).unwrap_or_else(|e| panic!("autoac-tensor: {e}")))
    })
}

thread_local! {
    /// Override installed by [`with_kernel`]; `None` means unset.
    /// Thread-local for the same reason as `parallel::OVERRIDE`: kernels
    /// are always launched from the calling thread.
    static OVERRIDE: Cell<Option<KernelChoice>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's kernel choice pinned to `choice`, restoring
/// the previous setting afterwards (also on panic). Used by the parity
/// harness and the A/B tuner to force variants without touching env.
pub fn with_kernel<T>(choice: KernelChoice, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<KernelChoice>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(choice))));
    f()
}

/// The effective selection policy right now (override → env → auto).
pub fn choice() -> KernelChoice {
    OVERRIDE
        .with(Cell::get)
        .or_else(env_choice)
        .unwrap_or(KernelChoice::Auto)
}

// ---------------------------------------------------------------------
// Shape classes and the cost model
// ---------------------------------------------------------------------

/// Log2-bucket bound for total scalar work.
const WORK_CLASSES: usize = 48;
/// Log2-bucket bound for the output-row width `n`.
const N_CLASSES: usize = 16;
/// Sparsity buckets (dense ops always land in the densest bucket).
const DENSITY_CLASSES: usize = 4;
/// Thread-count buckets: 1, 2–4, ≥5.
const THREAD_CLASSES: usize = 3;
const OPS: usize = 4;

/// Coarse shape descriptor: the dispatch table is indexed by these buckets
/// and the cost-model features are derived from them, so table lookup and
/// model evaluation agree by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeClass {
    /// `⌊log2(total scalar work)⌋`, clamped to `0..48`. Work is `m·k·n`
    /// for dense ops and `nnz·n` for spmm.
    pub work_log2: u8,
    /// `⌊log2(n)⌋`, clamped to `0..16` — whether output rows fit whole
    /// register panels.
    pub n_log2: u8,
    /// Sparsity bucket from the average row degree `nnz / m` — the number
    /// of times spmm re-walks a row's indices is what blocking amortizes:
    /// `< 4` → 0, `< 8` → 1, `< 16` → 2, else (and all dense ops) → 3.
    pub density: u8,
    /// Thread-count bucket: 1 → 0, 2–4 → 1, ≥5 → 2.
    pub threads: u8,
}

fn log2_bucket(v: usize, max: usize) -> u8 {
    if v <= 1 {
        0
    } else {
        ((usize::BITS - 1 - v.leading_zeros()) as usize).min(max - 1) as u8
    }
}

/// Buckets a kernel invocation. `nnz` is `None` for dense ops.
pub fn classify(m: usize, k: usize, n: usize, nnz: Option<usize>) -> ShapeClass {
    let work = match nnz {
        Some(nnz) => nnz.saturating_mul(n),
        None => m.saturating_mul(k).saturating_mul(n),
    };
    let density = match nnz {
        None => DENSITY_CLASSES as u8 - 1,
        Some(nnz) => {
            let degree = nnz as f64 / m.max(1) as f64;
            if degree < 4.0 {
                0
            } else if degree < 8.0 {
                1
            } else if degree < 16.0 {
                2
            } else {
                3
            }
        }
    };
    let threads = match crate::parallel::threads_for(work) {
        1 => 0,
        2..=4 => 1,
        _ => 2,
    };
    ShapeClass {
        work_log2: log2_bucket(work, WORK_CLASSES),
        n_log2: log2_bucket(n, N_CLASSES),
        density,
        threads,
    }
}

impl ShapeClass {
    fn table_index(self, op: KernelOp) -> usize {
        (((op.index() * WORK_CLASSES + self.work_log2 as usize) * N_CLASSES
            + self.n_log2 as usize)
            * DENSITY_CLASSES
            + self.density as usize)
            * THREAD_CLASSES
            + self.threads as usize
    }
}

/// Linear cost model over [`ShapeClass`] features: predicts
/// `log2(scalar_time / blocked_time)`; a positive score means the blocked
/// variant is expected to win. One model per [`KernelOp`].
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Intercept.
    pub bias: f32,
    /// Weight on `work_log2`.
    pub w_work: f32,
    /// Weight on `n_log2`.
    pub w_n: f32,
    /// Weight on the sparsity bucket.
    pub w_density: f32,
    /// Weight on the thread bucket.
    pub w_threads: f32,
}

impl CostModel {
    /// Predicted `log2` speedup of blocked over scalar for a class.
    pub fn score(&self, c: ShapeClass) -> f32 {
        self.bias
            + self.w_work * c.work_log2 as f32
            + self.w_n * c.n_log2 as f32
            + self.w_density * c.density as f32
            + self.w_threads * c.threads as f32
    }

    /// The variant this model picks for a class.
    pub fn pick(&self, c: ShapeClass) -> Variant {
        if self.score(c) > 0.0 {
            Variant::Blocked
        } else {
            Variant::Scalar
        }
    }

    /// Baked-in weights, tuned from the measured A/B table written by
    /// `bench_kernels` (see `results/BENCH_kernels.json` for the run that
    /// produced them). The measured picture: blocked wins nearly
    /// everywhere — the models keep scalar only for the shapes where the
    /// A/B table shows it losing (column-vector dense outputs, spmm rows
    /// with fewer than ~4 nonzeros).
    pub fn default_for(op: KernelOp) -> CostModel {
        match op {
            // Dense matmul / tn: measured blocked wins from n ≥ 2 at any
            // realistic work (register-panel tails beat scalar
            // read-modify-write even at n = 7: 1.8×); only column-vector
            // outputs (n = 1) stay scalar.
            KernelOp::MatMul | KernelOp::MatMulTn => CostModel {
                bias: -0.9,
                w_work: 0.01,
                w_n: 0.45,
                w_density: 0.0,
                w_threads: 0.0,
            },
            // nt: the 4-chain dot tile wins on every measured shape
            // (1.3–1.8×) down to k = 7; only degenerate dots stay scalar.
            KernelOp::MatMulNt => CostModel {
                bias: -1.0,
                w_work: 0.08,
                w_n: 0.15,
                w_density: 0.0,
                w_threads: 0.0,
            },
            // spmm: blocking amortizes the per-panel index re-walk, so
            // the average row degree (the density bucket) decides —
            // measured win at degree ≥ 4 (1.2–1.3×), slight loss below.
            KernelOp::Spmm => CostModel {
                bias: -0.6,
                w_work: 0.0,
                w_n: 0.02,
                w_density: 0.7,
                w_threads: 0.0,
            },
        }
    }
}

fn table() -> &'static [Variant] {
    static TABLE: OnceLock<Vec<Variant>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![Variant::Scalar; OPS * WORK_CLASSES * N_CLASSES * DENSITY_CLASSES * THREAD_CLASSES];
        for op in [KernelOp::MatMul, KernelOp::MatMulTn, KernelOp::MatMulNt, KernelOp::Spmm] {
            let model = CostModel::default_for(op);
            for work in 0..WORK_CLASSES {
                for n in 0..N_CLASSES {
                    for d in 0..DENSITY_CLASSES {
                        for th in 0..THREAD_CLASSES {
                            let c = ShapeClass {
                                work_log2: work as u8,
                                n_log2: n as u8,
                                density: d as u8,
                                threads: th as u8,
                            };
                            t[c.table_index(op)] = model.pick(c);
                        }
                    }
                }
            }
        }
        t
    })
}

/// Picks the kernel variant for one invocation and records the shape for
/// the offline tuner. Hot path: one branch when obs is off, a classify +
/// table load in auto mode.
pub(crate) fn select(op: KernelOp, m: usize, k: usize, n: usize, nnz: Option<usize>) -> Variant {
    if autoac_obs::enabled() {
        autoac_obs::shape_record(op.name(), [m, k, n, nnz.unwrap_or(0)]);
    }
    let variant = match choice() {
        KernelChoice::Scalar => Variant::Scalar,
        KernelChoice::Blocked => Variant::Blocked,
        KernelChoice::Auto => table()[classify(m, k, n, nnz).table_index(op)],
    };
    match variant {
        Variant::Scalar => autoac_obs::counter_add("kernel.scalar", 1),
        Variant::Blocked => autoac_obs::counter_add("kernel.blocked", 1),
    }
    variant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parser_is_strict() {
        assert_eq!(parse_kernel_env("scalar"), Ok(KernelChoice::Scalar));
        assert_eq!(parse_kernel_env(" Blocked\n"), Ok(KernelChoice::Blocked));
        assert_eq!(parse_kernel_env("AUTO"), Ok(KernelChoice::Auto));
        for bad in ["", "  ", "fast", "1", "blocked,scalar"] {
            assert!(parse_kernel_env(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn with_kernel_overrides_and_restores() {
        let before = choice();
        let inner = with_kernel(KernelChoice::Scalar, || {
            assert_eq!(choice(), KernelChoice::Scalar);
            with_kernel(KernelChoice::Blocked, choice)
        });
        assert_eq!(inner, KernelChoice::Blocked);
        assert_eq!(choice(), before, "override must restore");
    }

    #[test]
    fn table_agrees_with_cost_model_everywhere() {
        for op in [KernelOp::MatMul, KernelOp::MatMulTn, KernelOp::MatMulNt, KernelOp::Spmm] {
            let model = CostModel::default_for(op);
            for (m, k, n, nnz) in [
                (1, 1, 1, None),
                (4057, 334, 64, None),
                (64, 4096, 8, None),
                (3, 5, 1, None),
                (2000, 2000, 64, Some(12_000)),
                (100, 100, 7, Some(40)),
            ] {
                let c = classify(m, k, n, nnz);
                assert_eq!(
                    table()[c.table_index(op)],
                    model.pick(c),
                    "{op:?} {m}x{k}x{n} nnz={nnz:?}"
                );
            }
        }
    }

    #[test]
    fn auto_picks_blocked_for_paper_scale_and_scalar_for_degenerate() {
        // DBLP-scale forward matmul: must be blocked.
        let big = classify(4057, 334, 64, None);
        assert_eq!(CostModel::default_for(KernelOp::MatMul).pick(big), Variant::Blocked);
        // Column-vector output: panels can't even form, stay scalar.
        let thin = classify(4057, 334, 1, None);
        assert_eq!(CostModel::default_for(KernelOp::MatMul).pick(thin), Variant::Scalar);
    }
}
