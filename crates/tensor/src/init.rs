//! Weight initializers.

use rand::Rng;

use crate::matrix::Matrix;

/// Uniform Glorot/Xavier initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for linear layers.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// Kaiming/He uniform initialization for ReLU-family activations:
/// `U(−a, a)` with `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / rows as f32).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// Uniform initialization on an explicit interval.
pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.gen_range(lo..hi);
    }
    m
}

/// Standard normal initialization scaled by `std`.
pub fn random_normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut iter = m.data_mut().iter_mut();
    // Box–Muller, two samples per draw.
    while let Some(a) = iter.next() {
        let u1: f32 = rng.gen_range(1e-7f32..1.0);
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        *a = r * theta.cos() * std;
        if let Some(b) = iter.next() {
            *b = r * theta.sin() * std;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = xavier_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0f32).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= a));
        // Not all-zero.
        assert!(m.frob() > 0.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_normal(100, 100, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / (m.len() as f32 - 1.0);
        assert!(mean.abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_normal(3, 3, 1.0, &mut rng);
        assert_eq!(m.len(), 9);
        assert!(m.check_finite().is_ok());
    }
}
