//! # autoac-tensor
//!
//! From-scratch CPU tensor library with reverse-mode automatic
//! differentiation — the numerical substrate of the AutoAC reproduction.
//!
//! The design is intentionally narrow: 2-D `f32` matrices, a define-by-run
//! autograd graph, the exact op set needed by heterogeneous GNNs
//! (dense/sparse products, gather/scatter, grouped softmax, the usual
//! activations and losses), and Adam/SGD optimizers.
//!
//! ```
//! use autoac_tensor::{Matrix, Tensor};
//!
//! let w = Tensor::param(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let x = Tensor::constant(Matrix::from_rows(&[&[1.0], &[1.0]]));
//! let loss = w.matmul(&x).sum();
//! loss.backward();
//! assert_eq!(w.grad().unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
//! ```

#![warn(missing_docs)]

mod autograd;
pub mod chk;
pub mod dispatch;
pub mod init;
mod matrix;
pub mod optim;
mod ops;
pub mod parallel;
pub mod pool;
pub mod sparse;

pub use autograd::{grad_enabled, no_grad, Tensor};
pub use matrix::{dot, softmax_in_place, Matrix};
pub use ops::Act;
pub use optim::{Adam, AdamConfig, AdamState, Sgd};
pub use sparse::{spmm, Csr};
