//! Dense row-major `f32` matrix with the kernels needed by the GNN stack.
//!
//! This is deliberately a 2-D-only type: every quantity in the AutoAC
//! pipeline (node-feature blocks, weight matrices, per-edge feature blocks,
//! completion parameters) is naturally a matrix, and vectors are represented
//! as `(n, 1)` or `(1, n)` matrices. Keeping a single concrete layout keeps
//! the kernels simple and cache-friendly.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (test helper).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ---------------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place elementwise accumulation: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulation: `self += scale * other` (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        self.assert_same_shape(other, "add_scaled_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "mul");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise division.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "div");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a / b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scalar multiple.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Elementwise combine of two same-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    // ---------------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------------

    /// Matrix product `self * other`.
    ///
    /// Uses an ikj loop order so the inner loop streams contiguously over
    /// both the `other` row and the output row; this vectorizes well and is
    /// the single hottest kernel in the whole stack. Output rows are
    /// independent, so they are split across worker threads (see
    /// [`crate::parallel`]); each row runs the identical serial loop, making
    /// the result bitwise equal for any thread count.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let work = m.saturating_mul(k).saturating_mul(n);
        crate::parallel::for_each_row_chunk(&mut out.data, n, work, |first_row, chunk| {
            for (i, out_row) in chunk.chunks_mut(n).enumerate() {
                let row = first_row + i;
                let a_row = &self.data[row * k..(row + 1) * k];
                for (p, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[p * n..(p + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: leading dimension mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: trailing dimension mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over all elements (0 for empty matrices).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Row sums as an `(rows, 1)` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Column sums as a `(1, cols)` matrix.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Maximum element (NaN-ignoring; `-inf` for empty matrices).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in row `r`.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Frobenius norm.
    pub fn frob(&self) -> f32 {
        self.frob_sq().sqrt()
    }

    // ---------------------------------------------------------------------
    // Row indexing kernels (the backbone of message passing)
    // ---------------------------------------------------------------------

    /// Gathers rows by index: `out[i] = self[idx[i]]`.
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &src) in idx.iter().enumerate() {
            let src = src as usize;
            debug_assert!(src < self.rows, "gather_rows: index {src} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-adds rows by index into a fresh `(num_out, cols)` matrix:
    /// `out[idx[i]] += self[i]`.
    pub fn scatter_add_rows(&self, idx: &[u32], num_out: usize) -> Matrix {
        assert_eq!(idx.len(), self.rows, "scatter_add_rows: index length mismatch");
        let mut out = Matrix::zeros(num_out, self.cols);
        for (i, &dst) in idx.iter().enumerate() {
            let dst = dst as usize;
            debug_assert!(dst < num_out, "scatter_add_rows: index {dst} out of bounds");
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[dst * self.cols..(dst + 1) * self.cols];
            for (o, &s) in out_row.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Copies selected rows into a new matrix (clone of `gather_rows` for
    /// `usize` indices, used by dataset splits).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &src) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row count mismatch");
        }
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            let out_row = &mut out.data[r * cols..(r + 1) * cols];
            for p in parts {
                out_row[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertically concatenates matrices with equal column counts.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column count mismatch");
        }
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Extracts the column block `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols: out of bounds");
        let mut out = Matrix::zeros(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Adds a `(1, cols)` row vector to every row.
    pub fn add_row_vec(&self, v: &Matrix) -> Matrix {
        assert_eq!(v.rows, 1, "add_row_vec: expected a row vector");
        assert_eq!(v.cols, self.cols, "add_row_vec: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&v.data) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies each row by the matching entry of a `(rows, 1)` column
    /// vector.
    pub fn mul_col_vec(&self, v: &Matrix) -> Matrix {
        assert_eq!(v.cols, 1, "mul_col_vec: expected a column vector");
        assert_eq!(v.rows, self.rows, "mul_col_vec: height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let s = v.data[r];
            for o in out.row_mut(r) {
                *o *= s;
            }
        }
        out
    }

    /// Per-row dot product of two same-shape matrices, as `(rows, 1)`.
    pub fn rowwise_dot(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "rowwise_dot");
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = dot(self.row(r), other.row(r));
        }
        out
    }

    // ---------------------------------------------------------------------
    // Row-softmax family (numerically stabilized)
    // ---------------------------------------------------------------------

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln() + mx;
            for v in row {
                *v -= lse;
            }
        }
        out
    }

    /// Checks that every element is finite; returns the first offending
    /// coordinate otherwise.
    pub fn check_finite(&self) -> Result<(), (usize, usize, f32)> {
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if !v.is_finite() {
                    return Err((r, c, v));
                }
            }
        }
        Ok(())
    }
}

/// Numerically stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let m = Matrix::from_vec(3, 3, (0..9).map(|i| i as f32).collect());
        let i = Matrix::eye(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        let direct = a.transpose().matmul(&b);
        assert_eq!(a.matmul_tn(&b), direct);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[-1.0, 2.0, 0.0]]);
        let direct = a.matmul(&b.transpose());
        assert_eq!(a.matmul_nt(&b), direct);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[6.0, 8.0], &[10.0, 12.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[4.0, 4.0], &[4.0, 4.0]]));
        assert_eq!(a.mul(&b), Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 32.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows(), Matrix::from_rows(&[&[3.0], &[7.0]]));
        assert_eq!(m.sum_cols(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.argmax_row(0), 1);
        assert!((m.frob() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gather_and_scatter_are_adjoint() {
        // <gather(X, idx), Y> == <X, scatter(Y, idx)> — the adjoint identity
        // that autograd relies on.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let idx = vec![2u32, 0, 2, 1];
        let y = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5], &[0.0, 1.0], &[3.0, 3.0]]);
        let lhs = x.gather_rows(&idx).mul(&y).sum();
        let rhs = x.mul(&y.scatter_add_rows(&idx, 3)).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let src = Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let out = src.scatter_add_rows(&[1, 1, 0], 3);
        assert_eq!(out, Matrix::from_rows(&[&[4.0], &[3.0], &[0.0]]));
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn concat_rows_layout() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn slice_cols_extracts_block() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.slice_cols(1, 2), Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
    }

    #[test]
    fn broadcast_helpers() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(m.add_row_vec(&bias), Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        let col = Matrix::from_rows(&[&[2.0], &[0.5]]);
        assert_eq!(m.mul_col_vec(&col), Matrix::from_rows(&[&[2.0, 4.0], &[1.5, 2.0]]));
    }

    #[test]
    fn softmax_rows_normalizes() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
        // Large inputs must not overflow thanks to the max-shift.
        assert!(s.check_finite().is_ok());
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let m = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let a = m.log_softmax_rows();
        let b = m.softmax_rows().map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn rowwise_dot_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.rowwise_dot(&b), Matrix::from_rows(&[&[17.0], &[53.0]]));
    }

    #[test]
    fn check_finite_reports_nan() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, f32::NAN);
        assert_eq!(m.check_finite().map_err(|(r, c, _)| (r, c)), Err((1, 0)));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }
}
