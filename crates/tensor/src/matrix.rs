//! Dense row-major `f32` matrix with the kernels needed by the GNN stack.
//!
//! This is deliberately a 2-D-only type: every quantity in the AutoAC
//! pipeline (node-feature blocks, weight matrices, per-edge feature blocks,
//! completion parameters) is naturally a matrix, and vectors are represented
//! as `(n, 1)` or `(1, n)` matrices. Keeping a single concrete layout keeps
//! the kernels simple and cache-friendly.
//!
//! Storage lives in a [`crate::pool::PoolVec`]: buffers come from (and
//! return to) a size-bucketed thread-local free list, so the per-iteration
//! graph rebuild recycles memory instead of hitting the allocator. Kernels
//! that fully overwrite their output use [`Matrix::scratch`] — recycled
//! memory with stale contents — which is only sound because every element is
//! written before the matrix escapes; kernels that accumulate start from
//! [`Matrix::zeros`]. Elementwise kernels run through
//! [`crate::parallel::for_each_row_chunk`] with the same work threshold and
//! bitwise-identical chunking guarantees as `matmul`.

use std::fmt;

use crate::ops::microkernel;
use crate::pool::PoolVec;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: PoolVec,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix with **unspecified contents** (recycled memory).
    ///
    /// Internal building block for kernels that overwrite every element
    /// before the matrix is visible anywhere else; that full overwrite is
    /// what keeps results bitwise identical with the pool on or off.
    #[inline]
    pub(crate) fn scratch(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: PoolVec::scratch(rows * cols) }
    }

    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: PoolVec::zeroed(rows * cols) }
    }

    /// A matrix for accumulating kernels: either already zeroed (second
    /// element `true`) or unspecified, in which case the kernel must clear
    /// every output row before accumulating into it. See
    /// [`PoolVec::accum_scratch`] for why recycled buffers defer the clear
    /// to the kernel.
    #[inline]
    pub(crate) fn accum_scratch(rows: usize, cols: usize) -> (Self, bool) {
        let (data, zeroed) = PoolVec::accum_scratch(rows * cols);
        (Self { rows, cols, data }, zeroed)
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: PoolVec::filled(rows * cols, value) }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data: PoolVec::from_vec(data) }
    }

    /// Builds a matrix by copying a row-major slice into **pooled** storage.
    /// Hot-path code must prefer this over [`Matrix::from_vec`]: an adopted
    /// `Vec` is almost never bucket-shaped, so it escapes the recycler and
    /// pays a fresh allocation every iteration (`autoac-lint` flags such
    /// sites).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_slice: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        let mut m = Self::scratch(rows, cols);
        m.data.copy_from_slice(data);
        m
    }

    /// Builds a matrix from nested row slices (test helper).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data: PoolVec::from_vec(data) }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the underlying buffer (which escapes
    /// the pool).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        // analyze:allow(panic, hot-path accessor; bounds are the documented caller contract enforced by the debug_assert)
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        // analyze:allow(panic, hot-path accessor; bounds are the documented caller contract enforced by the debug_assert)
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ---------------------------------------------------------------------
    // Elementwise arithmetic
    //
    // The whole family funnels through two scratch-backed helpers that split
    // the output across worker threads exactly like `matmul` does: same
    // `MIN_PARALLEL_WORK` threshold, same row-aligned chunking, each element
    // computed by the identical scalar expression — so results are bitwise
    // equal for any thread count and for pool on/off.
    // ---------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Shared kernel for the binary elementwise family (shape-checked).
    fn elementwise_binary(&self, other: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        self.assert_same_shape(other, op);
        let mut out = Matrix::scratch(self.rows, self.cols);
        let width = self.cols.max(1);
        let (a, b): (&[f32], &[f32]) = (&self.data, &other.data);
        crate::parallel::for_each_row_chunk(&mut out.data, width, a.len(), |first, chunk| {
            let off = first * width;
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(a[off + i], b[off + i]);
            }
        });
        out
    }

    /// Shared kernel for the unary elementwise family.
    fn elementwise_unary(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::scratch(self.rows, self.cols);
        let width = self.cols.max(1);
        let a: &[f32] = &self.data;
        crate::parallel::for_each_row_chunk(&mut out.data, width, a.len(), |first, chunk| {
            let off = first * width;
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(a[off + i]);
            }
        });
        out
    }

    /// Shared kernel for in-place binary updates (shape-checked).
    fn zip_apply_impl(&mut self, other: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32 + Sync) {
        self.assert_same_shape(other, op);
        let width = self.cols.max(1);
        let b: &[f32] = &other.data;
        let work = b.len();
        crate::parallel::for_each_row_chunk(&mut self.data, width, work, |first, chunk| {
            let off = first * width;
            for (i, a) in chunk.iter_mut().enumerate() {
                *a = f(*a, b[off + i]);
            }
        });
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.elementwise_binary(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.elementwise_binary(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.elementwise_binary(other, "mul", |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.elementwise_binary(other, "div", |a, b| a / b)
    }

    /// Elementwise combine of two same-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        self.elementwise_binary(other, "zip_map", f)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        self.elementwise_unary(|a| a * s)
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        self.elementwise_unary(f)
    }

    /// In-place elementwise accumulation: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.zip_apply_impl(other, "add_assign", |a, b| a + b);
    }

    /// In-place scaled accumulation: `self += scale * other` (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        self.zip_apply_impl(other, "add_scaled_assign", |a, b| a + scale * b);
    }

    /// In-place elementwise combine: `self[i] = f(self[i], other[i])`.
    pub fn zip_apply(&mut self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) {
        self.zip_apply_impl(other, "zip_apply", f);
    }

    /// In-place scalar multiple.
    pub fn scale_assign(&mut self, s: f32) {
        self.map_assign(|a| a * s);
    }

    /// Applies `f` to every element in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let width = self.cols.max(1);
        let work = self.data.len();
        crate::parallel::for_each_row_chunk(&mut self.data, width, work, |_, chunk| {
            for a in chunk.iter_mut() {
                *a = f(*a);
            }
        });
    }

    // ---------------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------------

    /// Matrix product `self * other`.
    ///
    /// The single hottest kernel in the whole stack. Runs one of two
    /// bitwise-identical variants chosen by [`crate::dispatch`]: the scalar
    /// ikj reference loop or a register-blocked microkernel (see
    /// `ops/microkernel.rs`). Output rows are independent, so they are
    /// split across worker threads (see [`crate::parallel`]); every variant
    /// preserves the per-element accumulation order, making the result
    /// bitwise equal for any thread count *and* any `AUTOAC_KERNEL`
    /// setting.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let _obs = autoac_obs::span("matmul");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let (mut out, zeroed) = Matrix::accum_scratch(m, n);
        let work = m.saturating_mul(k).saturating_mul(n);
        let variant = crate::dispatch::select(crate::dispatch::KernelOp::MatMul, m, k, n, None);
        let kernel = match variant {
            crate::dispatch::Variant::Scalar => microkernel::matmul_scalar,
            crate::dispatch::Variant::Blocked => microkernel::matmul_blocked,
        };
        crate::parallel::for_each_row_chunk(&mut out.data, n, work, |first_row, chunk| {
            kernel(&self.data, &other.data, k, n, first_row, chunk, zeroed);
        });
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    ///
    /// Hot in backward passes (`dW = Xᵀ·dY`). Parallel over output rows;
    /// every output element accumulates its `p`-terms in ascending order —
    /// the same order as the serial kernel — so results stay bitwise equal
    /// at any thread count and for either [`crate::dispatch`] variant.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: leading dimension mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let _obs = autoac_obs::span("matmul_tn");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let (mut out, zeroed) = Matrix::accum_scratch(m, n);
        let work = k.saturating_mul(m).saturating_mul(n);
        let variant = crate::dispatch::select(crate::dispatch::KernelOp::MatMulTn, m, k, n, None);
        let kernel = match variant {
            crate::dispatch::Variant::Scalar => microkernel::matmul_tn_scalar,
            crate::dispatch::Variant::Blocked => microkernel::matmul_tn_blocked,
        };
        crate::parallel::for_each_row_chunk(&mut out.data, n, work, |first_row, chunk| {
            kernel(&self.data, &other.data, k, m, n, first_row, chunk, zeroed);
        });
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    ///
    /// Hot in backward passes (`dX = dY·Wᵀ`). Output rows are independent
    /// dot products, split across worker threads; both [`crate::dispatch`]
    /// variants keep each dot's sequential accumulation order.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: trailing dimension mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let _obs = autoac_obs::span("matmul_nt");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::scratch(m, n);
        let work = m.saturating_mul(k).saturating_mul(n);
        let variant = crate::dispatch::select(crate::dispatch::KernelOp::MatMulNt, m, k, n, None);
        let kernel = match variant {
            crate::dispatch::Variant::Scalar => microkernel::matmul_nt_scalar,
            crate::dispatch::Variant::Blocked => microkernel::matmul_nt_blocked,
        };
        crate::parallel::for_each_row_chunk(&mut out.data, n, work, |first_row, chunk| {
            kernel(&self.data, &other.data, k, n, first_row, chunk);
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::scratch(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over all elements (0 for empty matrices).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Row sums as an `(rows, 1)` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::scratch(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Column sums as a `(1, cols)` matrix.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Maximum element (NaN-ignoring; `-inf` for empty matrices).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in row `r`.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Frobenius norm.
    pub fn frob(&self) -> f32 {
        self.frob_sq().sqrt()
    }

    // ---------------------------------------------------------------------
    // Row indexing kernels (the backbone of message passing)
    // ---------------------------------------------------------------------

    /// Gathers rows by index: `out[i] = self[idx[i]]`.
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::scratch(idx.len(), self.cols);
        for (i, &src) in idx.iter().enumerate() {
            let src = src as usize;
            debug_assert!(src < self.rows, "gather_rows: index {src} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-adds rows by index into a fresh `(num_out, cols)` matrix:
    /// `out[idx[i]] += self[i]`.
    pub fn scatter_add_rows(&self, idx: &[u32], num_out: usize) -> Matrix {
        assert_eq!(idx.len(), self.rows, "scatter_add_rows: index length mismatch");
        let mut out = Matrix::zeros(num_out, self.cols);
        for (i, &dst) in idx.iter().enumerate() {
            let dst = dst as usize;
            debug_assert!(dst < num_out, "scatter_add_rows: index {dst} out of bounds");
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[dst * self.cols..(dst + 1) * self.cols];
            for (o, &s) in out_row.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Copies selected rows into a new matrix (clone of `gather_rows` for
    /// `usize` indices, used by dataset splits).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::scratch(idx.len(), self.cols);
        for (i, &src) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row count mismatch");
        }
        let mut out = Matrix::scratch(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            let out_row = &mut out.data[r * cols..(r + 1) * cols];
            for p in parts {
                out_row[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertically concatenates matrices with equal column counts.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column count mismatch");
        }
        let mut out = Matrix::scratch(rows, cols);
        let mut off = 0;
        for p in parts {
            out.data[off..off + p.data.len()].copy_from_slice(&p.data);
            off += p.data.len();
        }
        out
    }

    /// Extracts the column block `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols: out of bounds");
        let mut out = Matrix::scratch(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Adds a `(1, cols)` row vector to every row.
    pub fn add_row_vec(&self, v: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_vec_assign(v);
        out
    }

    /// In-place broadcast add of a `(1, cols)` row vector to every row.
    pub fn add_row_vec_assign(&mut self, v: &Matrix) {
        assert_eq!(v.rows, 1, "add_row_vec: expected a row vector");
        assert_eq!(v.cols, self.cols, "add_row_vec: width mismatch");
        let width = self.cols.max(1);
        let b: &[f32] = &v.data;
        let work = self.data.len();
        crate::parallel::for_each_row_chunk(&mut self.data, width, work, |_, chunk| {
            for row in chunk.chunks_mut(width) {
                for (o, &bv) in row.iter_mut().zip(b) {
                    *o += bv;
                }
            }
        });
    }

    /// Multiplies each row by the matching entry of a `(rows, 1)` column
    /// vector.
    pub fn mul_col_vec(&self, v: &Matrix) -> Matrix {
        assert_eq!(v.cols, 1, "mul_col_vec: expected a column vector");
        assert_eq!(v.rows, self.rows, "mul_col_vec: height mismatch");
        let mut out = Matrix::scratch(self.rows, self.cols);
        let width = self.cols.max(1);
        let (a, s): (&[f32], &[f32]) = (&self.data, &v.data);
        crate::parallel::for_each_row_chunk(&mut out.data, width, a.len(), |first, chunk| {
            for (i, row) in chunk.chunks_mut(width).enumerate() {
                let r = first + i;
                let sv = s[r];
                for (o, &av) in row.iter_mut().zip(&a[r * width..(r + 1) * width]) {
                    *o = av * sv;
                }
            }
        });
        out
    }

    /// Per-row dot product of two same-shape matrices, as `(rows, 1)`.
    pub fn rowwise_dot(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "rowwise_dot");
        let mut out = Matrix::scratch(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = dot(self.row(r), other.row(r));
        }
        out
    }

    // ---------------------------------------------------------------------
    // Row-softmax family (numerically stabilized)
    // ---------------------------------------------------------------------

    /// Row-wise softmax: one fused max/exp-sum/normalize sweep per row, one
    /// output allocation, rows split across worker threads. Each row runs
    /// the same scalar sequence as [`softmax_in_place`], so large logits
    /// (±1e4) stay finite and results are bitwise equal at any thread count.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = Matrix::scratch(self.rows, self.cols);
        let width = self.cols.max(1);
        let a: &[f32] = &self.data;
        crate::parallel::for_each_row_chunk(&mut out.data, width, a.len(), |first, chunk| {
            for (i, out_row) in chunk.chunks_mut(width).enumerate() {
                let r = first + i;
                let src = &a[r * width..(r + 1) * width];
                let mx = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for (o, &v) in out_row.iter_mut().zip(src) {
                    *o = (v - mx).exp();
                    sum += *o;
                }
                if sum > 0.0 {
                    for o in out_row.iter_mut() {
                        *o /= sum;
                    }
                }
            }
        });
        out
    }

    /// Row-wise log-softmax (same fused single-allocation layout as
    /// [`Matrix::softmax_rows`], with the log-sum-exp shifted by the row
    /// max).
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = Matrix::scratch(self.rows, self.cols);
        let width = self.cols.max(1);
        let a: &[f32] = &self.data;
        crate::parallel::for_each_row_chunk(&mut out.data, width, a.len(), |first, chunk| {
            for (i, out_row) in chunk.chunks_mut(width).enumerate() {
                let r = first + i;
                let src = &a[r * width..(r + 1) * width];
                let mx = src.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = src.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln() + mx;
                for (o, &v) in out_row.iter_mut().zip(src) {
                    *o = v - lse;
                }
            }
        });
        out
    }

    /// Checks that every element is finite; returns the first offending
    /// coordinate otherwise.
    pub fn check_finite(&self) -> Result<(), (usize, usize, f32)> {
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if !v.is_finite() {
                    return Err((r, c, v));
                }
            }
        }
        Ok(())
    }
}

/// Numerically stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let m = Matrix::from_vec(3, 3, (0..9).map(|i| i as f32).collect());
        let i = Matrix::eye(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0]]);
        let direct = a.transpose().matmul(&b);
        assert_eq!(a.matmul_tn(&b), direct);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[-1.0, 2.0, 0.0]]);
        let direct = a.matmul(&b.transpose());
        assert_eq!(a.matmul_nt(&b), direct);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[6.0, 8.0], &[10.0, 12.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[4.0, 4.0], &[4.0, 4.0]]));
        assert_eq!(a.mul(&b), Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 32.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
        assert_eq!(
            b.div(&a),
            Matrix::from_rows(&[&[5.0, 3.0], &[7.0 / 3.0, 2.0]])
        );
    }

    #[test]
    fn in_place_family_matches_out_of_place() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, a.add(&b));
        let mut c = a.clone();
        c.add_scaled_assign(&b, 0.5);
        assert_eq!(c, a.add(&b.scale(0.5)));
        let mut c = a.clone();
        c.zip_apply(&b, |x, y| x * y);
        assert_eq!(c, a.mul(&b));
        let mut c = a.clone();
        c.add_row_vec_assign(&Matrix::from_rows(&[&[10.0, 20.0]]));
        assert_eq!(c, a.add_row_vec(&Matrix::from_rows(&[&[10.0, 20.0]])));
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows(), Matrix::from_rows(&[&[3.0], &[7.0]]));
        assert_eq!(m.sum_cols(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.argmax_row(0), 1);
        assert!((m.frob() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gather_and_scatter_are_adjoint() {
        // <gather(X, idx), Y> == <X, scatter(Y, idx)> — the adjoint identity
        // that autograd relies on.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let idx = vec![2u32, 0, 2, 1];
        let y = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5], &[0.0, 1.0], &[3.0, 3.0]]);
        let lhs = x.gather_rows(&idx).mul(&y).sum();
        let rhs = x.mul(&y.scatter_add_rows(&idx, 3)).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let src = Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let out = src.scatter_add_rows(&[1, 1, 0], 3);
        assert_eq!(out, Matrix::from_rows(&[&[4.0], &[3.0], &[0.0]]));
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn concat_rows_layout() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn slice_cols_extracts_block() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.slice_cols(1, 2), Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
    }

    #[test]
    fn broadcast_helpers() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(m.add_row_vec(&bias), Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        let col = Matrix::from_rows(&[&[2.0], &[0.5]]);
        assert_eq!(m.mul_col_vec(&col), Matrix::from_rows(&[&[2.0, 4.0], &[1.5, 2.0]]));
    }

    #[test]
    fn softmax_rows_normalizes() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
        // Large inputs must not overflow thanks to the max-shift.
        assert!(s.check_finite().is_ok());
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_matches_softmax_in_place_bitwise() {
        let m = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[-3.0, 0.0, 7.5]]);
        let fused = m.softmax_rows();
        let mut reference = m.clone();
        for r in 0..reference.rows() {
            softmax_in_place(reference.row_mut(r));
        }
        for (a, b) in fused.data().iter().zip(reference.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let m = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let a = m.log_softmax_rows();
        let b = m.softmax_rows().map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn rowwise_dot_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.rowwise_dot(&b), Matrix::from_rows(&[&[17.0], &[53.0]]));
    }

    #[test]
    fn check_finite_reports_nan() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, f32::NAN);
        assert_eq!(m.check_finite().map_err(|(r, c, _)| (r, c)), Err((1, 0)));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn clone_is_deep() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = a.clone();
        assert_ne!(a.data().as_ptr(), b.data().as_ptr());
        b.set(0, 0, 9.0);
        assert_eq!(a.get(0, 0), 1.0);
    }

    // Every member of the elementwise family must reject shape mismatches
    // the same way — an unconditional panic naming the op — so a silent
    // broadcast bug can never slip in through one of them. (Same-element-
    // count mismatches like 2×3 vs 3×2 are the treacherous case: the flat
    // data lengths agree, only the shape check catches them.)
    macro_rules! shape_mismatch_panics {
        ($($name:ident: |$a:ident, $b:ident| $call:expr;)*) => {$(
            #[test]
            #[should_panic(expected = "shape mismatch")]
            fn $name() {
                #[allow(unused_mut)]
                let mut $a = Matrix::zeros(2, 3);
                let $b = Matrix::zeros(3, 2);
                let _ = $call;
            }
        )*};
    }

    shape_mismatch_panics! {
        add_rejects_shape_mismatch: |a, b| a.add(&b);
        sub_rejects_shape_mismatch: |a, b| a.sub(&b);
        mul_rejects_shape_mismatch: |a, b| a.mul(&b);
        div_rejects_shape_mismatch: |a, b| a.div(&b);
        zip_map_rejects_shape_mismatch: |a, b| a.zip_map(&b, |x, y| x + y);
        add_assign_rejects_shape_mismatch: |a, b| a.add_assign(&b);
        add_scaled_assign_rejects_shape_mismatch: |a, b| a.add_scaled_assign(&b, 0.5);
        zip_apply_rejects_shape_mismatch: |a, b| a.zip_apply(&b, |x, y| x + y);
        rowwise_dot_rejects_shape_mismatch: |a, b| a.rowwise_dot(&b);
    }

    #[test]
    fn div_matches_elementwise_division() {
        let a = Matrix::from_rows(&[&[6.0, 9.0], &[-4.0, 1.0]]);
        let b = Matrix::from_rows(&[&[3.0, 3.0], &[2.0, 4.0]]);
        assert_eq!(a.div(&b), Matrix::from_rows(&[&[2.0, 3.0], &[-2.0, 0.25]]));
    }
}
