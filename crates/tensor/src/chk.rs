//! Runtime-check control surface (`AUTOAC_CHECK`) and op-provenance context.
//!
//! This module is the tensor-side half of the `autoac-check` subsystem: it
//! decides *whether* the expensive runtime checks are armed and records
//! *which op* is currently executing so the pool sanitizer and the race
//! checker can name the allocating / releasing / racing op in their reports.
//!
//! Control surface, in priority order:
//!
//! 1. [`with_check`] — a scoped, per-thread override used by tests (it lets
//!    one process compare checked and unchecked runs bit-for-bit).
//! 2. The `AUTOAC_CHECK` environment variable, read once and parsed
//!    **strictly**: `1/true/on/yes` arm the checks, `0/false/off/no` disarm
//!    them, anything else aborts with a clear message instead of silently
//!    defaulting (a typo like `AUTOAC_CHECK=ture` must not run unchecked).
//! 3. Default: disabled — zero overhead beyond one thread-local read.
//!
//! Op provenance: every primitive tensor op installs an [`op_scope`] guard
//! at entry, and [`Tensor::backward_with`](crate::Tensor::backward_with)
//! re-installs the recorded op name (plus a backward-phase marker) around
//! each backward closure. [`op_context`] renders the current label, e.g.
//! `matmul` or `matmul [backward]`.

use std::cell::Cell;
use std::sync::OnceLock;

/// Strict boolean-flag env parser, shared with `AUTOAC_POOL` and
/// `AUTOAC_OBS`. The single implementation now lives in `autoac-obs` (the
/// bottom of the dependency graph); this re-export keeps the historical
/// `autoac_tensor::chk::parse_bool_env` import path working.
pub use autoac_obs::parse_bool_env;

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("AUTOAC_CHECK") {
        Ok(raw) => parse_bool_env("AUTOAC_CHECK", &raw)
            .unwrap_or_else(|e| panic!("autoac-tensor: {e}")),
        Err(_) => false,
    })
}

thread_local! {
    /// Scoped override installed by [`with_check`]; `None` defers to the env.
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };

    /// Name of the tensor op currently executing on this thread.
    static CURRENT_OP: Cell<&'static str> = const { Cell::new("<no-op>") };

    /// Whether the thread is inside a backward closure right now.
    static IN_BACKWARD: Cell<bool> = const { Cell::new(false) };
}

/// Whether runtime checks (pool sanitizer, race checker, tape verification
/// hooks) are armed on this thread right now.
pub fn enabled() -> bool {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_enabled)
}

/// Runs `f` with runtime checks forced on/off on this thread, restoring the
/// previous setting afterwards (also on panic). This is how tests arm the
/// sanitizers without touching process-global env, and how the bitwise
/// checked-vs-unchecked comparison runs inside one process.
pub fn with_check<T>(on: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(on))));
    f()
}

/// RAII guard restoring the previous op label on drop; see [`op_scope`].
pub struct OpScope {
    prev: &'static str,
}

impl Drop for OpScope {
    fn drop(&mut self) {
        CURRENT_OP.with(|c| c.set(self.prev));
    }
}

/// Labels the current thread as executing op `name` until the guard drops.
/// Nested scopes shadow outer ones (a composite op reports its innermost
/// primitive), and the previous label is restored even on panic.
pub fn op_scope(name: &'static str) -> OpScope {
    OpScope { prev: CURRENT_OP.with(|c| c.replace(name)) }
}

/// The op label installed by the innermost live [`op_scope`] guard.
pub fn current_op() -> &'static str {
    CURRENT_OP.with(Cell::get)
}

/// RAII guard marking the backward phase; see [`backward_scope`].
pub struct PhaseScope {
    prev: bool,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        IN_BACKWARD.with(|c| c.set(self.prev));
    }
}

/// Marks the current thread as running a backward closure until the guard
/// drops. Installed by the autograd engine around each closure invocation.
pub(crate) fn backward_scope() -> PhaseScope {
    PhaseScope { prev: IN_BACKWARD.with(|c| c.replace(true)) }
}

/// True while a backward closure is executing on this thread.
pub fn in_backward() -> bool {
    IN_BACKWARD.with(Cell::get)
}

/// The current op label with a backward-phase marker, e.g. `matmul` or
/// `matmul [backward]` — the string sanitizer reports embed.
pub fn op_context() -> String {
    let op = current_op();
    if in_backward() {
        format!("{op} [backward]")
    } else {
        op.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_env_accepts_canonical_spellings() {
        for on in ["1", "true", "TRUE", " on ", "Yes"] {
            assert_eq!(parse_bool_env("X", on), Ok(true), "{on:?}");
        }
        for off in ["0", "false", "Off", " no "] {
            assert_eq!(parse_bool_env("X", off), Ok(false), "{off:?}");
        }
    }

    #[test]
    fn bool_env_rejects_empty_and_garbage() {
        for bad in ["", "  ", "2", "yess", "ture", "enabled", "-1", "0x1"] {
            let err = parse_bool_env("AUTOAC_CHECK", bad)
                .expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.contains("AUTOAC_CHECK"), "error must name the variable: {err}");
        }
    }

    #[test]
    fn with_check_overrides_and_restores() {
        let baseline = enabled();
        with_check(true, || {
            assert!(enabled());
            with_check(false, || assert!(!enabled()));
            assert!(enabled());
        });
        assert_eq!(enabled(), baseline);
        let caught = std::panic::catch_unwind(|| with_check(true, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(enabled(), baseline);
    }

    #[test]
    fn op_scopes_nest_and_restore() {
        assert_eq!(current_op(), "<no-op>");
        {
            let _a = op_scope("outer");
            assert_eq!(current_op(), "outer");
            {
                let _b = op_scope("inner");
                assert_eq!(current_op(), "inner");
                assert_eq!(op_context(), "inner");
            }
            assert_eq!(current_op(), "outer");
            let _bw = backward_scope();
            assert!(in_backward());
            assert_eq!(op_context(), "outer [backward]");
        }
        assert_eq!(current_op(), "<no-op>");
        assert!(!in_backward());
    }
}
