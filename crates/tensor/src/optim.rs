//! First-order optimizers over parameter leaves.
//!
//! The AutoAC search uses two independent parameter groups with distinct
//! learning rates and weight decays (paper §V-B): the GNN weights ω
//! (lr 5e-4, wd 1e-4) and the completion parameters α (lr 5e-3, wd 1e-5).
//! Each group is a separate [`Adam`] instance.

use crate::autograd::Tensor;
use crate::matrix::Matrix;

/// Hyperparameters shared by the optimizers.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

impl AdamConfig {
    /// Configuration with a given learning rate and weight decay.
    pub fn with(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay, ..Self::default() }
    }
}

/// Adam with decoupled weight decay.
pub struct Adam {
    config: AdamConfig,
    params: Vec<Tensor>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

/// A frozen copy of an [`Adam`] instance's mutable state: the step counter
/// and the first/second moment estimates, one matrix pair per managed
/// parameter. Captured by [`Adam::export_state`] and reinstated by
/// [`Adam::import_state`] so checkpointing code can resume optimization
/// bit-identically (the moments fully determine the next update given the
/// same gradients).
#[derive(Debug, Clone)]
pub struct AdamState {
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment estimates, aligned with the parameter list.
    pub m: Vec<Matrix>,
    /// Second-moment estimates, aligned with the parameter list.
    pub v: Vec<Matrix>,
}

impl Adam {
    /// Creates an optimizer over the given parameter leaves.
    pub fn new(params: Vec<Tensor>, config: AdamConfig) -> Self {
        let m = params.iter().map(|p| { let (r, c) = p.shape(); Matrix::zeros(r, c) }).collect();
        let v = params.iter().map(|p| { let (r, c) = p.shape(); Matrix::zeros(r, c) }).collect();
        Self { config, params, m, v, t: 0 }
    }

    /// The parameters managed by this optimizer.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Overrides the learning rate (for schedules / sensitivity sweeps).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Clears the gradients of every managed parameter.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Copies out the optimizer's mutable state (step count + moments).
    pub fn export_state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Reinstates state captured by [`Adam::export_state`].
    ///
    /// Panics if the moment shapes do not match the managed parameters —
    /// that means the state belongs to a differently-shaped model and
    /// resuming from it would silently diverge.
    pub fn import_state(&mut self, state: AdamState) {
        assert_eq!(
            (state.m.len(), state.v.len()),
            (self.params.len(), self.params.len()),
            "Adam::import_state: state covers a different number of parameters"
        );
        for (i, p) in self.params.iter().enumerate() {
            assert_eq!(
                (state.m[i].shape(), state.v[i].shape()),
                (p.shape(), p.shape()),
                "Adam::import_state: moment shape mismatch at parameter {i}"
            );
        }
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    /// Applies one Adam step using the accumulated gradients. Parameters
    /// without a gradient are skipped.
    pub fn step(&mut self) {
        self.t += 1;
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            // Borrow (not clone) the gradient: the update only reads it.
            let Some(grad) = p.grad_ref() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            p.update_value(|value| {
                for (((mv, vv), g), x) in m
                    .data_mut()
                    .iter_mut()
                    .zip(v.data_mut())
                    .zip(grad.data())
                    .zip(value.data_mut())
                {
                    *mv = c.beta1 * *mv + (1.0 - c.beta1) * g;
                    *vv = c.beta2 * *vv + (1.0 - c.beta2) * g * g;
                    let m_hat = *mv / bc1;
                    let v_hat = *vv / bc2;
                    // Decoupled weight decay, then the Adam update.
                    *x -= c.lr * c.weight_decay * *x;
                    *x -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
                }
            });
        }
    }

    /// Global gradient-norm clipping across all managed parameters.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let mut total = 0.0f32;
        for p in &self.params {
            if let Some(g) = p.grad_ref() {
                total += g.frob_sq();
            }
        }
        let norm = total.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                p.with_grad_mut(|g| g.scale_assign(scale));
            }
        }
        norm
    }
}

/// Plain SGD (used by the skip-gram pre-learning stage of the HGNN-AC
/// baseline, where Adam state would dominate memory).
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    params: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer over the given parameter leaves.
    pub fn new(params: Vec<Tensor>, lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay, params }
    }

    /// Clears the gradients of every managed parameter.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one SGD step.
    pub fn step(&self) {
        for p in &self.params {
            let Some(grad) = p.grad_ref() else { continue };
            let lr = self.lr;
            let wd = self.weight_decay;
            p.update_value(|value| {
                for (x, g) in value.data_mut().iter_mut().zip(grad.data()) {
                    *x -= lr * (g + wd * *x);
                }
            });
        }
    }
}

impl Tensor {
    /// Public gradient accumulation (optimizer internals and custom search
    /// steps need to write gradients directly).
    pub fn accum_grad_public(&self, g: &Matrix) {
        self.accum_grad(g);
    }

    /// Owned variant of [`Tensor::accum_grad_public`]: moves the buffer into
    /// an empty gradient slot instead of cloning it.
    pub fn accum_grad_public_owned(&self, g: Matrix) {
        self.accum_grad_owned(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x − 3)² and checks convergence.
    #[test]
    fn adam_converges_on_quadratic() {
        let x = Tensor::param(Matrix::zeros(1, 1));
        let mut opt = Adam::new(vec![x.clone()], AdamConfig::with(0.1, 0.0));
        for _ in 0..300 {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).square().sum();
            loss.backward();
            opt.step();
        }
        assert!((x.item() - 3.0).abs() < 1e-2, "x = {}", x.item());
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Tensor::param(Matrix::from_vec(1, 1, vec![10.0]));
        let opt = Sgd::new(vec![x.clone()], 0.1, 0.0);
        for _ in 0..200 {
            opt.zero_grad();
            let loss = x.add_scalar(-3.0).square().sum();
            loss.backward();
            opt.step();
        }
        assert!((x.item() - 3.0).abs() < 1e-3, "x = {}", x.item());
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let x = Tensor::param(Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new(vec![x.clone()], AdamConfig::with(0.01, 0.5));
        // Zero-gradient steps: only decay acts.
        for _ in 0..10 {
            opt.zero_grad();
            let loss = x.scale(0.0).sum();
            loss.backward();
            opt.step();
        }
        assert!(x.item() < 1.0, "decay must shrink the weight, got {}", x.item());
    }

    #[test]
    fn params_without_grad_are_skipped() {
        let x = Tensor::param(Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Adam::new(vec![x.clone()], AdamConfig::default());
        opt.step();
        assert_eq!(x.item(), 5.0);
    }

    #[test]
    fn export_import_state_resumes_bit_identically() {
        // Optimize the same quadratic twice: once straight through, once
        // with a state export/import halfway. Trajectories must match bit
        // for bit.
        let run = |split: bool| -> u32 {
            let x = Tensor::param(Matrix::from_vec(1, 1, vec![10.0]));
            let mut opt = Adam::new(vec![x.clone()], AdamConfig::with(0.05, 0.01));
            for step in 0..40 {
                if split && step == 20 {
                    let state = opt.export_state();
                    let mut fresh =
                        Adam::new(vec![x.clone()], AdamConfig::with(0.05, 0.01));
                    fresh.import_state(state);
                    opt = fresh;
                }
                opt.zero_grad();
                let loss = x.add_scalar(-3.0).square().sum();
                loss.backward();
                opt.step();
            }
            x.item().to_bits()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "moment shape mismatch")]
    fn import_state_rejects_wrong_shapes() {
        let x = Tensor::param(Matrix::zeros(2, 3));
        let mut opt = Adam::new(vec![x], AdamConfig::default());
        let bad = AdamState { t: 1, m: vec![Matrix::zeros(3, 2)], v: vec![Matrix::zeros(3, 2)] };
        opt.import_state(bad);
    }

    #[test]
    fn clip_grad_norm_bounds_gradient() {
        let x = Tensor::param(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let opt = Adam::new(vec![x.clone()], AdamConfig::default());
        x.accum_grad_public(&Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = opt.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = x.grad().unwrap();
        assert!((g.frob() - 1.0).abs() < 1e-5);
    }
}
