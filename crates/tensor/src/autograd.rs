//! Tape-free reverse-mode automatic differentiation.
//!
//! Every [`Tensor`] is a reference-counted node in an implicit DAG. Forward
//! ops record a backward closure that, given the upstream gradient, scatters
//! gradient contributions into the op's parents. Calling
//! [`Tensor::backward`] on a scalar loss runs the closures in reverse
//! topological order.
//!
//! The graph is rebuilt on every forward pass (define-by-run); parameters are
//! leaf tensors that persist across passes and accumulate gradients until
//! [`Tensor::zero_grad`] is called.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::matrix::Matrix;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Runs `f` with gradient recording disabled (evaluation mode). Ops executed
/// inside produce constant tensors with no parents, which skips closure
/// allocation and graph retention.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    let prev = GRAD_ENABLED.with(|g| g.replace(false));
    let out = f();
    GRAD_ENABLED.with(|g| g.set(prev));
    out
}

/// True when ops should record backward closures.
pub fn grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

pub(crate) type BackwardFn = Box<dyn Fn(&Matrix)>;

pub(crate) struct Node {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Option<Matrix>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
    /// Name of the op that produced this node (`"leaf"` for leaves) —
    /// captured from [`crate::chk::current_op`] so sanitizer reports and the
    /// tape verifier can name the op instead of a bare node id.
    op: &'static str,
}

thread_local! {
    static DROP_STATE: RefCell<DropState> = RefCell::new(DropState { queue: Vec::new(), draining: false });
}

struct DropState {
    queue: Vec<(Vec<Tensor>, Option<BackwardFn>)>,
    draining: bool,
}

// Long op chains (e.g. many-step PPNP propagation or deep unrolled loops)
// form deep `Rc` chains; the default recursive drop would overflow the
// stack. Instead, each node hands its parents and backward closure to a
// thread-local queue that the outermost drop drains iteratively.
impl Drop for Node {
    fn drop(&mut self) {
        if self.parents.is_empty() && self.backward.is_none() {
            return; // leaf: nothing to defer
        }
        let parents = std::mem::take(&mut self.parents);
        let backward = self.backward.take();
        let drain_here = DROP_STATE.with(|s| {
            let mut st = s.borrow_mut();
            st.queue.push((parents, backward));
            !std::mem::replace(&mut st.draining, true)
        });
        if drain_here {
            loop {
                let item = DROP_STATE.with(|s| s.borrow_mut().queue.pop());
                match item {
                    // Dropping may re-enter `Node::drop`, which only pushes
                    // onto the queue (recursion depth stays O(1)).
                    Some(item) => drop(item),
                    None => break,
                }
            }
            DROP_STATE.with(|s| s.borrow_mut().draining = false);
        }
    }
}

/// A matrix-valued node in the autograd graph.
///
/// Cloning a `Tensor` is cheap (reference-count bump) and clones share both
/// value and gradient storage.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) node: Rc<Node>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.node.value.borrow();
        write!(
            f,
            "Tensor(id={}, {}x{}, requires_grad={})",
            self.node.id,
            v.rows(),
            v.cols(),
            self.node.requires_grad
        )
    }
}

impl Tensor {
    /// Creates a leaf tensor. `requires_grad` marks it as a trainable
    /// parameter whose gradient is retained after `backward`.
    pub fn new(value: Matrix, requires_grad: bool) -> Self {
        Tensor {
            node: Rc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
                op: "leaf",
            }),
        }
    }

    /// Creates a trainable parameter leaf.
    pub fn param(value: Matrix) -> Self {
        Self::new(value, true)
    }

    /// Creates a constant (non-differentiable) leaf.
    pub fn constant(value: Matrix) -> Self {
        Self::new(value, false)
    }

    /// Scalar constant as a `(1, 1)` tensor.
    pub fn scalar(v: f32) -> Self {
        Self::constant(Matrix::full(1, 1, v))
    }

    /// Internal constructor for op results.
    pub(crate) fn from_op(value: Matrix, parents: Vec<Tensor>, backward: BackwardFn) -> Self {
        let requires = grad_enabled() && parents.iter().any(|p| p.node.requires_grad);
        if !requires {
            return Self::constant(value);
        }
        Tensor {
            node: Rc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad: true,
                parents,
                backward: Some(backward),
                op: crate::chk::current_op(),
            }),
        }
    }

    /// Unique node id (monotonically increasing with creation order).
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// Name of the op that produced this node; `"leaf"` for leaves and for
    /// constants produced under [`no_grad`] (their history is dropped).
    pub fn op_name(&self) -> &'static str {
        self.node.op
    }

    /// The op inputs this node was recorded with. Empty for leaves. Unlike
    /// the internal topo walk this exposes *all* parents, including
    /// non-differentiable constants — the tape verifier needs their shapes.
    pub fn parents(&self) -> &[Tensor] {
        &self.node.parents
    }

    /// True for tensors with no recorded history (parameters, constants).
    pub fn is_leaf(&self) -> bool {
        self.node.parents.is_empty() && self.node.backward.is_none()
    }

    /// Whether this tensor participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Borrow of the forward value.
    pub fn value(&self) -> Ref<'_, Matrix> {
        self.node.value.borrow()
    }

    /// Owned copy of the forward value.
    pub fn to_matrix(&self) -> Matrix {
        self.node.value.borrow().clone()
    }

    /// `(rows, cols)` of the forward value.
    pub fn shape(&self) -> (usize, usize) {
        self.node.value.borrow().shape()
    }

    /// Scalar value of a `(1,1)` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1x1`.
    pub fn item(&self) -> f32 {
        let v = self.node.value.borrow();
        assert_eq!(v.shape(), (1, 1), "item: tensor is not a scalar");
        v.data()[0]
    }

    /// Replaces the forward value in place (used by optimizers and proximal
    /// projections on leaves).
    ///
    /// # Panics
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Matrix) {
        let mut v = self.node.value.borrow_mut();
        assert_eq!(v.shape(), value.shape(), "set_value: shape mismatch");
        *v = value;
    }

    /// Applies `f` to the stored value in place.
    pub fn update_value(&self, f: impl FnOnce(&mut Matrix)) {
        f(&mut self.node.value.borrow_mut());
    }

    /// Owned copy of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        self.node.grad.borrow().clone()
    }

    /// Borrow of the accumulated gradient, if any (no copy — optimizers
    /// read gradients through this instead of cloning every step).
    pub fn grad_ref(&self) -> Option<Ref<'_, Matrix>> {
        Ref::filter_map(self.node.grad.borrow(), Option::as_ref).ok()
    }

    /// Moves the accumulated gradient out, leaving the slot empty. The
    /// caller takes ownership of the (pooled) buffer instead of copying it.
    pub fn take_grad(&self) -> Option<Matrix> {
        self.node.grad.borrow_mut().take()
    }

    /// Applies `f` to the accumulated gradient in place, if any.
    pub fn with_grad_mut(&self, f: impl FnOnce(&mut Matrix)) {
        if let Some(g) = self.node.grad.borrow_mut().as_mut() {
            f(g);
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Under `AUTOAC_CHECK`, every gradient contribution must match the
    /// shape of the value it flows into — a mismatch means a backward
    /// closure scattered into the wrong parent or mis-transposed.
    fn check_grad_shape(&self, g: &Matrix) {
        if !crate::chk::enabled() {
            return;
        }
        let vs = self.node.value.borrow().shape();
        if g.shape() != vs {
            panic!(
                "autoac-check: gradient accumulation shape mismatch into `{}` \
                 (node #{}): value is {}x{} but gradient is {}x{} (context: {})",
                self.node.op,
                self.node.id,
                vs.0,
                vs.1,
                g.rows(),
                g.cols(),
                crate::chk::op_context(),
            );
        }
    }

    /// Accumulates `g` into this node's gradient buffer.
    pub(crate) fn accum_grad(&self, g: &Matrix) {
        if !self.node.requires_grad {
            return;
        }
        self.check_grad_shape(g);
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Accumulates an **owned** gradient contribution: moves the buffer into
    /// an empty slot instead of cloning it, and scatters in place otherwise.
    /// Backward closures produce owned temporaries, so this recycles every
    /// per-op gradient allocation on the first-contribution path.
    pub(crate) fn accum_grad_owned(&self, g: Matrix) {
        if !self.node.requires_grad {
            return;
        }
        self.check_grad_shape(&g);
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(&g),
            None => *slot = Some(g),
        }
    }

    /// Detaches from the graph: returns a constant leaf sharing no history
    /// with `self` (value is copied).
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.to_matrix())
    }

    /// Runs reverse-mode differentiation from this scalar.
    ///
    /// Gradients accumulate into every reachable tensor with
    /// `requires_grad == true`; call [`Tensor::zero_grad`] on parameters
    /// between steps.
    ///
    /// # Panics
    /// Panics if the tensor is not `1x1`.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward: loss must be a scalar");
        self.backward_with(Matrix::ones(1, 1));
    }

    /// Reverse-mode differentiation seeded with an explicit upstream
    /// gradient (any shape matching this tensor).
    pub fn backward_with(&self, seed: Matrix) {
        assert_eq!(self.shape(), seed.shape(), "backward_with: seed shape mismatch");
        if !self.node.requires_grad {
            return;
        }
        let order = self.topo_order();
        self.accum_grad_owned(seed);
        for t in order.iter().rev() {
            let Some(f) = t.node.backward.as_ref() else {
                continue; // leaf: retains its accumulated gradient
            };
            // Intermediate (non-leaf) gradients are no longer needed once
            // their backward closure has fired; taking (not cloning) them
            // bounds peak memory on long chains and returns the buffer to
            // the pool as soon as the closure finishes.
            if let Some(g) = t.node.grad.borrow_mut().take() {
                // Re-install the recorded op name (plus the backward-phase
                // marker) so pool/race reports name the op whose closure
                // allocated or raced.
                let _phase = crate::chk::backward_scope();
                let _op = crate::chk::op_scope(t.node.op);
                f(&g);
            }
        }
    }

    /// Iterative post-order DFS over the requires-grad subgraph.
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Stack of (tensor, child_cursor).
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.node.id);
        while let Some((t, cursor)) = stack.pop() {
            let parents = &t.node.parents;
            if cursor < parents.len() {
                let child = parents[cursor].clone();
                stack.push((t, cursor + 1));
                if child.node.requires_grad && visited.insert(child.node.id) {
                    stack.push((child, 0));
                }
            } else {
                order.push(t);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_properties() {
        let p = Tensor::param(Matrix::ones(2, 2));
        assert!(p.requires_grad());
        assert_eq!(p.shape(), (2, 2));
        assert!(p.grad().is_none());
        let c = Tensor::constant(Matrix::ones(1, 1));
        assert!(!c.requires_grad());
        assert_eq!(c.item(), 1.0);
    }

    #[test]
    fn clone_shares_storage() {
        let p = Tensor::param(Matrix::zeros(1, 1));
        let q = p.clone();
        p.set_value(Matrix::from_vec(1, 1, vec![7.0]));
        assert_eq!(q.item(), 7.0);
    }

    #[test]
    fn no_grad_produces_constants() {
        let p = Tensor::param(Matrix::ones(1, 1));
        let out = no_grad(|| p.add(&p));
        assert!(!out.requires_grad());
        assert!(grad_enabled(), "flag must be restored");
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let p = Tensor::param(Matrix::ones(1, 1));
        let l1 = p.add(&p); // 2p
        l1.backward();
        let l2 = p.add(&p);
        l2.backward();
        assert_eq!(p.grad().unwrap().data()[0], 4.0);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_once_per_path() {
        // y = p + p uses p twice; dy/dp = 2.
        let p = Tensor::param(Matrix::from_vec(1, 1, vec![3.0]));
        let y = p.add(&p);
        y.backward();
        assert_eq!(p.grad().unwrap().data()[0], 2.0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let p = Tensor::param(Matrix::from_vec(1, 1, vec![1.0]));
        let mut x = p.clone();
        for _ in 0..50_000 {
            x = x.scale(1.0);
        }
        x.backward();
        assert_eq!(p.grad().unwrap().data()[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "backward: loss must be a scalar")]
    fn backward_rejects_non_scalar() {
        let p = Tensor::param(Matrix::ones(2, 2));
        p.add(&p).backward();
    }
}
