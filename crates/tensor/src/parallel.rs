//! Data-parallel kernel execution.
//!
//! Parallelism in this crate lives strictly *inside* kernels: the autograd
//! tape is `Rc`-based and stays on one thread, while individual kernels
//! (`Matrix::matmul`, `Csr::matmul_dense`, `Csr::transpose`) split their
//! output rows into disjoint `chunks_mut` slices and hand each slice to a
//! scoped worker thread (`std::thread::scope` — no pool, no 'static bounds,
//! no unsafe in the row-chunk path).
//!
//! Every row of the output is computed by exactly one thread running the
//! identical serial inner loop, so results are **bitwise equal** to the
//! serial kernel for any thread count — parallelism never perturbs training.
//!
//! Thread-count policy, in priority order:
//!
//! 1. [`with_threads`] — a scoped, test-friendly override.
//! 2. The `AUTOAC_NUM_THREADS` environment variable (read once). An explicit
//!    setting is honored even for small inputs; `1` restores the exact
//!    serial code path.
//! 3. Default: `std::thread::available_parallelism`, but only for inputs
//!    above a minimum work size — spawning threads for tiny kernels costs
//!    more than it saves.

use std::cell::Cell;
use std::sync::OnceLock;

/// Below this many scalar operations a kernel stays serial unless the
/// thread count was set explicitly (env var or [`with_threads`]).
pub const MIN_PARALLEL_WORK: usize = 16_384;

thread_local! {
    /// Override installed by [`with_threads`]; 0 means unset. Thread-local
    /// so concurrently running tests can pin different counts without
    /// racing — kernels are always launched from the calling thread.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("AUTOAC_NUM_THREADS").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!(
                    "autoac-tensor: ignoring invalid AUTOAC_NUM_THREADS={raw:?} (want integer >= 1)"
                );
                None
            }
        }
    })
}

fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The thread count kernels will use for large inputs right now.
pub fn num_threads() -> usize {
    match OVERRIDE.with(Cell::get) {
        0 => env_threads().unwrap_or_else(hardware_threads),
        n => n,
    }
}

/// Thread count for a kernel performing roughly `work` scalar operations:
/// an explicit setting (override or env var) is honored as-is; the
/// hardware default only kicks in above [`MIN_PARALLEL_WORK`].
pub fn threads_for(work: usize) -> usize {
    match OVERRIDE.with(Cell::get) {
        0 => match env_threads() {
            Some(n) => n,
            None if work >= MIN_PARALLEL_WORK => hardware_threads(),
            None => 1,
        },
        n => n,
    }
}

/// Runs `f` with this thread's kernel thread count pinned to `n`, restoring
/// the previous setting afterwards (also on panic). Used by parity tests and
/// by callers that want serial sections without touching process-global env.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    assert!(n >= 1, "with_threads: thread count must be >= 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(n)));
    f()
}

/// Splits `rows` into at most `parts` contiguous, near-equal ranges.
pub fn partition_rows(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, rows.max(1));
    let base = rows / parts;
    let extra = rows % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `f(first_row, rows_chunk)` over disjoint row-aligned chunks of
/// `data` (a row-major buffer of `width`-wide rows), one chunk per worker.
///
/// `work` is the caller's estimate of total scalar operations; it feeds
/// [`threads_for`]. With one effective thread this degenerates to a single
/// inline `f(0, data)` call — the exact serial path, no spawn. An empty
/// buffer (zero rows or zero width) never invokes `f`.
pub fn for_each_row_chunk<T, F>(data: &mut [T], width: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let rows = if width == 0 { 0 } else { data.len() / width };
    assert_eq!(rows * width, data.len(), "for_each_row_chunk: ragged buffer");
    let threads = threads_for(work).min(rows.max(1));
    if threads <= 1 {
        f(0, data);
        return;
    }
    let ranges = partition_rows(rows, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * width);
            rest = tail;
            let first_row = range.start;
            scope.spawn(move || f(first_row, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for rows in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let ranges = partition_rows(rows, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at {r:?} ({rows} rows / {parts})");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, rows, "coverage for {rows} rows / {parts} parts");
                assert!(ranges.len() <= parts.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn row_chunks_visit_every_row_once() {
        for threads in [1usize, 2, 5, 8] {
            with_threads(threads, || {
                let width = 3;
                let mut data = vec![0u32; 17 * width];
                for_each_row_chunk(&mut data, width, usize::MAX, |first_row, chunk| {
                    for (i, row) in chunk.chunks_mut(width).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + i) as u32 + 1;
                        }
                    }
                });
                let expect: Vec<u32> =
                    (0..17u32).flat_map(|r| [r + 1, r + 1, r + 1]).collect();
                assert_eq!(data, expect, "threads = {threads}");
            });
        }
    }

    #[test]
    fn empty_and_zero_width_buffers_never_invoke() {
        let mut empty: Vec<f32> = Vec::new();
        for_each_row_chunk(&mut empty, 4, usize::MAX, |_, _| panic!("empty buffer"));
        for_each_row_chunk(&mut empty, 0, usize::MAX, |_, _| panic!("zero width"));
    }

    #[test]
    fn with_threads_restores_on_exit_and_panic() {
        let before = num_threads();
        with_threads(3, || assert_eq!(num_threads(), 3));
        assert_eq!(num_threads(), before);
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn threads_for_respects_work_threshold() {
        // Unset override: small work stays serial regardless of hardware.
        with_threads(1, || assert_eq!(threads_for(usize::MAX), 1));
        // Explicit override is honored even for tiny work.
        with_threads(4, || assert_eq!(threads_for(1), 4));
    }
}
