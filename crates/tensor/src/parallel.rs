//! Data-parallel kernel execution.
//!
//! Parallelism in this crate lives strictly *inside* kernels: the autograd
//! tape is `Rc`-based and stays on one thread, while individual kernels
//! (`Matrix::matmul`, `Csr::matmul_dense`, `Csr::transpose`) split their
//! output rows into disjoint `chunks_mut` slices and hand each slice to a
//! scoped worker thread (`std::thread::scope` — no pool, no 'static bounds,
//! no unsafe in the row-chunk path).
//!
//! Every row of the output is computed by exactly one thread running the
//! identical serial inner loop, so results are **bitwise equal** to the
//! serial kernel for any thread count — parallelism never perturbs training.
//!
//! Thread-count policy, in priority order:
//!
//! 1. [`with_threads`] — a scoped, test-friendly override.
//! 2. The `AUTOAC_NUM_THREADS` environment variable (read once, parsed
//!    strictly — a malformed value aborts instead of silently falling back).
//!    An explicit setting is honored even for small inputs; `1` restores the
//!    exact serial code path.
//! 3. Default: `std::thread::available_parallelism`, but only for inputs
//!    above a minimum work size — spawning threads for tiny kernels costs
//!    more than it saves.

use std::cell::Cell;
use std::sync::OnceLock;

/// Below this many scalar operations a kernel stays serial unless the
/// thread count was set explicitly (env var or [`with_threads`]).
pub const MIN_PARALLEL_WORK: usize = 16_384;

thread_local! {
    /// Override installed by [`with_threads`]; 0 means unset. Thread-local
    /// so concurrently running tests can pin different counts without
    /// racing — kernels are always launched from the calling thread.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Strict parser for `AUTOAC_NUM_THREADS`: a positive decimal integer, with
/// surrounding whitespace ignored. Empty values, garbage, zero, and
/// out-of-range numbers are errors — a malformed setting must abort instead
/// of silently falling back to the hardware default.
pub fn parse_threads_env(raw: &str) -> Result<usize, String> {
    let t = raw.trim();
    if t.is_empty() {
        return Err(
            "AUTOAC_NUM_THREADS is set but empty; use a positive integer (or unset it)".into(),
        );
    }
    match t.parse::<usize>() {
        Ok(0) => Err("AUTOAC_NUM_THREADS=0 is invalid; thread count must be >= 1".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "AUTOAC_NUM_THREADS={t:?} is not a positive integer (overflow counts as invalid)"
        )),
    }
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("AUTOAC_NUM_THREADS").ok()?;
        Some(
            parse_threads_env(&raw)
                .unwrap_or_else(|e| panic!("autoac-tensor: {e}")),
        )
    })
}

fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The thread count kernels will use for large inputs right now.
pub fn num_threads() -> usize {
    match OVERRIDE.with(Cell::get) {
        0 => env_threads().unwrap_or_else(hardware_threads),
        n => n,
    }
}

/// Thread count for a kernel performing roughly `work` scalar operations:
/// an explicit setting (override or env var) is honored as-is; the
/// hardware default only kicks in above [`MIN_PARALLEL_WORK`].
pub fn threads_for(work: usize) -> usize {
    match OVERRIDE.with(Cell::get) {
        0 => match env_threads() {
            Some(n) => n,
            None if work >= MIN_PARALLEL_WORK => hardware_threads(),
            None => 1,
        },
        n => n,
    }
}

/// Runs `f` with this thread's kernel thread count pinned to `n`, restoring
/// the previous setting afterwards (also on panic). Used by parity tests and
/// by callers that want serial sections without touching process-global env.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    assert!(n >= 1, "with_threads: thread count must be >= 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(n)));
    f()
}

/// Splits `rows` into at most `parts` contiguous, near-equal ranges.
pub fn partition_rows(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, rows.max(1));
    let base = rows / parts;
    let extra = rows % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `f(first_row, rows_chunk)` over disjoint row-aligned chunks of
/// `data` (a row-major buffer of `width`-wide rows), one chunk per worker.
///
/// `work` is the caller's estimate of total scalar operations; it feeds
/// [`threads_for`]. With one effective thread this degenerates to a single
/// inline `f(0, data)` call — the exact serial path, no spawn. An empty
/// buffer (zero rows or zero width) never invokes `f`.
pub fn for_each_row_chunk<T, F>(data: &mut [T], width: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let rows = if width == 0 { 0 } else { data.len() / width };
    assert_eq!(rows * width, data.len(), "for_each_row_chunk: ragged buffer");
    let threads = threads_for(work).min(rows.max(1));
    if threads <= 1 {
        f(0, data);
        return;
    }
    let ranges = partition_rows(rows, threads);
    // Under AUTOAC_CHECK, declare each worker's planned write range to the
    // race checker before spawning; the split_at_mut partition is disjoint
    // by construction, so a clean run reports nothing.
    if let Some(region) = race::Region::new("for_each_row_chunk") {
        let buf = data.as_ptr() as usize;
        for (worker, range) in ranges.iter().enumerate() {
            region.record(worker, buf, range.clone(), race::AccessKind::Write);
        }
        region.finish();
    }
    // Workers are scoped threads with no access to the launcher's
    // thread-locals, so capture the launcher's span position here and have
    // each worker adopt it: spans the worker opens then nest under the
    // launching call site (e.g. search/epoch/omega/matmul). Both calls are
    // single-branch no-ops when obs is disabled.
    let obs_path = autoac_obs::current_path();
    std::thread::scope(|scope| {
        let f = &f;
        let obs_path = &obs_path;
        let mut rest = data;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * width);
            rest = tail;
            let first_row = range.start;
            scope.spawn(move || {
                let _nest = autoac_obs::adopt(obs_path);
                f(first_row, chunk)
            });
        }
    });
}

pub mod race {
    //! Lockset-style checker for scoped parallel regions.
    //!
    //! A kernel that splits work across scoped worker threads declares, per
    //! [`Region`], which logical row ranges of which buffer each worker will
    //! read or write. [`Region::finish`] then flags every pair of accesses
    //! from *different* workers that overlap on the same buffer with at
    //! least one write — the classic lockset condition for a data race on
    //! row-partitioned kernels.
    //!
    //! The checker validates the *declared plan*, not the machine-level
    //! interleaving: `for_each_row_chunk` records the exact ranges it hands
    //! to `split_at_mut`, so a kernel whose partition overlaps is caught
    //! before the racy writes happen. When `AUTOAC_CHECK` is off,
    //! [`Region::new`] returns `None` and the kernel pays nothing beyond
    //! that one thread-local read.

    use std::cell::RefCell;
    use std::ops::Range;
    use std::sync::Mutex;

    use crate::chk;

    /// Whether a declared access reads or writes the range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum AccessKind {
        /// Shared read access — overlaps freely with other reads.
        Read,
        /// Exclusive write access — must not overlap any other worker.
        Write,
    }

    /// One worker's declared access to a row range of one buffer.
    #[derive(Debug, Clone)]
    pub struct Access {
        /// Worker index within the region (chunk index for row-chunked
        /// kernels).
        pub worker: usize,
        /// Buffer identity (base address) — distinguishes the output buffer
        /// from inputs.
        pub buf: usize,
        /// Logical row range the worker touches.
        pub rows: Range<usize>,
        /// Read or write.
        pub kind: AccessKind,
    }

    /// A flagged overlap: two workers, same buffer, intersecting row ranges,
    /// at least one writing.
    #[derive(Debug, Clone)]
    pub struct RaceViolation {
        /// Region label (kernel entry point).
        pub region: &'static str,
        /// Op context active when the region ran, e.g. `matmul [backward]`.
        pub op: String,
        /// First conflicting access.
        pub first: Access,
        /// Second conflicting access.
        pub second: Access,
    }

    impl std::fmt::Display for RaceViolation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "race checker: overlapping access in region `{}` (op `{}`): \
                 worker {} {:?} rows {:?} vs worker {} {:?} rows {:?} of the same buffer",
                self.region,
                self.op,
                self.first.worker,
                self.first.kind,
                self.first.rows,
                self.second.worker,
                self.second.kind,
                self.second.rows,
            )
        }
    }

    thread_local! {
        /// `Some` while a [`capture_race_violations`] scope is active.
        static CAPTURE: RefCell<Option<Vec<RaceViolation>>> = const { RefCell::new(None) };
    }

    fn report(v: RaceViolation) {
        let fatal = CAPTURE.with(|c| match c.borrow_mut().as_mut() {
            Some(out) => {
                out.push(v.clone());
                false
            }
            None => true,
        });
        if fatal {
            // analyze:allow(panic, a detected data race outside a capture scope must abort; continuing would serve corrupted results)
            panic!("autoac-check: {v}");
        }
    }

    /// Runs `f` with race violations captured instead of fatal, returning
    /// them alongside `f`'s result. The capture scope lives on the launching
    /// thread — [`Region::finish`] must run there (it does for all kernels).
    pub fn capture_race_violations<T>(f: impl FnOnce() -> T) -> (T, Vec<RaceViolation>) {
        let prev = CAPTURE.with(|c| c.borrow_mut().replace(Vec::new()));
        struct Restore(Option<Vec<RaceViolation>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CAPTURE.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let mut restore = Restore(prev);
        let out = f();
        let captured = CAPTURE
            .with(|c| std::mem::replace(&mut *c.borrow_mut(), restore.0.take()))
            .unwrap_or_default();
        std::mem::forget(restore);
        (out, captured)
    }

    /// Access log for one scoped parallel region.
    pub struct Region {
        label: &'static str,
        op: String,
        accesses: Mutex<Vec<Access>>,
    }

    impl Region {
        /// Opens a region when checking is armed; `None` (zero overhead)
        /// otherwise. Capture the op context here — workers run without it.
        pub fn new(label: &'static str) -> Option<Region> {
            chk::enabled().then(|| Region {
                label,
                op: chk::op_context(),
                accesses: Mutex::new(Vec::new()),
            })
        }

        /// Declares that `worker` will access `rows` of the buffer at base
        /// address `buf`. Callable from worker threads (mutex-guarded).
        pub fn record(&self, worker: usize, buf: usize, rows: Range<usize>, kind: AccessKind) {
            if rows.is_empty() {
                return;
            }
            self.accesses
                .lock()
                .expect("race checker mutex poisoned")
                .push(Access { worker, buf, rows, kind });
        }

        /// Closes the region and flags every cross-worker overlap with at
        /// least one write. Runs on the launching thread.
        pub fn finish(self) {
            let accesses = self
                .accesses
                .into_inner()
                // analyze:allow(panic, a poisoned checker mutex means a worker already panicked; aborting is the sanitizer contract)
                .expect("race checker mutex poisoned");
            for (i, a) in accesses.iter().enumerate() {
                // analyze:allow(panic, i enumerates accesses so i + 1 is at most its length)
                for b in &accesses[i + 1..] {
                    let conflict = a.worker != b.worker
                        && a.buf == b.buf
                        && a.rows.start < b.rows.end
                        && b.rows.start < a.rows.end
                        && (a.kind == AccessKind::Write || b.kind == AccessKind::Write);
                    if conflict {
                        report(RaceViolation {
                            region: self.label,
                            op: self.op.clone(),
                            first: a.clone(),
                            second: b.clone(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for rows in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let ranges = partition_rows(rows, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at {r:?} ({rows} rows / {parts})");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, rows, "coverage for {rows} rows / {parts} parts");
                assert!(ranges.len() <= parts.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn row_chunks_visit_every_row_once() {
        for threads in [1usize, 2, 5, 8] {
            with_threads(threads, || {
                let width = 3;
                let mut data = vec![0u32; 17 * width];
                for_each_row_chunk(&mut data, width, usize::MAX, |first_row, chunk| {
                    for (i, row) in chunk.chunks_mut(width).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + i) as u32 + 1;
                        }
                    }
                });
                let expect: Vec<u32> =
                    (0..17u32).flat_map(|r| [r + 1, r + 1, r + 1]).collect();
                assert_eq!(data, expect, "threads = {threads}");
            });
        }
    }

    #[test]
    fn empty_and_zero_width_buffers_never_invoke() {
        let mut empty: Vec<f32> = Vec::new();
        for_each_row_chunk(&mut empty, 4, usize::MAX, |_, _| panic!("empty buffer"));
        for_each_row_chunk(&mut empty, 0, usize::MAX, |_, _| panic!("zero width"));
    }

    #[test]
    fn with_threads_restores_on_exit_and_panic() {
        let before = num_threads();
        with_threads(3, || assert_eq!(num_threads(), 3));
        assert_eq!(num_threads(), before);
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn threads_env_parses_strictly() {
        assert_eq!(parse_threads_env("1"), Ok(1));
        assert_eq!(parse_threads_env(" 8 "), Ok(8));
        for bad in ["", "  ", "0", "-1", "four", "1.5", "1e3", "99999999999999999999999"] {
            let err = parse_threads_env(bad).expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.contains("AUTOAC_NUM_THREADS"), "error must name the variable: {err}");
        }
    }

    #[test]
    fn disjoint_chunks_pass_race_checker() {
        crate::chk::with_check(true, || {
            let ((), violations) = race::capture_race_violations(|| {
                for threads in [2usize, 4] {
                    with_threads(threads, || {
                        let mut data = vec![0.0f32; 64 * 3];
                        for_each_row_chunk(&mut data, 3, usize::MAX, |_, chunk| {
                            chunk.fill(1.0);
                        });
                    });
                }
            });
            assert!(violations.is_empty(), "disjoint partition flagged: {violations:?}");
        });
    }

    #[test]
    fn overlapping_plan_is_flagged() {
        crate::chk::with_check(true, || {
            let ((), violations) = race::capture_race_violations(|| {
                let _op = crate::chk::op_scope("racy_fixture");
                if let Some(region) = race::Region::new("overlap_test") {
                    region.record(0, 0x1000, 0..6, race::AccessKind::Write);
                    region.record(1, 0x1000, 5..10, race::AccessKind::Write);
                    // Reads may overlap each other and non-conflicting rows.
                    region.record(2, 0x1000, 0..10, race::AccessKind::Read);
                    region.finish();
                }
            });
            // worker0/worker1 write-write on row 5, plus the read overlapping
            // both writers.
            assert_eq!(violations.len(), 3, "{violations:?}");
            assert!(violations.iter().all(|v| v.op == "racy_fixture"));
        });
    }

    #[test]
    fn threads_for_respects_work_threshold() {
        // Unset override: small work stays serial regardless of hardware.
        with_threads(1, || assert_eq!(threads_for(usize::MAX), 1));
        // Explicit override is honored even for tiny work.
        with_threads(4, || assert_eq!(threads_for(1), 4));
    }
}
