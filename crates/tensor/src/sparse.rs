//! Compressed-sparse-row matrices and the differentiable sparse-dense
//! product (`spmm`) used for graph convolutions and PPNP propagation.

use std::rc::Rc;

use crate::autograd::Tensor;
use crate::matrix::Matrix;
use crate::ops::microkernel;

/// Immutable CSR matrix of `f32` weights.
///
/// Built once per graph (adjacency, normalized adjacency, …) and shared via
/// [`Rc`]; the autograd closures clone the `Rc`, never the buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds from COO triplets. Duplicate coordinates are summed.
    pub fn from_coo(
        n_rows: usize,
        n_cols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> Self {
        let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n_rows];
        for (r, c, v) in triplets {
            assert!((r as usize) < n_rows, "from_coo: row {r} out of bounds");
            assert!((c as usize) < n_cols, "from_coo: col {c} out of bounds");
            rows[r as usize].push((c, v));
        }
        let mut indptr = Vec::with_capacity(n_rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut last: Option<u32> = None;
            for &(c, v) in row.iter() {
                if last == Some(c) {
                    *values.last_mut().expect("value present for duplicate") += v;
                } else {
                    indices.push(c);
                    values.push(v);
                    last = Some(c);
                }
            }
            indptr.push(indices.len());
        }
        Self { n_rows, n_cols, indptr, indices, values }
    }

    /// Identity matrix in CSR form.
    pub fn eye(n: usize) -> Self {
        Self::from_coo(n, n, (0..n as u32).map(|i| (i, i, 1.0)))
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, weight)` of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let range = self.indptr[r]..self.indptr[r + 1];
        self.indices[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }

    /// Out-degree (stored entry count) per row.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Weighted row sums (`A · 1`).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows).map(|r| self.row(r).map(|(_, v)| v).sum()).collect()
    }

    /// Copy with only the listed rows kept; every other row becomes empty.
    /// The shape is unchanged. Duplicates in `rows` are harmless; rows out
    /// of range panic.
    pub fn restrict_rows(&self, rows: &[u32]) -> Csr {
        let mut keep = vec![false; self.n_rows];
        for &r in rows {
            assert!((r as usize) < self.n_rows, "restrict_rows: row {r} out of bounds");
            keep[r as usize] = true;
        }
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.n_rows {
            if keep[r] {
                let range = self.indptr[r]..self.indptr[r + 1];
                indices.extend_from_slice(&self.indices[range.clone()]);
                values.extend_from_slice(&self.values[range]);
            }
            indptr.push(indices.len());
        }
        Csr { n_rows: self.n_rows, n_cols: self.n_cols, indptr, indices, values }
    }

    /// Transposed copy (CSC view rebuilt as CSR).
    ///
    /// Large matrices use a two-pass parallel counting sort: per-chunk
    /// column histograms, a serial prefix scan that assigns each chunk a
    /// disjoint cursor range per column, then a parallel scatter. Chunks
    /// write in source-row order, so the output is identical to the serial
    /// counting sort bit for bit.
    pub fn transpose(&self) -> Csr {
        let _obs = autoac_obs::span("csr_transpose");
        let threads =
            crate::parallel::threads_for(self.nnz().saturating_mul(2)).min(self.n_rows.max(1));
        if threads <= 1 {
            return self.transpose_serial();
        }
        let ranges = crate::parallel::partition_rows(self.n_rows, threads);

        // Pass 1: column histogram of each row chunk.
        let chunk_counts: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    s.spawn(move || {
                        let mut counts = vec![0usize; self.n_cols];
                        for &c in &self.indices[self.indptr[range.start]..self.indptr[range.end]] {
                            counts[c as usize] += 1;
                        }
                        counts
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("transpose histogram worker")).collect()
        });

        // Serial scan: global indptr, plus each chunk's starting cursor per
        // column (chunks stack within a column in source-row order).
        let mut indptr = vec![0usize; self.n_cols + 1];
        let mut cursors = chunk_counts;
        let mut base = 0usize;
        for c in 0..self.n_cols {
            indptr[c] = base;
            for cursor in cursors.iter_mut() {
                let here = cursor[c];
                cursor[c] = base;
                base += here;
            }
        }
        indptr[self.n_cols] = base;
        debug_assert_eq!(base, self.nnz());

        // Pass 2: scatter. Each chunk owns the disjoint per-column slot
        // ranges computed above, so the raw-pointer writes never alias.
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        struct SendPtr<T>(*mut T);
        // SAFETY: the pointer targets a Vec that outlives every worker, and
        // pass 2 hands each thread disjoint per-column slot ranges, so
        // cross-thread writes never alias.
        unsafe impl<T> Send for SendPtr<T> {}
        impl<T> Clone for SendPtr<T> {
            fn clone(&self) -> Self {
                Self(self.0)
            }
        }
        impl<T> SendPtr<T> {
            /// # Safety
            /// `i` must be in bounds and not written by any other thread.
            unsafe fn write(&self, i: usize, v: T) {
                unsafe { *self.0.add(i) = v }
            }
        }
        let idx_ptr = SendPtr(indices.as_mut_ptr());
        let val_ptr = SendPtr(values.as_mut_ptr());
        std::thread::scope(|s| {
            for (range, mut cursor) in ranges.into_iter().zip(cursors) {
                let idx_ptr = idx_ptr.clone();
                let val_ptr = val_ptr.clone();
                s.spawn(move || {
                    for r in range {
                        for (c, v) in self.row(r) {
                            let slot = cursor[c as usize];
                            cursor[c as usize] += 1;
                            // SAFETY: `slot` lies in this chunk's private
                            // range of column `c`; ranges of different
                            // chunks/columns are disjoint and cover 0..nnz.
                            unsafe {
                                idx_ptr.write(slot, r as u32);
                                val_ptr.write(slot, v);
                            }
                        }
                    }
                });
            }
        });
        Csr { n_rows: self.n_cols, n_cols: self.n_rows, indptr, indices, values }
    }

    fn transpose_serial(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                let slot = cursor[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr { n_rows: self.n_cols, n_cols: self.n_rows, indptr, indices, values }
    }

    /// Dense sparse-dense product `A · X` on raw matrices.
    ///
    /// Output rows are independent (`out[r] = Σ A[r,c] · X[c]`), so they are
    /// split across worker threads (see [`crate::parallel`]); each row runs
    /// the identical serial accumulation, making the result bitwise equal
    /// for any thread count.
    pub fn matmul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            self.n_cols,
            x.rows(),
            "spmm: inner dimension mismatch ({} vs {})",
            self.n_cols,
            x.rows()
        );
        let _obs = autoac_obs::span("spmm");
        let cols = x.cols();
        let (mut out, zeroed) = Matrix::accum_scratch(self.n_rows, cols);
        let work = self.nnz().saturating_mul(cols);
        let variant = crate::dispatch::select(
            crate::dispatch::KernelOp::Spmm,
            self.n_rows,
            self.n_cols,
            cols,
            Some(self.nnz()),
        );
        let kernel = match variant {
            crate::dispatch::Variant::Scalar => microkernel::spmm_scalar,
            crate::dispatch::Variant::Blocked => microkernel::spmm_blocked,
        };
        crate::parallel::for_each_row_chunk(out.data_mut(), cols, work, |first_row, chunk| {
            kernel(
                &self.indptr,
                &self.indices,
                &self.values,
                x.data(),
                cols,
                first_row,
                chunk,
                zeroed,
            );
        });
        out
    }

    /// Dense materialization (test helper; avoid for real graphs).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                m.set(r, c as usize, v);
            }
        }
        m
    }
}

/// Differentiable sparse-dense product `out = A · x`.
///
/// The sparse structure is constant; gradients flow into `x` only
/// (`dx = Aᵀ · g`). Pass the precomputed transpose — for symmetric operators
/// (e.g. symmetrically normalized adjacency) simply pass the same `Rc` twice.
pub fn spmm(a: &Rc<Csr>, a_t: &Rc<Csr>, x: &Tensor) -> Tensor {
    let _op = crate::chk::op_scope("spmm");
    debug_assert_eq!(a.n_rows(), a_t.n_cols(), "spmm: transpose shape mismatch");
    debug_assert_eq!(a.n_cols(), a_t.n_rows(), "spmm: transpose shape mismatch");
    let value = a.matmul_dense(&x.value());
    let xt = x.clone();
    let a_t = Rc::clone(a_t);
    Tensor::from_op(
        value,
        vec![x.clone()],
        Box::new(move |g| {
            xt.accum_grad_owned(a_t.matmul_dense(g));
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[0, 2, 0],
        //  [1, 0, 3],
        //  [0, 0, 0],
        //  [4, 5, 6]]
        Csr::from_coo(
            4,
            3,
            vec![(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0), (3, 0, 4.0), (3, 1, 5.0), (3, 2, 6.0)],
        )
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let c = Csr::from_coo(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.to_dense(), Matrix::from_rows(&[&[3.5, 0.0], &[0.0, 1.0]]));
    }

    #[test]
    fn row_iteration_sorted() {
        let c = sample();
        let row3: Vec<_> = c.row(3).collect();
        assert_eq!(row3, vec![(0, 4.0), (1, 5.0), (2, 6.0)]);
        assert_eq!(c.row_nnz(2), 0);
    }

    #[test]
    fn matmul_dense_matches_dense_product() {
        let c = sample();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let got = c.matmul_dense(&x);
        let want = c.to_dense().matmul(&x);
        assert_eq!(got, want);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let c = sample();
        assert_eq!(c.transpose().to_dense(), c.to_dense().transpose());
    }

    #[test]
    fn transpose_involution() {
        let c = sample();
        assert_eq!(c.transpose().transpose(), c);
    }

    #[test]
    fn row_sums_values() {
        let c = sample();
        assert_eq!(c.row_sums(), vec![2.0, 4.0, 0.0, 15.0]);
    }

    #[test]
    fn eye_acts_as_identity() {
        let i = Csr::eye(3);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(i.matmul_dense(&x), x);
    }

    #[test]
    fn spmm_gradient_is_transpose_product() {
        let a = Rc::new(sample());
        let at = Rc::new(a.transpose());
        let x = Tensor::param(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let out = spmm(&a, &at, &x);
        out.sum().backward();
        // d/dx sum(A x) = Aᵀ · 1
        let ones = Matrix::ones(4, 2);
        let want = at.matmul_dense(&ones);
        assert_eq!(x.grad().unwrap(), want);
    }
}
