//! Size-bucketed, thread-local buffer recycling for [`Matrix`] storage.
//!
//! The define-by-run autograd graph is rebuilt every iteration, so every
//! forward/backward pass used to pay one heap allocation per op — and the
//! allocator's page-zeroing on fresh pages dominated the elementwise hot
//! path once the matmul kernels were parallelized. This module recycles
//! those buffers instead:
//!
//! - Allocation requests round **up** to a power-of-two bucket
//!   (≥ [`MIN_BUCKET`] elements) and are served from a per-thread free list
//!   for that bucket when possible.
//! - Dropping a [`PoolVec`] returns the buffer to its bucket's free list
//!   (bounded per bucket; overflow buffers are freed normally).
//! - Results are **bitwise identical** with the pool on or off: a recycled
//!   buffer is either explicitly zero/value-filled or handed out as scratch
//!   that every kernel fully overwrites before reading.
//!
//! Control surface:
//!
//! - `AUTOAC_POOL=0` (also `false` / `off`) disables recycling process-wide
//!   and restores plain exact-size allocation — the escape hatch for memory
//!   debugging and for A/B benchmarks across processes.
//! - [`with_pool`] scopes an override on the current thread (used by parity
//!   tests and the in-process allocation benchmark).
//! - [`stats_snapshot`] / [`stats_reset`] expose hit/miss/bytes-recycled
//!   counters (relaxed atomics — negligible cost next to an allocation);
//!   `stats_reset` swaps each counter to zero and returns what it cleared,
//!   so phase-delimited measurements ([`crate::pool`] benchmarks, the obs
//!   layer's per-epoch hit-rate series) never lose events to a
//!   read-then-zero window.
//!
//! In debug builds, buffers are poisoned with a NaN pattern when they enter
//! the free list, so any aliasing bug (a buffer handed to two live
//! matrices, or a read of recycled memory that was never overwritten)
//! surfaces as loud NaNs instead of silent corruption.
//!
//! Under `AUTOAC_CHECK` (see [`crate::chk`]) the poisoning upgrades to a
//! **provenance sanitizer**: every pooled buffer carries a generation
//! counter and a record of the op that allocated and released it, free-listed
//! buffers get [`CANARY`] words at both ends, and a write through a stale
//! pointer (use-after-release) or a second release of the same buffer
//! (double-release) produces a deterministic [`PoolViolation`] report naming
//! both ops — a panic outside tests, a captured value inside
//! [`capture_pool_violations`].
//!
//! The free lists are thread-local on purpose: the autograd tape is
//! single-threaded, kernels only parallelize *inside* an op (worker threads
//! never allocate matrices), and a thread-local `RefCell` costs no atomics
//! on the alloc/free fast path.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::chk;

/// Smallest bucket, in `f32` elements. Requests below this still get a
/// `MIN_BUCKET`-element buffer (256 bytes — small enough not to matter,
/// large enough to keep the bucket table compact).
pub const MIN_BUCKET: usize = 64;

const MIN_BUCKET_LOG2: u32 = MIN_BUCKET.trailing_zeros();

/// Largest pooled bucket: 2^27 elements = 512 MiB. Larger requests fall
/// through to plain allocation — they are rare, and holding them alive in a
/// free list would pin too much memory.
const MAX_BUCKET_LOG2: u32 = 27;

/// At most this many free buffers are retained per bucket per thread;
/// further returns are freed normally.
const MAX_FREE_PER_BUCKET: usize = 128;

/// Byte budget that shrinks the per-bucket retention cap for large buckets
/// (a 64 MiB bucket keeps at most 16 buffers, not 128). Together with
/// [`MAX_FREE_PER_BUCKET`] this bounds worst-case held memory per bucket.
const MAX_FREE_BYTES_PER_BUCKET: usize = 1024 * 1024 * 1024;

/// Retention cap for one bucket: count-limited for small buckets,
/// byte-limited for large ones, but never below 16 — a GNN layer's
/// forward+backward keeps a dozen-odd edge-sized buffers in flight, and
/// missing on one of those costs precisely the mmap/fault churn the pool
/// exists to avoid.
fn free_cap(bucket: usize) -> usize {
    (MAX_FREE_BYTES_PER_BUCKET / (bucket * std::mem::size_of::<f32>()))
        .clamp(16, MAX_FREE_PER_BUCKET)
}

/// Debug-build poison written over buffers entering the free list: a quiet
/// NaN with a recognizable payload. Any kernel that reads pooled memory it
/// never wrote propagates NaNs and fails the numeric tests immediately.
pub const POISON: f32 = f32::from_bits(0x7FC0_DEAD);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES_RECYCLED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a free list.
    pub hits: u64,
    /// Allocations that had to go to the system allocator (pool enabled but
    /// the bucket's free list was empty).
    pub misses: u64,
    /// Total bytes returned to free lists over the process lifetime.
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the pool (0 when none recorded).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the global counters without disturbing them. The three loads are
/// individually relaxed, so a snapshot taken while other threads allocate
/// is approximate across fields — callers that need read-and-zero
/// coherence use [`stats_reset`].
pub fn stats_snapshot() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        bytes_recycled: BYTES_RECYCLED.load(Ordering::Relaxed),
    }
}

/// Zeroes the global counters and returns exactly the values that were
/// cleared. Each counter is taken with an atomic `swap`, so an increment
/// can never land in the window between "read" and "zero" and vanish —
/// every event is attributed to exactly one measurement interval. This is
/// what `bench_alloc` and the obs layer use to delimit phases.
pub fn stats_reset() -> PoolStats {
    PoolStats {
        hits: HITS.swap(0, Ordering::Relaxed),
        misses: MISSES.swap(0, Ordering::Relaxed),
        bytes_recycled: BYTES_RECYCLED.swap(0, Ordering::Relaxed),
    }
}

/// Reads the global counters. Alias for [`stats_snapshot`], kept for
/// existing callers.
pub fn stats() -> PoolStats {
    stats_snapshot()
}

/// Zeroes the global counters, discarding their values. Prefer
/// [`stats_reset`] when the cleared values matter.
pub fn reset_stats() {
    let _ = stats_reset();
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("AUTOAC_POOL") {
        // Strict: a typo like AUTOAC_POOL=offf must abort, not silently
        // leave the pool on (it used to — any unrecognized value enabled).
        Ok(raw) => chk::parse_bool_env("AUTOAC_POOL", &raw)
            .unwrap_or_else(|e| panic!("autoac-tensor: {e}")),
        Err(_) => true,
    })
}

thread_local! {
    /// Scoped override installed by [`with_pool`]; `None` defers to the env.
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };

    static FREE_LISTS: RefCell<Vec<Vec<Vec<f32>>>> = RefCell::new(Vec::new());
}

/// Whether buffer recycling is active on this thread right now.
pub fn enabled() -> bool {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_enabled)
}

/// Runs `f` with recycling forced on/off on this thread, restoring the
/// previous setting afterwards (also on panic). Matrices allocated in one
/// mode may be dropped in the other; both directions are safe (a pooled
/// buffer dropped with the pool off is simply freed, a plain buffer dropped
/// with the pool on is not bucket-shaped and is freed too).
pub fn with_pool<T>(on: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(on))));
    f()
}

/// Frees every buffer held by this thread's free lists (e.g. between
/// benchmark phases, or after a memory-heavy stage). Also forgets all
/// sanitizer provenance records: the freed addresses may be reused by the
/// system allocator, and a stale record would misattribute a fresh buffer.
pub fn trim() {
    FREE_LISTS.with(|p| p.borrow_mut().clear());
    SANITIZER.with(|s| s.borrow_mut().bufs.clear());
}

/// Bucket size (in elements) for a request of `len` elements.
#[inline]
fn bucket_for(len: usize) -> usize {
    len.next_power_of_two().max(MIN_BUCKET)
}

/// Free-list slot for a bucket size, or `None` when the size is not a
/// bucket the pool manages (not a power of two, below [`MIN_BUCKET`], or
/// above the `MAX_BUCKET_LOG2` cap). The power-of-two and lower-bound
/// checks matter: `trailing_zeros` of e.g. `96` is 5, and `5 -
/// MIN_BUCKET_LOG2` would wrap to a huge index that quietly bypasses the
/// free lists (`pop_free`'s `get_mut` hides it) or, worse, makes
/// `push_free` resize the list vector to that index.
#[inline]
fn bucket_index(bucket: usize) -> Option<usize> {
    if !bucket.is_power_of_two() {
        return None;
    }
    let log2 = bucket.trailing_zeros();
    (MIN_BUCKET_LOG2..=MAX_BUCKET_LOG2).contains(&log2).then(|| (log2 - MIN_BUCKET_LOG2) as usize)
}

/// Pops a recycled buffer for `bucket`, if any.
fn pop_free(bucket: usize) -> Option<Vec<f32>> {
    let idx = bucket_index(bucket)?;
    FREE_LISTS.with(|p| p.borrow_mut().get_mut(idx)?.pop())
}

/// Pushes a fully-initialized buffer (len == capacity == bucket) onto its
/// free list; drops it if the list is full or the bucket is out of range.
/// Returns whether the buffer was retained (kept alive in the free list).
fn push_free(buf: Vec<f32>) -> bool {
    debug_assert_eq!(buf.len(), buf.capacity());
    let Some(idx) = bucket_index(buf.capacity()) else { return false };
    let bytes = (buf.capacity() * std::mem::size_of::<f32>()) as u64;
    let kept = FREE_LISTS.with(|p| {
        let mut lists = p.borrow_mut();
        if lists.len() <= idx {
            lists.resize_with(idx + 1, Vec::new);
        }
        if lists[idx].len() < free_cap(buf.capacity()) {
            lists[idx].push(buf);
            true
        } else {
            false
        }
    });
    if kept {
        BYTES_RECYCLED.fetch_add(bytes, Ordering::Relaxed);
    }
    kept
}

// ---------------------------------------------------------------------------
// Provenance sanitizer (armed by AUTOAC_CHECK; see crate::chk).
// ---------------------------------------------------------------------------

/// Canary word written at both ends of a free-listed buffer in check mode.
/// A quiet NaN, like [`POISON`], but with a distinct payload so a report can
/// tell "stale read of poison" from "canary intact".
pub const CANARY: f32 = f32::from_bits(0x7FC0_CA4A);

/// What the pool sanitizer caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolViolationKind {
    /// A buffer sitting in the free list was written through a stale
    /// pointer (its canary words were smashed between release and reuse).
    UseAfterRelease,
    /// A buffer already in the free list was released a second time via an
    /// aliasing owner. The aliased copy is quarantined (leaked), never freed.
    DoubleRelease,
}

/// A deterministic report from the pool provenance sanitizer.
#[derive(Debug, Clone)]
pub struct PoolViolation {
    /// Which hazard was detected.
    pub kind: PoolViolationKind,
    /// Bucket size of the buffer, in `f32` elements.
    pub bucket: usize,
    /// How many times this buffer had been recycled when the hazard fired.
    pub generation: u64,
    /// Op context that (re)allocated the buffer / observed the hazard,
    /// e.g. `matmul` or `matmul [backward]`.
    pub alloc_op: String,
    /// Op context that released the buffer into the free list.
    pub release_op: String,
}

impl std::fmt::Display for PoolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            PoolViolationKind::UseAfterRelease => "use-after-release",
            PoolViolationKind::DoubleRelease => "double-release",
        };
        write!(
            f,
            "pool sanitizer: {what} on a {}-element buffer (generation {}): \
             released by `{}`, detected at `{}`",
            self.bucket, self.generation, self.release_op, self.alloc_op
        )
    }
}

/// Per-buffer provenance, keyed by the heap base address.
struct BufRecord {
    generation: u64,
    /// True while the buffer sits in the free list (canaries written).
    freed: bool,
    alloc_op: String,
    release_op: String,
}

struct SanState {
    bufs: HashMap<usize, BufRecord>,
    /// `Some` while a [`capture_pool_violations`] scope is active.
    capture: Option<Vec<PoolViolation>>,
}

thread_local! {
    static SANITIZER: RefCell<SanState> =
        RefCell::new(SanState { bufs: HashMap::new(), capture: None });
}

/// Routes a violation: captured when a test scope is active, fatal otherwise
/// (so an `AUTOAC_CHECK=1` run fails loudly on the first real hazard).
fn san_report(v: PoolViolation) {
    let fatal = SANITIZER.with(|s| {
        let mut st = s.borrow_mut();
        match st.capture.as_mut() {
            Some(out) => {
                out.push(v.clone());
                false
            }
            None => true,
        }
    });
    if fatal {
        // analyze:allow(panic, a detected pool violation outside a capture scope must abort; continuing would serve freed memory)
        panic!("autoac-check: {v}");
    }
}

/// Runs `f` with pool-sanitizer violations captured instead of fatal, and
/// returns them alongside `f`'s result. Nests: the inner scope's violations
/// do not leak into the outer one.
pub fn capture_pool_violations<T>(f: impl FnOnce() -> T) -> (T, Vec<PoolViolation>) {
    let prev = SANITIZER.with(|s| s.borrow_mut().capture.replace(Vec::new()));
    struct Restore(Option<Vec<PoolViolation>>);
    // Restores on panic too, so a poisoned capture scope cannot leak into
    // later tests on the same thread.
    impl Drop for Restore {
        fn drop(&mut self) {
            SANITIZER.with(|s| s.borrow_mut().capture = self.0.take());
        }
    }
    let mut restore = Restore(prev);
    let out = f();
    let captured = SANITIZER
        .with(|s| std::mem::replace(&mut s.borrow_mut().capture, restore.0.take()))
        .unwrap_or_default();
    std::mem::forget(restore);
    (out, captured)
}

/// Records a buffer freshly obtained from the system allocator (or adopted
/// via `from_vec`). Overwrites any stale record at the same address — the
/// allocator may legitimately reuse addresses once buffers leave the pool.
fn san_on_fresh(ptr: usize) {
    SANITIZER.with(|s| {
        let mut st = s.borrow_mut();
        let gen = st.bufs.get(&ptr).map_or(0, |r| r.generation);
        st.bufs.insert(
            ptr,
            BufRecord {
                generation: gen,
                freed: false,
                alloc_op: chk::op_context(),
                release_op: String::new(),
            },
        );
    });
}

/// Verifies canaries on a buffer popped from the free list and flips its
/// record to live. `v` still has `len == capacity` here — the canaries sit
/// at the first and last element of the full bucket.
fn san_on_reuse(v: &[f32]) {
    let ptr = v.as_ptr() as usize;
    let cap = v.len();
    let violation = SANITIZER.with(|s| {
        let mut st = s.borrow_mut();
        match st.bufs.get_mut(&ptr) {
            Some(rec) if rec.freed => {
                let intact = v[0].to_bits() == CANARY.to_bits()
                    && v[cap - 1].to_bits() == CANARY.to_bits();
                rec.freed = false;
                rec.generation += 1;
                rec.alloc_op = chk::op_context();
                (!intact).then(|| PoolViolation {
                    kind: PoolViolationKind::UseAfterRelease,
                    bucket: cap,
                    generation: rec.generation,
                    alloc_op: rec.alloc_op.clone(),
                    release_op: rec.release_op.clone(),
                })
            }
            // Released before checks were armed (no canaries written):
            // adopt it as live without judging its contents.
            _ => {
                st.bufs.insert(
                    ptr,
                    BufRecord {
                        generation: 1,
                        freed: false,
                        alloc_op: chk::op_context(),
                        release_op: String::new(),
                    },
                );
                None
            }
        }
    });
    if let Some(v) = violation {
        san_report(v);
    }
}

/// True when the sanitizer believes this address is currently in the free
/// list — releasing it again would alias.
fn san_is_freed(ptr: usize) -> bool {
    SANITIZER.with(|s| s.borrow().bufs.get(&ptr).is_some_and(|r| r.freed))
}

/// Marks a buffer as released into the free list (`kept`) or evicted back
/// to the system allocator (record dropped — the address may be reused).
fn san_on_release(ptr: usize, kept: bool) {
    SANITIZER.with(|s| {
        let mut st = s.borrow_mut();
        if !kept {
            st.bufs.remove(&ptr);
            return;
        }
        let ctx = chk::op_context();
        match st.bufs.get_mut(&ptr) {
            Some(rec) => {
                rec.freed = true;
                rec.release_op = ctx;
            }
            None => {
                st.bufs.insert(
                    ptr,
                    BufRecord {
                        generation: 0,
                        freed: true,
                        alloc_op: String::new(),
                        release_op: ctx,
                    },
                );
            }
        }
    });
}

/// Drops the provenance record for a buffer escaping the pool (`into_vec`).
fn san_untrack(ptr: usize) {
    SANITIZER.with(|s| {
        s.borrow_mut().bufs.remove(&ptr);
    });
}

/// Test hook: simulates a use-after-release — a stale pointer writes into a
/// buffer that already went back to the free list, and the next allocation
/// from that bucket detects the smashed canary. Must run with the pool and
/// `AUTOAC_CHECK` armed, inside [`capture_pool_violations`].
#[doc(hidden)]
pub fn seed_use_after_release_for_tests() {
    assert!(enabled() && chk::enabled(), "seed requires pool + checks armed");
    let _op = chk::op_scope("uar_fixture");
    let mut a = PoolVec::zeroed(MIN_BUCKET);
    let ptr = a.vec.as_mut_ptr();
    drop(a); // buffer enters the free list, canaried at both ends
    // SAFETY: the allocation is still alive (owned by the thread-local free
    // list), so the write is to valid memory; it deliberately models the bug
    // class this fixture exists to trigger: a stale alias writing after free.
    unsafe { ptr.write(0.0) };
    let _b = PoolVec::zeroed(MIN_BUCKET); // pops the same buffer → detected
}

/// Test hook: simulates a double-release — an aliasing `Vec` over a buffer
/// already in the free list is dropped as if it owned the memory. The
/// sanitizer flags it and quarantines (leaks) the alias instead of letting
/// the free list hold the same address twice. Must run with the pool and
/// `AUTOAC_CHECK` armed, inside [`capture_pool_violations`].
#[doc(hidden)]
pub fn seed_double_release_for_tests() {
    assert!(enabled() && chk::enabled(), "seed requires pool + checks armed");
    let _op = chk::op_scope("dr_fixture");
    let a = PoolVec::zeroed(MIN_BUCKET);
    let ptr = a.vec.as_ptr() as *mut f32;
    drop(a); // first (legitimate) release
    // SAFETY for the test's purposes only: this deliberately constructs an
    // aliasing owner over free-listed memory; the sanitizer must quarantine
    // it before any real double-free can happen.
    let alias = unsafe { Vec::from_raw_parts(ptr, MIN_BUCKET, MIN_BUCKET) };
    drop(PoolVec { vec: alias, recyclable: true }); // second release → flagged
}

/// Heap buffer behind [`Matrix`]: a `Vec<f32>` that returns itself to the
/// thread-local pool on drop when it is bucket-shaped.
///
/// Invariant for recyclable buffers: the entire capacity was initialized at
/// least once (bucket allocations are created with `vec![0.0; bucket]`), so
/// growing `len` back up to `capacity` with `set_len` is sound — the bytes
/// are always valid `f32`s, merely stale.
pub(crate) struct PoolVec {
    vec: Vec<f32>,
    /// Whether the full capacity is known-initialized and bucket-shaped.
    recyclable: bool,
}

impl PoolVec {
    /// A buffer of `len` elements with **unspecified contents** (stale data
    /// from a previous matrix, or poison in debug builds). Every element is
    /// a valid `f32`; callers must fully overwrite before exposing the
    /// matrix, both for determinism and to keep pool-on/off bitwise equal.
    pub(crate) fn scratch(len: usize) -> Self {
        if len == 0 {
            return Self { vec: Vec::new(), recyclable: false };
        }
        if !enabled() {
            return Self { vec: vec![0.0; len], recyclable: false };
        }
        let bucket = bucket_for(len);
        if let Some(mut v) = pop_free(bucket) {
            HITS.fetch_add(1, Ordering::Relaxed);
            if chk::enabled() {
                san_on_reuse(&v); // canaries are at the full-bucket ends
            }
            // SAFETY: recycled buffers are fully initialized up to capacity
            // (see the type invariant) and `len <= bucket == capacity`.
            unsafe { v.set_len(len) };
            return Self { vec: v, recyclable: true };
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let mut v = vec![0.0f32; bucket]; // initialize the whole bucket once
        v.truncate(len);
        let recyclable = bucket_index(bucket).is_some();
        if recyclable && chk::enabled() {
            san_on_fresh(v.as_ptr() as usize);
        }
        Self { vec: v, recyclable }
    }

    /// A zero-filled buffer of `len` elements.
    pub(crate) fn zeroed(len: usize) -> Self {
        Self::filled(len, 0.0)
    }

    /// A `value`-filled buffer of `len` elements.
    pub(crate) fn filled(len: usize, value: f32) -> Self {
        if len != 0 && !enabled() {
            // Bypass `scratch` so the disabled path pays exactly one
            // allocation-time fill (for zeros, `vec!` lowers to the
            // allocator's zeroed path), not a fill over a fresh buffer.
            return Self { vec: vec![value; len], recyclable: false };
        }
        let mut out = Self::scratch(len);
        out.vec.fill(value);
        out
    }

    /// A buffer for *accumulating* kernels. Returns the buffer plus `true`
    /// when its contents are already all-zero (fresh allocations come from
    /// the allocator's zeroed path); `false` means the caller must clear
    /// each output row before accumulating into it. Recycled buffers take
    /// the second form so the clear merges into the kernel's first pass
    /// over each row — where the lines are cache-warm — instead of a
    /// separate sweep over the whole buffer.
    pub(crate) fn accum_scratch(len: usize) -> (Self, bool) {
        if len == 0 || !enabled() {
            return (Self::zeroed(len), true);
        }
        let bucket = bucket_for(len);
        if let Some(mut v) = pop_free(bucket) {
            HITS.fetch_add(1, Ordering::Relaxed);
            if chk::enabled() {
                san_on_reuse(&v);
            }
            // SAFETY: recycled buffers are fully initialized up to capacity
            // (see the type invariant) and `len <= bucket == capacity`.
            unsafe { v.set_len(len) };
            return (Self { vec: v, recyclable: true }, false);
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let mut v = vec![0.0f32; bucket];
        v.truncate(len);
        let recyclable = bucket_index(bucket).is_some();
        if recyclable && chk::enabled() {
            san_on_fresh(v.as_ptr() as usize);
        }
        (Self { vec: v, recyclable }, true)
    }

    /// Adopts a caller-provided vector without copying. The buffer is
    /// recyclable only if it happens to be exactly bucket-shaped and fully
    /// initialized (`len == capacity`, a power of two ≥ [`MIN_BUCKET`]).
    pub(crate) fn from_vec(vec: Vec<f32>) -> Self {
        let cap = vec.capacity();
        let recyclable = vec.len() == cap
            && cap >= MIN_BUCKET
            && cap.is_power_of_two()
            && bucket_index(cap).is_some();
        if recyclable && enabled() && chk::enabled() {
            san_on_fresh(vec.as_ptr() as usize);
        }
        Self { vec, recyclable }
    }

    /// Extracts the underlying vector; the buffer escapes the pool.
    pub(crate) fn into_vec(mut self) -> Vec<f32> {
        if self.recyclable && chk::enabled() && self.vec.capacity() != 0 {
            san_untrack(self.vec.as_ptr() as usize);
        }
        std::mem::take(&mut self.vec) // the drained self drops as a no-op
    }
}

impl Drop for PoolVec {
    fn drop(&mut self) {
        if !self.recyclable || self.vec.capacity() == 0 || !enabled() {
            // Plain free. Forget any provenance record: the system allocator
            // may hand this address out again for an unrelated buffer.
            if self.recyclable && self.vec.capacity() != 0 && chk::enabled() {
                san_untrack(self.vec.as_ptr() as usize);
            }
            return;
        }
        let mut v = std::mem::take(&mut self.vec);
        // SAFETY: recyclable ⇒ the full capacity was initialized (type
        // invariant), so restoring len == capacity is sound.
        unsafe { v.set_len(v.capacity()) };
        if chk::enabled() {
            let ptr = v.as_ptr() as usize;
            if san_is_freed(ptr) {
                // An aliasing owner is releasing a buffer that is already in
                // the free list. Quarantine the alias (leak it) — pushing it
                // would make the pool hand the same memory out twice.
                let release_op = SANITIZER.with(|s| {
                    s.borrow()
                        .bufs
                        .get(&ptr)
                        .map_or_else(String::new, |r| r.release_op.clone())
                });
                let bucket = v.capacity();
                std::mem::forget(v);
                san_report(PoolViolation {
                    kind: PoolViolationKind::DoubleRelease,
                    bucket,
                    generation: 0,
                    alloc_op: chk::op_context(),
                    release_op,
                });
                return;
            }
            let len = v.len();
            v.fill(POISON);
            v[0] = CANARY;
            v[len - 1] = CANARY;
            let kept = push_free(v);
            san_on_release(ptr, kept);
            return;
        }
        #[cfg(debug_assertions)]
        v.fill(POISON);
        push_free(v);
    }
}

impl std::ops::Deref for PoolVec {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.vec
    }
}

impl std::ops::DerefMut for PoolVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.vec
    }
}

impl Clone for PoolVec {
    fn clone(&self) -> Self {
        let mut out = Self::scratch(self.vec.len());
        out.vec.copy_from_slice(&self.vec);
        out
    }
}

impl PartialEq for PoolVec {
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}

impl std::fmt::Debug for PoolVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.vec.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_up_to_powers_of_two() {
        assert_eq!(bucket_for(1), MIN_BUCKET);
        assert_eq!(bucket_for(64), 64);
        assert_eq!(bucket_for(65), 128);
        assert_eq!(bucket_for(1000), 1024);
    }

    #[test]
    fn bucket_index_pins_both_range_edges() {
        assert_eq!(bucket_index(MIN_BUCKET), Some(0));
        assert_eq!(bucket_index(1 << MAX_BUCKET_LOG2), Some((MAX_BUCKET_LOG2 - MIN_BUCKET_LOG2) as usize));
        // One past either edge is out of range, not a wrapped index.
        assert_eq!(bucket_index(MIN_BUCKET / 2), None);
        assert_eq!(bucket_index(1 << (MAX_BUCKET_LOG2 + 1)), None);
    }

    #[test]
    fn bucket_index_rejects_non_bucket_sizes() {
        // `trailing_zeros` alone would map 96 (tz = 5) below
        // MIN_BUCKET_LOG2 and wrap the subtraction; such sizes must be
        // reported as unmanaged instead.
        assert_eq!(bucket_index(96), None);
        assert_eq!(bucket_index(3), None);
        assert_eq!(bucket_index(0), None);
        assert_eq!(bucket_index((1 << MAX_BUCKET_LOG2) + (1 << 5)), None);
    }

    #[test]
    fn recycled_buffer_is_reused() {
        with_pool(true, || {
            trim();
            let a = PoolVec::zeroed(100);
            let ptr = a.as_ptr();
            drop(a);
            let b = PoolVec::zeroed(80); // same 128-bucket
            assert_eq!(b.as_ptr(), ptr, "bucket must be recycled");
            assert!(b.iter().all(|&v| v == 0.0), "zeroed must re-zero recycled memory");
        });
    }

    #[test]
    fn disabled_pool_never_recycles() {
        with_pool(false, || {
            trim();
            let before = stats();
            let a = PoolVec::zeroed(100);
            drop(a);
            let _b = PoolVec::zeroed(100);
            let after = stats();
            assert_eq!(before, after, "disabled pool must not touch counters");
        });
    }

    #[test]
    fn stats_count_hits_and_misses() {
        with_pool(true, || {
            trim();
            let before = stats();
            let a = PoolVec::scratch(256);
            drop(a);
            let b = PoolVec::scratch(256);
            let after = stats();
            assert_eq!(after.misses - before.misses, 1);
            assert_eq!(after.hits - before.hits, 1);
            assert!(after.bytes_recycled > before.bytes_recycled);
            drop(b);
        });
    }

    #[test]
    fn stats_reset_attributes_every_event_to_one_interval() {
        with_pool(true, || {
            trim();
            // At least three misses on this thread (distinct buckets, all
            // free lists empty after trim).
            let bufs: Vec<_> = (0..3).map(|i| PoolVec::scratch(64 << i)).collect();
            drop(bufs);
            // Swap-based reset: across consecutive resets, the cleared
            // values must account for all events — none lost to a window
            // between read and zero. (>= because sibling tests may add.)
            let r1 = stats_reset();
            let r2 = stats_reset();
            assert!(
                r1.misses + r2.misses >= 3,
                "events lost across reset: {} + {}",
                r1.misses,
                r2.misses
            );
            // snapshot/stats are non-destructive aliases of each other.
            let s1 = stats_snapshot();
            let s2 = stats();
            assert!(s2.hits >= s1.hits && s2.misses >= s1.misses);
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    fn freed_buffers_are_poisoned() {
        with_pool(true, || {
            trim();
            let a = PoolVec::filled(64, 1.5);
            drop(a);
            let b = PoolVec::scratch(64);
            assert!(
                b.iter().all(|v| v.to_bits() == POISON.to_bits()),
                "scratch from the free list must carry the poison pattern"
            );
        });
    }

    #[test]
    fn sanitizer_is_silent_on_clean_recycling() {
        with_pool(true, || {
            crate::chk::with_check(true, || {
                trim();
                let ((), violations) = capture_pool_violations(|| {
                    for _ in 0..4 {
                        let a = PoolVec::zeroed(100);
                        drop(a);
                        let b = PoolVec::scratch(100);
                        drop(b);
                    }
                });
                assert!(violations.is_empty(), "clean recycling flagged: {violations:?}");
            });
        });
    }

    #[test]
    fn sanitizer_catches_seeded_use_after_release() {
        with_pool(true, || {
            crate::chk::with_check(true, || {
                trim();
                let ((), violations) = capture_pool_violations(|| {
                    let _op = crate::chk::op_scope("uar_fixture");
                    seed_use_after_release_for_tests();
                });
                assert_eq!(violations.len(), 1, "{violations:?}");
                let v = &violations[0];
                assert_eq!(v.kind, PoolViolationKind::UseAfterRelease);
                assert_eq!(v.bucket, MIN_BUCKET);
                assert_eq!(v.release_op, "uar_fixture", "must name the releasing op");
                assert_eq!(v.alloc_op, "uar_fixture", "must name the reallocating op");
                trim();
            });
        });
    }

    #[test]
    fn sanitizer_catches_seeded_double_release() {
        with_pool(true, || {
            crate::chk::with_check(true, || {
                trim();
                let ((), violations) = capture_pool_violations(|| {
                    let _op = crate::chk::op_scope("dr_fixture");
                    seed_double_release_for_tests();
                });
                assert_eq!(violations.len(), 1, "{violations:?}");
                let v = &violations[0];
                assert_eq!(v.kind, PoolViolationKind::DoubleRelease);
                assert_eq!(v.release_op, "dr_fixture");
                trim();
            });
        });
    }

    #[test]
    fn adopted_vec_roundtrips() {
        let v: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = PoolVec::from_vec(v.clone());
        assert_eq!(&*p, &v[..]);
        assert_eq!(p.into_vec(), v);
    }

    #[test]
    fn oversized_requests_fall_through() {
        // One element past the largest bucket: plain allocation, no pooling.
        let len = (1usize << MAX_BUCKET_LOG2) + 1;
        let b = PoolVec { vec: Vec::with_capacity(0), recyclable: false };
        drop(b);
        assert!(bucket_index(bucket_for(len)).is_none());
    }
}
