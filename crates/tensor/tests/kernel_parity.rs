//! Property-style parity harness for the kernel dispatch variants.
//!
//! The contract under test is the one `crates/tensor/src/dispatch.rs`
//! documents: for *any* shape and *any* thread count, every op in the
//! matmul family produces bitwise identical results whether the scalar
//! kernel, the blocked kernel, or the auto table runs. Shapes are drawn
//! from an adversarial generator biased toward the places kernels break —
//! tile-width boundaries (NR = 8, NRW = 32, MR edges), the KC = 256
//! k-slab seam, single-row/column outputs — and the data generator
//! sprinkles exact `0.0` and `-0.0` to exercise the zero-skip path whose
//! removal would *not* be bitwise neutral.
//!
//! Variant coverage (checked by the `dispatch-parity-coverage` lint):
//! matmul_scalar vs matmul_blocked, matmul_tn_scalar vs matmul_tn_blocked,
//! matmul_nt_scalar vs matmul_nt_blocked, and spmm_scalar vs spmm_blocked,
//! each at 1, 2, and 8 threads.

use autoac_tensor::dispatch::{with_kernel, KernelChoice};
use autoac_tensor::parallel::with_threads;
use autoac_tensor::{Csr, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CHOICES: [KernelChoice; 3] =
    [KernelChoice::Scalar, KernelChoice::Blocked, KernelChoice::Auto];

/// Cases per op. Each case runs 3 choices × 3 thread counts.
const CASES: usize = 25;

/// Dimensions clustered on power-of-two tile boundaries ±1 — the places
/// where panel main loops hand off to tail code — plus a tail of larger
/// sizes that cross the KC k-slab seam when drawn for `k`.
fn adversarial_dim(rng: &mut StdRng) -> usize {
    const BOUNDARY: [usize; 18] = [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 96];
    match rng.gen_range(0..10) {
        0..=6 => BOUNDARY[rng.gen_range(0..BOUNDARY.len())],
        7 | 8 => rng.gen_range(1..128),
        _ => rng.gen_range(200..300),
    }
}

/// Random values with exact `0.0` (zero-skip path) and `-0.0` (whose sign
/// an unskipped `0.0 * x` add could flip) sprinkled in.
fn adversarial_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| match rng.gen_range(0..13) {
                0 | 1 => 0.0,
                2 => -0.0,
                _ => rng.gen_range(-2.0f32..2.0),
            })
            .collect(),
    )
}

fn adversarial_csr(rng: &mut StdRng, rows: usize, cols: usize) -> Csr {
    let nnz = rng.gen_range(0..rows * cols.min(16) + 1);
    Csr::from_coo(
        rows,
        cols,
        (0..nnz).map(|_| {
            (
                rng.gen_range(0..rows) as u32,
                rng.gen_range(0..cols) as u32,
                rng.gen_range(-1.0f32..1.0),
            )
        }),
    )
}

fn assert_bitwise(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in want.data().iter().zip(got.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs bitwise: {x} vs {y}"
        );
    }
}

/// Runs `f` under every (kernel choice, thread count) pair and asserts all
/// nine results are bitwise equal to the serial scalar reference.
fn check_all_variants(what: &str, f: impl Fn() -> Matrix) {
    let reference = with_threads(1, || with_kernel(KernelChoice::Scalar, &f));
    for choice in CHOICES {
        for nt in THREAD_COUNTS {
            let got = with_threads(nt, || with_kernel(choice, &f));
            assert_bitwise(&reference, &got, &format!("{what} [{choice:?} @ {nt} threads]"));
        }
    }
}

#[test]
fn matmul_scalar_and_matmul_blocked_agree_on_adversarial_shapes() {
    let mut rng = StdRng::seed_from_u64(0xAC01);
    for case in 0..CASES {
        let (m, k, n) =
            (adversarial_dim(&mut rng), adversarial_dim(&mut rng), adversarial_dim(&mut rng));
        let a = adversarial_matrix(&mut rng, m, k);
        let b = adversarial_matrix(&mut rng, k, n);
        check_all_variants(&format!("matmul case {case}: {m}x{k}x{n}"), || a.matmul(&b));
    }
}

#[test]
fn matmul_tn_scalar_and_matmul_tn_blocked_agree_on_adversarial_shapes() {
    let mut rng = StdRng::seed_from_u64(0xAC02);
    for case in 0..CASES {
        let (m, k, n) =
            (adversarial_dim(&mut rng), adversarial_dim(&mut rng), adversarial_dim(&mut rng));
        let a = adversarial_matrix(&mut rng, k, m);
        let b = adversarial_matrix(&mut rng, k, n);
        check_all_variants(&format!("matmul_tn case {case}: {m}x{k}x{n}"), || a.matmul_tn(&b));
    }
}

#[test]
fn matmul_nt_scalar_and_matmul_nt_blocked_agree_on_adversarial_shapes() {
    let mut rng = StdRng::seed_from_u64(0xAC03);
    for case in 0..CASES {
        let (m, k, n) =
            (adversarial_dim(&mut rng), adversarial_dim(&mut rng), adversarial_dim(&mut rng));
        let a = adversarial_matrix(&mut rng, m, k);
        let b = adversarial_matrix(&mut rng, n, k);
        check_all_variants(&format!("matmul_nt case {case}: {m}x{k}x{n}"), || a.matmul_nt(&b));
    }
}

#[test]
fn spmm_scalar_and_spmm_blocked_agree_on_adversarial_shapes() {
    let mut rng = StdRng::seed_from_u64(0xAC04);
    for case in 0..CASES {
        let (m, k, n) =
            (adversarial_dim(&mut rng), adversarial_dim(&mut rng), adversarial_dim(&mut rng));
        let a = adversarial_csr(&mut rng, m, k);
        let x = adversarial_matrix(&mut rng, k, n);
        check_all_variants(
            &format!("spmm case {case}: {m}x{k}x{n} nnz={}", a.nnz()),
            || a.matmul_dense(&x),
        );
    }
}

#[test]
fn env_override_shapes_are_covered_by_fixed_seams() {
    // Deterministic seam shapes that the random draw might miss: exact
    // tile widths, one past them, the KC k-slab boundary, and n = 1
    // (the column-vector case the dispatch table keeps scalar).
    let mut rng = StdRng::seed_from_u64(0xAC05);
    for (m, k, n) in [
        (4, 256, 32),
        (5, 257, 33),
        (2, 512, 40),
        (8, 300, 8),
        (3, 300, 1),
        (1, 1, 1),
        (9, 16, 7),
    ] {
        let a = adversarial_matrix(&mut rng, m, k);
        let b = adversarial_matrix(&mut rng, k, n);
        check_all_variants(&format!("seam matmul {m}x{k}x{n}"), || a.matmul(&b));
        let at = adversarial_matrix(&mut rng, k, m);
        check_all_variants(&format!("seam matmul_tn {m}x{k}x{n}"), || at.matmul_tn(&b));
        let bt = adversarial_matrix(&mut rng, n, k);
        check_all_variants(&format!("seam matmul_nt {m}x{k}x{n}"), || a.matmul_nt(&bt));
        let s = adversarial_csr(&mut rng, m, k);
        check_all_variants(&format!("seam spmm {m}x{k}x{n}"), || s.matmul_dense(&b));
    }
}
