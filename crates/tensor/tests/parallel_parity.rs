//! Serial vs. parallel kernel parity and gradient checks.
//!
//! The parallel backend (`autoac_tensor::parallel`) must be invisible to
//! numerics: for any thread count, `Matrix::matmul`, `Csr::matmul_dense`,
//! `Csr::transpose`, and the `spmm` backward pass must match the serial
//! kernels — the row-chunked execution runs the identical per-row loops, so
//! the match is bitwise, and the 1e-6 tolerance demanded by the acceptance
//! criteria is checked on top as a belt-and-suspenders bound.

use std::rc::Rc;

use autoac_tensor::parallel::with_threads;
use autoac_tensor::{spmm, Csr, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect())
}

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, nnz: usize) -> Csr {
    Csr::from_coo(
        rows,
        cols,
        (0..nnz).map(|_| {
            (
                rng.gen_range(0..rows) as u32,
                rng.gen_range(0..cols) as u32,
                rng.gen_range(-1.0f32..1.0),
            )
        }),
    )
}

fn assert_close(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!((x - y).abs() < 1e-6, "{what}: element {i} differs: {x} vs {y}");
    }
}

#[test]
fn spmm_forward_parity_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(11);
    for (rows, cols, feat, nnz) in [(5, 7, 3, 9), (64, 48, 16, 400), (300, 200, 32, 4000)] {
        let a = random_csr(&mut rng, rows, cols, nnz);
        let x = random_matrix(&mut rng, cols, feat);
        let serial = with_threads(1, || a.matmul_dense(&x));
        for nt in THREAD_COUNTS {
            let parallel = with_threads(nt, || a.matmul_dense(&x));
            assert_close(&serial, &parallel, &format!("matmul_dense @ {nt} threads"));
            assert_eq!(serial, parallel, "matmul_dense must be bitwise equal at {nt} threads");
        }
    }
}

#[test]
fn dense_matmul_parity_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(12);
    for (m, k, n) in [(3, 4, 5), (33, 17, 29), (120, 64, 80)] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let serial = with_threads(1, || a.matmul(&b));
        for nt in THREAD_COUNTS {
            let parallel = with_threads(nt, || a.matmul(&b));
            assert_close(&serial, &parallel, &format!("matmul @ {nt} threads"));
            assert_eq!(serial, parallel, "matmul must be bitwise equal at {nt} threads");
        }
    }
}

#[test]
fn transpose_parity_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(13);
    for (rows, cols, nnz) in [(4, 6, 5), (80, 50, 700), (500, 300, 6000)] {
        let a = random_csr(&mut rng, rows, cols, nnz);
        let serial = with_threads(1, || a.transpose());
        for nt in THREAD_COUNTS {
            let parallel = with_threads(nt, || a.transpose());
            assert_eq!(serial, parallel, "transpose must be identical at {nt} threads");
        }
        // Still an involution under the parallel path.
        for nt in THREAD_COUNTS {
            with_threads(nt, || assert_eq!(a.transpose().transpose(), a));
        }
    }
}

#[test]
fn spmm_gradient_is_transpose_product_under_both_paths() {
    let mut rng = StdRng::seed_from_u64(14);
    let a = Rc::new(random_csr(&mut rng, 40, 30, 250));
    let xm = random_matrix(&mut rng, 30, 8);
    for nt in THREAD_COUNTS {
        let (grad, want) = with_threads(nt, || {
            let at = Rc::new(a.transpose());
            let x = Tensor::param(xm.clone());
            spmm(&a, &at, &x).sum().backward();
            // d/dx sum(A x) = Aᵀ · 1.
            let want = at.matmul_dense(&Matrix::ones(a.n_rows(), xm.cols()));
            (x.grad().unwrap(), want)
        });
        assert_close(&grad, &want, &format!("spmm gradient @ {nt} threads"));
    }
    // Serial and parallel gradients agree bitwise.
    let grad_at = |nt: usize| {
        with_threads(nt, || {
            let at = Rc::new(a.transpose());
            let x = Tensor::param(xm.clone());
            spmm(&a, &at, &x).sum().backward();
            x.grad().unwrap()
        })
    };
    let serial = grad_at(1);
    for nt in THREAD_COUNTS {
        assert_eq!(serial, grad_at(nt), "spmm gradient must be bitwise equal at {nt} threads");
    }
}

#[test]
fn finite_difference_gradcheck_through_spmm() {
    // Full numerical gradcheck of loss = sum((A x)²)/2 under the parallel
    // path: dL/dx = Aᵀ (A x).
    let mut rng = StdRng::seed_from_u64(15);
    let a = Rc::new(random_csr(&mut rng, 12, 9, 40));
    let xm = random_matrix(&mut rng, 9, 4);
    for nt in THREAD_COUNTS {
        with_threads(nt, || {
            let x = Tensor::param(xm.clone());
            let at = Rc::new(a.transpose());
            let out = spmm(&a, &at, &x);
            out.mul(&out).sum().scale(0.5).backward();
            let analytic = x.grad().unwrap();

            let loss = |m: &Matrix| -> f64 {
                a.matmul_dense(m).data().iter().map(|&v| (v as f64).powi(2)).sum::<f64>() * 0.5
            };
            let eps = 1e-3f32;
            for i in 0..xm.data().len() {
                let mut plus = xm.clone();
                plus.data_mut()[i] += eps;
                let mut minus = xm.clone();
                minus.data_mut()[i] -= eps;
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps as f64);
                let got = analytic.data()[i] as f64;
                assert!(
                    (numeric - got).abs() < 1e-2,
                    "gradcheck @ {nt} threads, element {i}: numeric {numeric} vs analytic {got}"
                );
            }
        });
    }
}
