//! Property and parity tests for the buffer-recycling pool
//! (`autoac_tensor::pool`).
//!
//! Three independent guarantees are exercised here:
//!
//! 1. **No aliasing**: two live matrices never share a pooled buffer, no
//!    matter how allocations and drops interleave (proptest over random
//!    schedules).
//! 2. **Reinitialization**: a recycled buffer handed back through
//!    `zeros`/`full` carries no stale contents.
//! 3. **Bitwise invisibility**: a training loop — fused linear layers,
//!    gather/scatter, group softmax, Adam with gradient clipping — produces
//!    bit-identical losses, weights, and gradients with the pool on or off,
//!    at 1, 2, and 8 threads.

use autoac_tensor::parallel::with_threads;
use autoac_tensor::{init, pool, Act, Adam, AdamConfig, Matrix, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// Random alloc/drop schedules: surviving matrices keep their fill
    /// value and occupy pairwise-distinct buffers. In debug builds the
    /// poison fill on release-to-pool makes any aliasing loudly visible
    /// (a kept matrix would read back NaN), on top of the pointer check.
    #[test]
    fn live_matrices_never_alias(
        specs in proptest::collection::vec((1usize..24, 1usize..24, 0usize..2), 1..48)
    ) {
        pool::with_pool(true, || {
            let mut live: Vec<(Matrix, f32)> = Vec::new();
            for (i, &(r, c, keep)) in specs.iter().enumerate() {
                let v = i as f32 + 0.5;
                // Alternate construction paths so both the fill and the
                // elementwise kernels hand out pooled buffers.
                let m = if i % 2 == 0 {
                    Matrix::full(r, c, v)
                } else {
                    Matrix::full(r, c, v - 1.0).map(|x| x + 1.0)
                };
                if keep == 1 {
                    live.push((m, v));
                } // else: dropped here, buffer returns to the pool
            }
            for (m, v) in &live {
                prop_assert!(
                    m.data().iter().all(|x| x == v),
                    "a live matrix lost its contents (aliased buffer?)"
                );
            }
            for i in 0..live.len() {
                for j in i + 1..live.len() {
                    prop_assert!(
                        !std::ptr::eq(live[i].0.data().as_ptr(), live[j].0.data().as_ptr()),
                        "two live matrices share one buffer"
                    );
                }
            }
        });
    }
}

/// Recycled buffers come back fully reinitialized through the value-filled
/// constructors — no stale data leaks across alloc/free cycles.
#[test]
fn recycled_buffers_are_reinitialized() {
    pool::with_pool(true, || {
        for round in 0..4 {
            let m = Matrix::full(13, 7, 42.0 + round as f32);
            drop(m); // returns the (poisoned, in debug) buffer to the pool
            let z = Matrix::zeros(13, 7);
            assert!(z.data().iter().all(|&x| x == 0.0), "zeros leaked stale data");
            let o = Matrix::full(13, 7, 1.0);
            assert!(o.data().iter().all(|&x| x == 1.0), "full leaked stale data");
        }
    });
}

/// A small but representative training loop: two fused linear layers, a
/// gather → attention → group-softmax → scatter block (the SimpleHGN
/// message-passing shape), NLL loss, Adam with gradient clipping. Returns
/// the bit patterns of every per-step loss, every final parameter, and the
/// first step's input gradient.
fn train_like(seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 24usize;
    let x = Tensor::constant(init::random_uniform(n, 12, -1.0, 1.0, &mut rng));
    let w1 = Tensor::param(init::xavier_uniform(12, 8, &mut rng));
    let b1 = Tensor::param(Matrix::zeros(1, 8));
    let w2 = Tensor::param(init::xavier_uniform(8, 4, &mut rng));
    let a = Tensor::param(init::xavier_uniform(8, 1, &mut rng));

    // A fixed ring of "edges" so gather/scatter/group_softmax all run.
    let src: Vec<u32> = (0..n as u32).chain(0..n as u32).collect();
    let dst: Vec<u32> = (0..n as u32).map(|i| (i + 1) % n as u32).chain(0..n as u32).collect();
    let targets: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
    let rows: Vec<u32> = (0..n as u32).collect();

    let params = vec![w1.clone(), b1.clone(), w2.clone(), a.clone()];
    let mut opt = Adam::new(params.clone(), AdamConfig::with(1e-2, 1e-4));
    let mut bits = Vec::new();
    for step in 0..5 {
        opt.zero_grad();
        let h = x.linear(&w1, Some(&b1), Act::Relu);
        let zs = h.gather_rows(&src);
        let att = zs.matmul(&a).leaky_relu(0.05).group_softmax(&dst, n);
        let agg = zs.mul_col_vec(&att).scatter_add_rows(&dst, n);
        let logits = agg.linear(&w2, None, Act::Identity);
        let loss = logits.log_softmax_rows().nll_loss_rows(&targets, &rows);
        loss.backward();
        if step == 0 {
            let g = w1.grad().expect("w1 gradient");
            bits.extend(g.data().iter().map(|v| v.to_bits()));
        }
        opt.clip_grad_norm(1.0);
        opt.step();
        bits.push(loss.item().to_bits());
    }
    for p in &params {
        bits.extend(p.value().data().iter().map(|v| v.to_bits()));
    }
    bits
}

/// The pool must be bitwise invisible: pool on vs off, at every thread
/// count, the training trajectory (losses, gradients, final weights) is
/// identical bit for bit.
#[test]
fn training_is_bitwise_identical_pool_on_off_across_threads() {
    let reference = with_threads(1, || pool::with_pool(false, || train_like(7)));
    for nt in [1usize, 2, 8] {
        for on in [false, true] {
            let got = with_threads(nt, || pool::with_pool(on, || train_like(7)));
            assert_eq!(
                reference, got,
                "trajectory diverged at {nt} threads with pool {}",
                if on { "on" } else { "off" }
            );
        }
    }
}

/// Analytic gradients of a fused-linear stack agree with central finite
/// differences *while the pool is recycling buffers* — the in-place
/// backward accumulation never reads stale pooled memory.
#[test]
fn gradcheck_passes_with_pool_enabled() {
    const EPS: f32 = 2e-3;
    const TOL: f32 = 2e-2;
    pool::with_pool(true, || {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::constant(init::xavier_uniform(5, 3, &mut rng));
        let b = Tensor::constant(init::random_uniform(1, 3, -0.1, 0.1, &mut rng));
        let forward = |p: &Tensor| p.linear(&w, Some(&b), Act::Tanh).square().sum();
        let input = init::random_uniform(4, 5, -1.0, 1.0, &mut rng);

        let p = Tensor::param(input.clone());
        forward(&p).backward();
        let analytic = p.grad().expect("gradient must exist");
        for r in 0..4 {
            for c in 0..5 {
                let mut plus = input.clone();
                plus.set(r, c, plus.get(r, c) + EPS);
                let mut minus = input.clone();
                minus.set(r, c, minus.get(r, c) - EPS);
                let fp = forward(&Tensor::param(plus)).item();
                let fm = forward(&Tensor::param(minus)).item();
                let numeric = (fp - fm) / (2.0 * EPS);
                let a = analytic.get(r, c);
                let denom = 1.0f32.max(a.abs()).max(numeric.abs());
                assert!(
                    (a - numeric).abs() / denom < TOL,
                    "grad mismatch at ({r},{c}): analytic {a} vs numeric {numeric}"
                );
            }
        }
    });
}

/// The same backward pass yields bit-identical gradients with the pool on
/// and off (gradcheck parity at the bit level, not just tolerance).
#[test]
fn gradients_bitwise_identical_pool_on_vs_off() {
    let grads = |on: bool| {
        pool::with_pool(on, || {
            let mut rng = StdRng::seed_from_u64(9);
            let w = Tensor::param(init::xavier_uniform(6, 4, &mut rng));
            let b = Tensor::param(Matrix::zeros(1, 4));
            let x = Tensor::param(init::random_uniform(8, 6, -1.0, 1.0, &mut rng));
            let y = x.linear(&w, Some(&b), Act::Elu);
            y.softmax_rows().square().sum().backward();
            [&x, &w, &b]
                .iter()
                .map(|p| {
                    p.grad()
                        .expect("gradient")
                        .data()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<u32>>()
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(grads(false), grads(true));
}
