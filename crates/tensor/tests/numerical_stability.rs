//! Regression tests for numerical stability of the softmax family under
//! extreme logits (±1e4, where a naive `exp` overflows to infinity).
//!
//! The fused kernels subtract the per-row / per-group maximum before
//! exponentiating, so outputs must stay finite, non-negative, and
//! normalized — no NaN or Inf anywhere, including gradients.

use autoac_tensor::{Matrix, Tensor};

fn assert_finite(data: &[f32], what: &str) {
    for (i, v) in data.iter().enumerate() {
        assert!(v.is_finite(), "{what}: element {i} is {v}");
    }
}

#[test]
fn softmax_rows_survives_large_logits() {
    let m = Matrix::from_rows(&[
        &[1e4, -1e4, 0.0],
        &[-1e4, -1e4, -1e4],
        &[1e4, 1e4, 1e4],
        &[3.0, -2.0, 0.5],
    ]);
    let s = m.softmax_rows();
    assert_finite(s.data(), "softmax_rows");
    for r in 0..s.rows() {
        let sum: f32 = s.row(r).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        assert!(s.row(r).iter().all(|&v| v >= 0.0), "row {r} has negatives");
    }
    // The dominant logit takes essentially all the mass.
    assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
}

#[test]
fn log_softmax_rows_survives_large_logits() {
    let m = Matrix::from_rows(&[&[1e4, -1e4, 0.0], &[-1e4, 1e4, -1e4]]);
    let ls = m.log_softmax_rows();
    assert_finite(ls.data(), "log_softmax_rows");
    // Log-probabilities are ≤ 0; the winner is ≈ 0.
    assert!(ls.data().iter().all(|&v| v <= 0.0));
    assert!(ls.get(0, 0).abs() < 1e-5);
    assert!(ls.get(1, 1).abs() < 1e-5);
}

#[test]
fn tensor_softmax_backward_finite_at_large_logits() {
    let x = Tensor::param(Matrix::from_rows(&[&[1e4, -1e4, 0.0], &[2.0, -3.0, 1e4]]));
    let y = x.softmax_rows();
    assert_finite(&y.value().data().to_vec(), "softmax forward");
    y.square().sum().backward();
    let g = x.grad().expect("gradient");
    assert_finite(g.data(), "softmax backward");
}

#[test]
fn group_softmax_survives_large_logits() {
    // Three groups; group 0 spans mixed ±1e4 scores, group 1 is all −1e4,
    // group 2 is a single huge score.
    let scores = Matrix::from_vec(6, 1, vec![1e4, -1e4, 0.0, -1e4, -1e4, 1e4]);
    let group = [0u32, 0, 0, 1, 1, 2];
    let x = Tensor::param(scores);
    let att = x.group_softmax(&group, 3);
    let a = att.to_matrix();
    assert_finite(a.data(), "group_softmax");
    let mut sums = [0.0f32; 3];
    for (i, &gid) in group.iter().enumerate() {
        assert!(a.data()[i] >= 0.0, "negative attention weight at {i}");
        sums[gid as usize] += a.data()[i];
    }
    for (gid, s) in sums.iter().enumerate() {
        assert!((s - 1.0).abs() < 1e-5, "group {gid} sums to {s}");
    }
    att.square().sum().backward();
    assert_finite(x.grad().expect("gradient").data(), "group_softmax backward");
}

#[test]
fn cross_entropy_survives_large_logits() {
    let logits = Tensor::param(Matrix::from_rows(&[&[1e4, -1e4], &[-1e4, 1e4]]));
    let loss = logits.cross_entropy_rows(&[0, 1], &[0, 1]);
    assert!(loss.item().is_finite(), "loss is {}", loss.item());
    loss.backward();
    assert_finite(logits.grad().expect("gradient").data(), "cross-entropy backward");
}
