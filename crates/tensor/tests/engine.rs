//! Engine-level behaviour tests: autograd bookkeeping, evaluation mode,
//! dropout semantics, optimizer interactions — the parts gradcheck.rs
//! doesn't cover.

use autoac_tensor::{no_grad, Adam, AdamConfig, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn no_grad_nests_and_restores() {
    let p = Tensor::param(Matrix::ones(1, 1));
    no_grad(|| {
        let a = p.add(&p);
        assert!(!a.requires_grad());
        no_grad(|| {
            let b = p.add(&p);
            assert!(!b.requires_grad());
        });
        // Still disabled after the inner scope.
        let c = p.add(&p);
        assert!(!c.requires_grad());
    });
    // Re-enabled outside.
    let d = p.add(&p);
    assert!(d.requires_grad());
}

#[test]
fn detach_blocks_gradient_flow() {
    let p = Tensor::param(Matrix::from_vec(1, 1, vec![2.0]));
    let y = p.detach().square().sum();
    y.backward();
    assert!(p.grad().is_none(), "detached tensors must not propagate");
}

#[test]
fn backward_with_explicit_seed() {
    let p = Tensor::param(Matrix::ones(2, 2));
    let y = p.scale(3.0);
    y.backward_with(Matrix::full(2, 2, 2.0));
    let g = p.grad().unwrap();
    assert!(g.data().iter().all(|&v| (v - 6.0).abs() < 1e-6));
}

#[test]
fn dropout_eval_mode_is_identity() {
    let mut rng = StdRng::seed_from_u64(0);
    let p = Tensor::param(Matrix::full(10, 10, 1.0));
    let out = p.dropout(0.7, false, &mut rng);
    assert_eq!(out.to_matrix(), p.to_matrix());
}

#[test]
fn dropout_train_mode_scales_survivors() {
    let mut rng = StdRng::seed_from_u64(1);
    let p = Tensor::param(Matrix::full(50, 50, 1.0));
    let out = p.dropout(0.5, true, &mut rng).to_matrix();
    let kept: Vec<f32> = out.data().iter().copied().filter(|&v| v != 0.0).collect();
    assert!(!kept.is_empty());
    assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-6), "survivors scale by 1/(1-p)");
    // Expectation preserved within tolerance.
    let mean = out.mean();
    assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
}

#[test]
fn dropout_zero_probability_is_identity() {
    let mut rng = StdRng::seed_from_u64(2);
    let p = Tensor::param(Matrix::full(4, 4, 3.0));
    let out = p.dropout(0.0, true, &mut rng);
    assert_eq!(out.to_matrix(), p.to_matrix());
}

#[test]
fn group_softmax_handles_empty_groups() {
    // Groups 0 and 2 are populated; group 1 is empty.
    let scores = Tensor::param(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
    let out = scores.group_softmax(&[0, 0, 2], 3).to_matrix();
    assert!((out.get(0, 0) + out.get(1, 0) - 1.0).abs() < 1e-6);
    assert!((out.get(2, 0) - 1.0).abs() < 1e-6);
}

#[test]
fn adam_handles_mixed_grad_presence() {
    let a = Tensor::param(Matrix::from_vec(1, 1, vec![1.0]));
    let b = Tensor::param(Matrix::from_vec(1, 1, vec![1.0]));
    let mut opt = Adam::new(vec![a.clone(), b.clone()], AdamConfig::with(0.1, 0.0));
    // Only `a` participates in the loss.
    a.square().sum().backward();
    opt.step();
    assert!(a.item() < 1.0, "a must move");
    assert_eq!(b.item(), 1.0, "b must not move without a gradient");
}

#[test]
fn optimizer_state_survives_zero_grad() {
    // Momentum must persist across steps (not be reset by zero_grad).
    let x = Tensor::param(Matrix::from_vec(1, 1, vec![10.0]));
    let mut opt = Adam::new(vec![x.clone()], AdamConfig::with(0.5, 0.0));
    let mut prev = x.item();
    let mut speeds = Vec::new();
    for _ in 0..5 {
        opt.zero_grad();
        x.square().sum().backward();
        opt.step();
        speeds.push((prev - x.item()).abs());
        prev = x.item();
    }
    // With momentum building up, later steps are not all smaller than the
    // first despite the shrinking gradient.
    assert!(speeds.iter().skip(1).any(|&s| s >= speeds[0] * 0.5), "{speeds:?}");
}

#[test]
fn graph_reuse_across_multiple_backwards() {
    // Two different losses built from the same intermediate must each get
    // correct leaf gradients when computed in separate passes.
    let p = Tensor::param(Matrix::from_vec(1, 1, vec![2.0]));
    let shared = p.square(); // 4
    shared.sum().backward();
    assert_eq!(p.grad().unwrap().data()[0], 4.0); // d(x²)/dx = 2x
    p.zero_grad();
    let other = shared.scale(3.0); // graph extended after first backward
    other.sum().backward();
    assert_eq!(p.grad().unwrap().data()[0], 12.0);
}

#[test]
fn scalar_helpers() {
    let s = Tensor::scalar(4.25);
    assert_eq!(s.item(), 4.25);
    assert_eq!(s.shape(), (1, 1));
    assert!(!s.requires_grad());
}

#[test]
fn set_value_shape_guard() {
    let p = Tensor::param(Matrix::zeros(2, 3));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.set_value(Matrix::zeros(3, 2));
    }));
    assert!(result.is_err(), "shape mismatch must panic");
}

#[test]
fn mean_rows_and_frob_inner() {
    let x = Tensor::param(Matrix::from_rows(&[&[1.0, 3.0], &[5.0, 7.0]]));
    let m = x.mean_rows().to_matrix();
    assert_eq!(m.data(), &[2.0, 6.0]);
    let y = Tensor::constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
    assert_eq!(x.frob_inner(&y).item(), 8.0); // 1 + 7
}
