//! Span nesting across `for_each_row_chunk` worker threads.
//!
//! Worker threads cannot see the launcher's thread-local obs override, so
//! this test arms obs with the process-global force switch — and therefore
//! lives alone in its own test binary (test binaries are separate
//! processes; tests *within* one binary share the force switch and the
//! global span accumulator).

use autoac_tensor::parallel::{for_each_row_chunk, with_threads};

#[test]
fn worker_spans_nest_under_the_launching_call_site() {
    autoac_obs::set_force(Some(true));
    let _ = autoac_obs::drain();

    let rows = 64usize;
    let width = 8usize;
    let mut data = vec![0.0f32; rows * width];
    {
        let _outer = autoac_obs::span("launch");
        // Force real workers regardless of AUTOAC_NUM_THREADS.
        with_threads(4, || {
            // work=1M clears any parallelism threshold.
            for_each_row_chunk(&mut data, width, 1_000_000, |first_row, chunk| {
                let _k = autoac_obs::span("worker_kernel");
                for (i, row) in chunk.chunks_mut(width).enumerate() {
                    row.fill((first_row + i) as f32);
                }
            });
        });
    }
    let rep = autoac_obs::drain();
    autoac_obs::set_force(None);

    // The kernel ran correctly in parallel.
    for r in 0..rows {
        assert!(data[r * width..(r + 1) * width].iter().all(|&v| v == r as f32));
    }

    let launch = rep.span("launch").expect("launcher span recorded");
    assert_eq!(launch.count, 1);
    let nested = rep
        .span("launch/worker_kernel")
        .expect("worker span must nest under the adopted launcher path");
    assert_eq!(
        nested.count, 4,
        "one worker_kernel span per worker thread; got:\n{}",
        rep.render_tree()
    );
    // No orphaned top-level worker_kernel: adoption placed every one.
    assert!(
        rep.span("worker_kernel").is_none(),
        "worker spans must not surface at the root:\n{}",
        rep.render_tree()
    );

    // Real kernels adopt too: a matmul launched inside a span nests there.
    autoac_obs::set_force(Some(true));
    let _ = autoac_obs::drain();
    let a = autoac_tensor::Matrix::from_vec(32, 32, vec![1.0; 32 * 32]);
    {
        let _outer = autoac_obs::span("launch");
        let _c = with_threads(4, || a.matmul(&a));
    }
    let rep = autoac_obs::drain();
    autoac_obs::set_force(None);
    let mm = rep.span("launch/matmul").expect("matmul span nests under launch");
    assert_eq!(mm.count, 1);
}
