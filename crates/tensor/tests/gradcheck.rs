//! Finite-difference gradient checks for every differentiable op.
//!
//! Each check builds a scalar loss from the op under test, computes the
//! analytic gradient via `backward`, and compares against central finite
//! differences of the forward pass. This is the single most important test
//! file in the tensor crate: if these pass, the whole GNN stack trains
//! against correct gradients.

use std::rc::Rc;

use autoac_tensor::{spmm, Csr, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 2e-3;
const TOL: f32 = 2e-2;

/// Checks d(loss)/d(param) against central differences.
///
/// `forward` must rebuild the full graph from the given leaf each call.
fn gradcheck(init: Matrix, forward: impl Fn(&Tensor) -> Tensor) {
    let p = Tensor::param(init.clone());
    let loss = forward(&p);
    loss.backward();
    let analytic = p.grad().expect("gradient must exist");

    let (rows, cols) = init.shape();
    for r in 0..rows {
        for c in 0..cols {
            let mut plus = init.clone();
            plus.set(r, c, plus.get(r, c) + EPS);
            let mut minus = init.clone();
            minus.set(r, c, minus.get(r, c) - EPS);
            let fp = forward(&Tensor::param(plus)).item();
            let fm = forward(&Tensor::param(minus)).item();
            let numeric = (fp - fm) / (2.0 * EPS);
            let a = analytic.get(r, c);
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < TOL,
                "grad mismatch at ({r},{c}): analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn test_input(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    autoac_tensor::init::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

#[test]
fn grad_add_sub() {
    let other = Tensor::constant(test_input(3, 4, 10));
    gradcheck(test_input(3, 4, 1), |p| p.add(&other).sub(&other.scale(0.5)).square().sum());
}

#[test]
fn grad_mul_elementwise() {
    let other = Tensor::constant(test_input(3, 4, 11));
    gradcheck(test_input(3, 4, 2), |p| p.mul(&other).sum());
}

#[test]
fn grad_mul_both_sides() {
    // p appears on both sides of the Hadamard product: p ∘ p.
    gradcheck(test_input(2, 3, 3), |p| p.mul(p).sum());
}

#[test]
fn grad_mul_scalar_tensor_data() {
    let s = Tensor::constant(Matrix::from_vec(1, 1, vec![0.7]));
    gradcheck(test_input(3, 4, 60), |p| p.mul_scalar_tensor(&s).square().sum());
}

#[test]
fn grad_mul_scalar_tensor_scalar() {
    let x = Tensor::constant(test_input(3, 4, 61));
    gradcheck(test_input(1, 1, 62), |p| x.mul_scalar_tensor(p).square().sum());
}

#[test]
fn grad_matmul_left() {
    let w = Tensor::constant(test_input(4, 5, 12));
    gradcheck(test_input(3, 4, 4), |p| p.matmul(&w).square().sum());
}

#[test]
fn grad_matmul_right() {
    let x = Tensor::constant(test_input(3, 4, 13));
    gradcheck(test_input(4, 2, 5), |p| x.matmul(p).square().sum());
}

#[test]
fn grad_transpose() {
    let w = Tensor::constant(test_input(3, 2, 14));
    gradcheck(test_input(3, 4, 6), |p| p.transpose().matmul(&w).sum());
}

#[test]
fn grad_add_row_vec_bias() {
    let x = Tensor::constant(test_input(5, 3, 15));
    gradcheck(test_input(1, 3, 7), |p| x.add_row_vec(p).square().sum());
}

#[test]
fn grad_mul_col_vec_data() {
    let col = Tensor::constant(test_input(4, 1, 16));
    gradcheck(test_input(4, 3, 8), |p| p.mul_col_vec(&col).square().sum());
}

#[test]
fn grad_mul_col_vec_weights() {
    let x = Tensor::constant(test_input(4, 3, 17));
    gradcheck(test_input(4, 1, 9), |p| x.mul_col_vec(p).square().sum());
}

#[test]
fn grad_rowwise_dot() {
    let other = Tensor::constant(test_input(4, 3, 18));
    gradcheck(test_input(4, 3, 20), |p| p.rowwise_dot(&other).square().sum());
}

#[test]
fn grad_concat_cols() {
    let other = Tensor::constant(test_input(3, 2, 19));
    gradcheck(test_input(3, 2, 21), |p| {
        Tensor::concat_cols(&[p, &other, p]).square().sum()
    });
}

#[test]
fn grad_concat_rows() {
    let other = Tensor::constant(test_input(2, 3, 22));
    gradcheck(test_input(2, 3, 23), |p| Tensor::concat_rows(&[&other, p]).square().sum());
}

#[test]
fn grad_slice_cols() {
    gradcheck(test_input(3, 5, 24), |p| p.slice_cols(1, 3).square().sum());
}

#[test]
fn grad_relu() {
    // Shift away from 0 to avoid the kink.
    let mut init = test_input(3, 4, 25);
    init.map_assign(|v| if v.abs() < 0.05 { v + 0.2 } else { v });
    gradcheck(init, |p| p.relu().square().sum());
}

#[test]
fn grad_leaky_relu() {
    let mut init = test_input(3, 4, 26);
    init.map_assign(|v| if v.abs() < 0.05 { v + 0.2 } else { v });
    gradcheck(init, |p| p.leaky_relu(0.05).square().sum());
}

#[test]
fn grad_elu() {
    let mut init = test_input(3, 4, 27);
    init.map_assign(|v| if v.abs() < 0.05 { v + 0.2 } else { v });
    gradcheck(init, |p| p.elu().square().sum());
}

#[test]
fn grad_sigmoid_tanh() {
    gradcheck(test_input(3, 4, 28), |p| p.sigmoid().mul(&p.tanh()).sum());
}

#[test]
fn grad_exp_ln() {
    let init = test_input(3, 3, 29).map(|v| v.abs() + 0.5);
    gradcheck(init, |p| p.exp().sum().add(&p.ln().sum()));
}

#[test]
fn grad_sqrt_square() {
    let init = test_input(3, 3, 30).map(|v| v.abs() + 0.5);
    gradcheck(init, |p| p.sqrt().sum().add(&p.square().sum()));
}

#[test]
fn grad_softmax_rows() {
    let target = Tensor::constant(test_input(3, 5, 31));
    gradcheck(test_input(3, 5, 32), |p| p.softmax_rows().mul(&target).sum());
}

#[test]
fn grad_log_softmax_rows() {
    let target = Tensor::constant(test_input(3, 5, 33));
    gradcheck(test_input(3, 5, 34), |p| p.log_softmax_rows().mul(&target).sum());
}

#[test]
fn grad_sum_rows_cols_mean() {
    let w = Tensor::constant(test_input(1, 4, 35));
    gradcheck(test_input(4, 4, 36), |p| {
        let a = p.sum_rows().square().sum();
        let b = p.sum_cols().mul(&w).sum();
        let c = p.mean();
        a.add(&b).add(&c)
    });
}

#[test]
fn grad_frobenius() {
    let init = test_input(3, 3, 37).map(|v| v + 2.0); // keep norm away from 0
    gradcheck(init, |p| p.frob());
}

#[test]
fn grad_gather_rows() {
    let idx = vec![2u32, 0, 2, 1, 2];
    gradcheck(test_input(3, 4, 38), |p| p.gather_rows(&idx).square().sum());
}

#[test]
fn grad_scatter_add_rows() {
    let idx = vec![1u32, 1, 0, 2];
    gradcheck(test_input(4, 3, 39), |p| p.scatter_add_rows(&idx, 3).square().sum());
}

#[test]
fn grad_segment_mean() {
    let idx = vec![0u32, 0, 1, 2, 2, 2];
    gradcheck(test_input(6, 2, 40), |p| p.segment_mean(&idx, 4).square().sum());
}

#[test]
fn grad_group_softmax() {
    let group = vec![0u32, 0, 1, 1, 1, 2];
    let target = Tensor::constant(test_input(6, 1, 41));
    gradcheck(test_input(6, 1, 42), |p| p.group_softmax(&group, 3).mul(&target).sum());
}

#[test]
fn grad_spmm() {
    let a = Rc::new(Csr::from_coo(
        3,
        4,
        vec![(0, 0, 1.0), (0, 2, -0.5), (1, 1, 2.0), (2, 3, 0.7), (2, 0, 0.3)],
    ));
    let at = Rc::new(a.transpose());
    gradcheck(test_input(4, 3, 43), |p| spmm(&a, &at, p).square().sum());
}

#[test]
fn grad_nll_loss_rows() {
    let targets = vec![0u32, 2, 1, 0];
    let rows = vec![0u32, 2, 3];
    gradcheck(test_input(4, 3, 44), |p| {
        p.log_softmax_rows().nll_loss_rows(&targets, &rows)
    });
}

#[test]
fn grad_cross_entropy_matches_manual_composition() {
    let targets = vec![1u32, 0];
    let rows = vec![0u32, 1];
    let init = test_input(2, 3, 45);
    let p1 = Tensor::param(init.clone());
    p1.cross_entropy_rows(&targets, &rows).backward();
    let p2 = Tensor::param(init);
    p2.log_softmax_rows().nll_loss_rows(&targets, &rows).backward();
    let (g1, g2) = (p1.grad().unwrap(), p2.grad().unwrap());
    for (a, b) in g1.data().iter().zip(g2.data()) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn grad_bce_with_logits() {
    let labels = vec![1.0f32, 0.0, 1.0, 0.0, 1.0];
    gradcheck(test_input(5, 1, 46), |p| p.bce_with_logits(&labels));
}

#[test]
fn grad_multilabel_bce_rows() {
    let targets = test_input(4, 3, 63).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    let rows = vec![0u32, 2, 3];
    gradcheck(test_input(4, 3, 64), |p| p.multilabel_bce_rows(&targets, &rows));
}

#[test]
fn grad_mse() {
    let target = test_input(3, 3, 47);
    gradcheck(test_input(3, 3, 48), |p| p.mse(&target));
}

#[test]
fn grad_composite_gnn_like_layer() {
    // One full message-passing layer: gather → score → edge softmax →
    // weighted scatter → nonlinearity → loss. Exercises op composition.
    let src = vec![0u32, 1, 2, 2, 3];
    let dst = vec![1u32, 2, 0, 3, 0];
    let att = Tensor::constant(test_input(3, 1, 49));
    let targets = vec![0u32, 1, 0, 1];
    let rows = vec![0u32, 1, 2, 3];
    gradcheck(test_input(4, 3, 50), |x| {
        let h = x.gather_rows(&src);
        let scores = h.matmul(&att).leaky_relu(0.2);
        let w = scores.group_softmax(&dst, 4);
        let msg = h.mul_col_vec(&w);
        let agg = msg.scatter_add_rows(&dst, 4);
        let out = agg.elu();
        // 3 -> 2 classes via slicing keeps the test self-contained.
        out.slice_cols(0, 2).cross_entropy_rows(&targets, &rows)
    });
}

#[test]
fn grad_neg_and_add_scalar() {
    gradcheck(test_input(3, 4, 70), |p| p.neg().add_scalar(1.5).square().sum());
}

#[test]
fn grad_dropout_deterministic_mask() {
    // Re-seeding the rng inside the closure gives every forward pass the
    // same Bernoulli mask, so finite differences see a fixed linear map.
    gradcheck(test_input(4, 5, 71), |p| {
        let mut rng = StdRng::seed_from_u64(99);
        p.dropout(0.4, true, &mut rng).square().sum()
    });
}

#[test]
fn grad_dropout_eval_mode_is_identity() {
    gradcheck(test_input(3, 3, 72), |p| {
        let mut rng = StdRng::seed_from_u64(99);
        p.dropout(0.4, false, &mut rng).square().sum()
    });
}

#[test]
fn grad_linear_fused_weight_and_bias() {
    use autoac_tensor::Act;
    let x = Tensor::constant(test_input(4, 3, 73));
    let b = Tensor::constant(test_input(1, 2, 74));
    // Gradient w.r.t. the weight through the fused linear+activation op.
    gradcheck(test_input(3, 2, 75), |w| {
        x.linear(w, Some(&b), Act::LeakyRelu(0.2)).square().sum()
    });
    // Gradient w.r.t. the bias row.
    let w = Tensor::constant(test_input(3, 2, 76));
    gradcheck(test_input(1, 2, 77), |b| x.linear(&w, Some(b), Act::Tanh).square().sum());
}

#[test]
fn grad_mean_rows() {
    gradcheck(test_input(3, 5, 78), |p| p.mean_rows().square().sum());
}

#[test]
fn grad_frob_sq_and_frob_inner() {
    gradcheck(test_input(3, 4, 79), |p| p.frob_sq());
    let other = Tensor::constant(test_input(3, 4, 80));
    gradcheck(test_input(3, 4, 81), |p| p.frob_inner(&other));
}
