//! Multi-label F1 metrics. HGB's IMDB task is natively multi-label
//! (movies carry up to five genres); the pipeline in this reproduction
//! uses the single-label simplification (DESIGN.md §1), but the metrics
//! are provided for downstream users and tested against hand-computed
//! references.

use crate::metrics::F1Scores;

/// Computes multi-label Macro/Micro-F1 from thresholded score matrices.
///
/// `scores` and `truth` are `(n, c)` row-major; a label is predicted
/// when its score exceeds `threshold`, and `truth` entries are `{0, 1}`.
pub fn multilabel_f1(
    scores: &[f32],
    truth: &[f32],
    n: usize,
    c: usize,
    threshold: f32,
) -> F1Scores {
    assert_eq!(scores.len(), n * c, "multilabel_f1: score buffer shape mismatch");
    assert_eq!(truth.len(), n * c, "multilabel_f1: truth buffer shape mismatch");
    assert!(n > 0 && c > 0, "multilabel_f1: empty input");
    let mut tp = vec![0usize; c];
    let mut fp = vec![0usize; c];
    let mut fnn = vec![0usize; c];
    for i in 0..n {
        for j in 0..c {
            let p = scores[i * c + j] > threshold;
            let t = truth[i * c + j] > 0.5;
            match (p, t) {
                (true, true) => tp[j] += 1,
                (true, false) => fp[j] += 1,
                (false, true) => fnn[j] += 1,
                (false, false) => {}
            }
        }
    }
    let mut macro_sum = 0.0;
    for j in 0..c {
        let denom = 2 * tp[j] + fp[j] + fnn[j];
        macro_sum += if denom == 0 { 0.0 } else { 2.0 * tp[j] as f64 / denom as f64 };
    }
    let (tp_s, fp_s, fn_s) =
        (tp.iter().sum::<usize>(), fp.iter().sum::<usize>(), fnn.iter().sum::<usize>());
    let denom = 2 * tp_s + fp_s + fn_s;
    F1Scores {
        macro_f1: macro_sum / c as f64,
        micro_f1: if denom == 0 { 0.0 } else { 2.0 * tp_s as f64 / denom as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_multilabel() {
        let truth = [1.0f32, 0.0, 1.0, 0.0, 1.0, 1.0];
        let scores = [0.9f32, 0.1, 0.8, 0.2, 0.7, 0.9];
        let s = multilabel_f1(&scores, &truth, 2, 3, 0.5);
        assert_eq!(s.micro_f1, 1.0);
        assert_eq!(s.macro_f1, 1.0);
    }

    #[test]
    fn hand_computed_case() {
        // n = 2, c = 2.
        // node 0: pred {0}, truth {0,1} → class0 tp, class1 fn
        // node 1: pred {0,1}, truth {1} → class0 fp, class1 tp
        let scores = [0.9f32, 0.1, 0.9, 0.9];
        let truth = [1.0f32, 1.0, 0.0, 1.0];
        let s = multilabel_f1(&scores, &truth, 2, 2, 0.5);
        // class0: tp=1 fp=1 fn=0 → 2/3; class1: tp=1 fp=0 fn=1 → 2/3.
        assert!((s.macro_f1 - 2.0 / 3.0).abs() < 1e-12);
        // micro: tp=2 fp=1 fn=1 → 2·2/(4+1+1) = 2/3.
        assert!((s.micro_f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_negative_prediction_scores_zero_f1_for_positive_truth() {
        let scores = [0.0f32; 4];
        let truth = [1.0f32; 4];
        let s = multilabel_f1(&scores, &truth, 2, 2, 0.5);
        assert_eq!(s.micro_f1, 0.0);
        assert_eq!(s.macro_f1, 0.0);
    }

    #[test]
    fn empty_labels_everywhere_is_zero_not_nan() {
        let scores = [0.0f32; 4];
        let truth = [0.0f32; 4];
        let s = multilabel_f1(&scores, &truth, 2, 2, 0.5);
        assert_eq!(s.micro_f1, 0.0);
        assert!(s.macro_f1 == 0.0);
    }

    #[test]
    fn threshold_moves_precision_recall_tradeoff() {
        let scores = [0.6f32, 0.4, 0.6, 0.4];
        let truth = [1.0f32, 1.0, 1.0, 1.0];
        let loose = multilabel_f1(&scores, &truth, 2, 2, 0.3);
        let strict = multilabel_f1(&scores, &truth, 2, 2, 0.5);
        assert!(loose.micro_f1 > strict.micro_f1);
    }
}
