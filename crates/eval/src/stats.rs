//! Statistics for the result tables: mean ± std aggregation over seeds and
//! Welch's t-test (the paper reports p-values of the improvement over the
//! best baseline).

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Formats `mean ± std` in percent with two decimals (table style).
pub fn mean_std_pct(xs: &[f64]) -> String {
    format!("{:.2}±{:.2}", mean(xs) * 100.0, std_dev(xs) * 100.0)
}

/// Welch's unequal-variances t-test result.
#[derive(Debug, Clone, Copy)]
pub struct TTest {
    /// t statistic (positive when `a` has the larger mean).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// One-sided p-value for "mean(a) > mean(b)".
    pub p_one_sided: f64,
}

/// Welch's t-test comparing two independent samples.
///
/// # Panics
/// Panics if either sample has fewer than two observations.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert!(a.len() >= 2 && b.len() >= 2, "t-test: need ≥ 2 samples per group");
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (std_dev(a).powi(2), std_dev(b).powi(2));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se_sq = va / na + vb / nb;
    if se_sq == 0.0 {
        // Identical constant samples: no evidence either way.
        let p = if ma > mb { 0.0 } else { 1.0 };
        return TTest { t: f64::INFINITY * (ma - mb).signum(), df: na + nb - 2.0, p_one_sided: p };
    }
    let t = (ma - mb) / se_sq.sqrt();
    let df = se_sq * se_sq
        / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = 1.0 - student_t_cdf(t, df);
    TTest { t, df, p_one_sided: p }
}

/// CDF of Student's t distribution via the regularized incomplete beta
/// function.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let ib = 0.5 * reg_inc_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - ib
    } else {
        ib
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes' `betacf`).
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "reg_inc_beta: x outside [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Log-gamma via the Lanczos approximation (g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_symmetry_and_bounds() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let v = reg_inc_beta(2.0, 3.0, 0.3);
        let w = 1.0 - reg_inc_beta(3.0, 2.0, 0.7);
        assert!((v - w).abs() < 1e-12);
        assert_eq!(reg_inc_beta(1.0, 1.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(1.0, 1.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform distribution).
        assert!((reg_inc_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_reference_values() {
        // Standard references: CDF(0) = 0.5 for any df.
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        // df = 1 (Cauchy): CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
        // Large df → normal: CDF(1.96, 10_000) ≈ 0.975.
        assert!((student_t_cdf(1.96, 10_000.0) - 0.975).abs() < 2e-3);
        // Symmetry.
        let c = student_t_cdf(-1.3, 7.0) + student_t_cdf(1.3, 7.0);
        assert!((c - 1.0).abs() < 1e-10);
    }

    #[test]
    fn welch_detects_clear_separation() {
        let a = [0.95, 0.951, 0.949, 0.952, 0.95];
        let b = [0.93, 0.931, 0.929, 0.932, 0.93];
        let t = welch_t_test(&a, &b);
        assert!(t.t > 10.0, "t = {}", t.t);
        assert!(t.p_one_sided < 1e-6, "p = {}", t.p_one_sided);
    }

    #[test]
    fn welch_overlapping_samples_not_significant() {
        let a = [0.90, 0.95, 0.85, 0.92, 0.88];
        let b = [0.91, 0.93, 0.86, 0.90, 0.89];
        let t = welch_t_test(&a, &b);
        assert!(t.p_one_sided > 0.05, "p = {}", t.p_one_sided);
    }

    #[test]
    fn formatting() {
        let s = mean_std_pct(&[0.9515, 0.9525]);
        assert_eq!(s, "95.20±0.07");
    }
}
