//! Classification and ranking metrics used by the paper's evaluation:
//! Macro-F1 / Micro-F1 (node classification), ROC-AUC and MRR (link
//! prediction).

/// Per-class and averaged F1 scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Scores {
    /// Unweighted mean of per-class F1 (sensitive to rare classes).
    pub macro_f1: f64,
    /// F1 computed from pooled counts; equals accuracy in single-label
    /// multi-class classification.
    pub micro_f1: f64,
}

/// Computes Macro/Micro-F1 for single-label predictions.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn f1_scores(pred: &[u32], truth: &[u32], num_classes: usize) -> F1Scores {
    assert_eq!(pred.len(), truth.len(), "f1: length mismatch");
    assert!(!pred.is_empty(), "f1: empty input");
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        let (p, t) = (p as usize, t as usize);
        debug_assert!(p < num_classes && t < num_classes);
        if p == t {
            tp[p] += 1;
        } else {
            fp[p] += 1;
            fnn[t] += 1;
        }
    }
    let mut macro_sum = 0.0;
    for c in 0..num_classes {
        let denom = 2 * tp[c] + fp[c] + fnn[c];
        // Classes absent from both pred and truth contribute F1 = 0, as in
        // scikit-learn's default.
        let f1 = if denom == 0 { 0.0 } else { 2.0 * tp[c] as f64 / denom as f64 };
        macro_sum += f1;
    }
    let tp_total: usize = tp.iter().sum();
    F1Scores {
        macro_f1: macro_sum / num_classes as f64,
        micro_f1: tp_total as f64 / pred.len() as f64,
    }
}

/// Area under the ROC curve for binary scores (probability of ranking a
/// random positive above a random negative; ties count half).
///
/// # Panics
/// Panics if either class is empty.
pub fn roc_auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    let mut pairs: Vec<(f32, f32)> =
        scores.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores must not be NaN"));
    // Rank-sum (Mann–Whitney) formulation with midranks for ties.
    let n = pairs.len();
    let mut rank_sum_pos = 0.0f64;
    let mut n_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let midrank = (i + 1 + j) as f64 / 2.0; // average of ranks i+1..=j
        for p in &pairs[i..j] {
            if p.1 > 0.5 {
                rank_sum_pos += midrank;
                n_pos += 1.0;
            }
        }
        i = j;
    }
    let n_neg = n as f64 - n_pos;
    assert!(n_pos > 0.0 && n_neg > 0.0, "auc: need both classes");
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Mean reciprocal rank: for each positive, its rank among
/// `1 + negatives.len()` candidates (the positive plus all negatives),
/// averaged over positives. This matches the HGB link-prediction protocol
/// where every positive is ranked against the shared negative pool.
pub fn mrr(pos_scores: &[f32], neg_scores: &[f32]) -> f64 {
    assert!(!pos_scores.is_empty(), "mrr: no positives");
    let mut sorted_neg: Vec<f32> = neg_scores.to_vec();
    sorted_neg.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
    let mut total = 0.0;
    for &p in pos_scores {
        // Number of negatives scoring strictly higher.
        let higher = sorted_neg.len() - sorted_neg.partition_point(|&s| s <= p);
        // Ties: average rank over tied negatives.
        let tied = sorted_neg.partition_point(|&s| s <= p)
            - sorted_neg.partition_point(|&s| s < p);
        let rank = 1.0 + higher as f64 + tied as f64 / 2.0;
        total += 1.0 / rank;
    }
    total / pos_scores.len() as f64
}

/// Argmax predictions from an `(n, c)` row-major logit buffer.
pub fn argmax_predictions(logits: &[f32], n: usize, c: usize) -> Vec<u32> {
    assert_eq!(logits.len(), n * c, "argmax: buffer shape mismatch");
    (0..n)
        .map(|r| {
            let row = &logits[r * c..(r + 1) * c];
            let mut best = 0u32;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i as u32;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let s = f1_scores(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(s.macro_f1, 1.0);
        assert_eq!(s.micro_f1, 1.0);
    }

    #[test]
    fn micro_f1_equals_accuracy() {
        let pred = [0u32, 1, 1, 0, 2];
        let truth = [0u32, 1, 0, 0, 1];
        let s = f1_scores(&pred, &truth, 3);
        assert!((s.micro_f1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_hand_computed() {
        // Classes: 0 and 1.
        // pred [0,0,1,1], truth [0,1,1,1]
        // class0: tp=1 fp=1 fn=0 → f1 = 2/3
        // class1: tp=2 fp=0 fn=1 → f1 = 4/5
        let s = f1_scores(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert!((s.macro_f1 - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn macro_punishes_rare_class_errors_more() {
        // 9 correct of class 0, 1 wrong of class 1.
        let pred = [0u32; 10];
        let mut truth = [0u32; 10];
        truth[9] = 1;
        let s = f1_scores(&pred, &truth, 2);
        assert!(s.micro_f1 > s.macro_f1, "micro {} vs macro {}", s.micro_f1, s.macro_f1);
    }

    #[test]
    fn auc_perfect_and_random() {
        let perfect = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[1.0, 1.0, 0.0, 0.0]);
        assert!((perfect - 1.0).abs() < 1e-12);
        let inverted = roc_auc(&[0.1, 0.2, 0.8, 0.9], &[1.0, 1.0, 0.0, 0.0]);
        assert!(inverted.abs() < 1e-12);
        let ties = roc_auc(&[0.5, 0.5, 0.5, 0.5], &[1.0, 0.0, 1.0, 0.0]);
        assert!((ties - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_hand_computed() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}
        // pairs: (0.8>0.6),(0.8>0.2),(0.4<0.6),(0.4>0.2) → 3/4
        let auc = roc_auc(&[0.8, 0.4, 0.6, 0.2], &[1.0, 1.0, 0.0, 0.0]);
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mrr_hand_computed() {
        // One positive scoring above all 3 negatives → rank 1.
        assert!((mrr(&[0.9], &[0.1, 0.2, 0.3]) - 1.0).abs() < 1e-12);
        // Positive below one negative → rank 2 → 0.5.
        assert!((mrr(&[0.25], &[0.1, 0.2, 0.3]) - 0.5).abs() < 1e-12);
        // Average of the two.
        assert!((mrr(&[0.9, 0.25], &[0.1, 0.2, 0.3]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mrr_monotone_in_score() {
        let low = mrr(&[0.1], &[0.5, 0.6]);
        let high = mrr(&[0.7], &[0.5, 0.6]);
        assert!(high > low);
    }

    #[test]
    fn argmax_predictions_rows() {
        let logits = [0.1f32, 0.9, 0.0, 2.0, -1.0, 0.5];
        assert_eq!(argmax_predictions(&logits, 2, 3), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn auc_requires_both_classes() {
        let _ = roc_auc(&[0.5, 0.6], &[1.0, 1.0]);
    }
}
