//! # autoac-eval
//!
//! Evaluation metrics (Macro/Micro-F1, ROC-AUC, MRR) and the statistics
//! used in the paper's tables (mean ± std over seeds, Welch's t-test
//! p-values), implemented from scratch and verified against hand-computed
//! references.

#![warn(missing_docs)]

mod metrics;
mod multilabel;
mod stats;

pub use metrics::{argmax_predictions, f1_scores, mrr, roc_auc, F1Scores};
pub use multilabel::multilabel_f1;
pub use stats::{
    ln_gamma, mean, mean_std_pct, reg_inc_beta, std_dev, student_t_cdf, welch_t_test, TTest,
};
