//! # autoac-data
//!
//! Synthetic heterogeneous-graph datasets for the AutoAC reproduction.
//!
//! Real HGB benchmark data requires network access and an evaluation
//! server; instead this crate generates graphs that mirror the paper's
//! Table I statistics with planted, learnable structure (see `DESIGN.md`
//! for the substitution rationale). Also provides HGB-style node splits
//! and link-prediction edge masking.

#![warn(missing_docs)]

mod dataset;
pub mod io;
pub mod json;
pub mod masking;
pub mod presets;
pub mod scale;
pub mod synth;

pub use dataset::{Dataset, Split};
pub use masking::{mask_edges, mask_edges_of_type, sample_train_negatives, LinkSplit};
pub use scale::{degree_profile, generate_scale, DegreeProfile, ScaleSpec};
pub use synth::{generate, EdgeTypeSpec, GraphSpec, NodeTypeSpec, Scale};
