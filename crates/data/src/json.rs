//! Minimal JSON reader/writer used by dataset (de)serialization.
//!
//! Hand-rolled because the build environment has no registry access for
//! `serde`/`serde_json`. Implements exactly what [`crate::io`] needs: a
//! document tree ([`Value`]), a strict parser, and a compact writer.
//!
//! Numbers round-trip through Rust's shortest-representation `Display`, so
//! every finite `f32` survives save→load bit-exactly (the shortest decimal
//! form of an `f32` parses back to the same bits). Non-finite floats are
//! written as `null` — JSON has no NaN/∞ — and read back as `NaN`.

use std::fmt::Write as _;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are exact).
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

/// Error with byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte position where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Looks up a field of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements, or `None` if this is not an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Number as f64, or `None`. `null` reads as NaN (non-finite floats are
    /// written as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Number as usize (must be a non-negative integer).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// String contents, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if this node is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a document tree to compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 && !(n == 0.0 && n.is_sign_negative())
    {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's Display prints the shortest decimal that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f32 slice as a JSON array directly (avoids building a `Value`
/// per element for large feature matrices).
pub fn f32_array(data: &[f32]) -> Value {
    Value::Arr(data.iter().map(|&x| Value::Num(x as f64)).collect())
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting depth the parser accepts. The parser is
/// recursive, so without a limit a hostile body of `[[[[…` (one byte per
/// level) exhausts the thread stack and aborts the process instead of
/// returning an error — unacceptable now that the serving layer feeds it
/// network input. 128 is far deeper than any document this workspace
/// writes (dataset files nest 3–4 levels, serve bodies 2) while keeping
/// worst-case recursion to a few KiB of stack.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError { at: pos, msg: "trailing characters after document" });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, msg: &'static str) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, msg })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    if depth >= MAX_DEPTH {
        return Err(ParseError { at: *pos, msg: "nesting too deep" });
    }
    match bytes.get(*pos) {
        None => Err(ParseError { at: *pos, msg: "unexpected end of input" }),
        Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':' after object key")?;
                fields.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected ',' or '}'" }),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(ParseError { at: *pos, msg: "unexpected character" }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    value: Value,
) -> Result<Value, ParseError> {
    if bytes.get(*pos..).is_some_and(|rest| rest.starts_with(lit)) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError { at: *pos, msg: "invalid literal" })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or(ParseError { at: start, msg: "invalid number" })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError { at: *pos, msg: "unterminated string" }),
            Some(b'"') => {
                out.push_str(utf8_chunk(bytes, chunk_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(utf8_chunk(bytes, chunk_start, *pos)?);
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(ParseError { at: *pos, msg: "bad escape" })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            expect(bytes, pos, b'\\', "expected low surrogate")?;
                            expect(bytes, pos, b'u', "expected low surrogate")?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(ParseError { at: *pos, msg: "invalid low surrogate" });
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or(ParseError { at: *pos, msg: "invalid codepoint" })?,
                        );
                    }
                    _ => return Err(ParseError { at: *pos - 1, msg: "unknown escape" }),
                }
                chunk_start = *pos;
            }
            Some(c) if *c < 0x20 => {
                return Err(ParseError { at: *pos, msg: "raw control character in string" })
            }
            Some(_) => *pos += 1,
        }
    }
}

fn utf8_chunk(bytes: &[u8], start: usize, end: usize) -> Result<&str, ParseError> {
    // analyze:allow(panic, start..end is the parse_string cursor range; both are positions of already-matched bytes, so the range is in bounds)
    std::str::from_utf8(&bytes[start..end])
        .map_err(|_| ParseError { at: start, msg: "invalid utf-8 in string" })
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    if *pos + 4 > bytes.len() {
        return Err(ParseError { at: *pos, msg: "truncated \\u escape" });
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| ParseError { at: *pos, msg: "bad \\u escape" })?;
    let v = u32::from_str_radix(s, 16).map_err(|_| ParseError { at: *pos, msg: "bad \\u escape" })?;
    *pos += 4;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("imdb \"tiny\"\n".into())),
            ("n".into(), Value::Num(42.0)),
            ("x".into(), Value::Num(0.15625)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("arr".into(), Value::Arr(vec![Value::Num(1.0), Value::Num(-2.5)])),
        ]);
        let text = to_string(&doc);
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn f32_bits_survive_roundtrip() {
        let cases = [0.0f32, -0.0, 1.0, -1.5, 0.1, 3.4e38, 1.1754944e-38, 7.038531e-26];
        for x in cases {
            let text = to_string(&Value::Num(x as f64));
            let back = parse(&text).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), x.to_bits(), "{x} mangled to {back}");
        }
        // Non-finite becomes null and reads back as NaN.
        let text = to_string(&Value::Num(f64::NAN));
        assert_eq!(text, "null");
        assert!(parse(&text).unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json at all").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\tbé😀");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"k": [1, 2, 3], "s": "x"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[2].as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Num(1.5).as_usize(), None);
    }
}
