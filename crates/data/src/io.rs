//! Dataset (de)serialization: save a generated dataset to disk and reload
//! it bit-exactly, so an experiment can pin its inputs instead of relying
//! on generator determinism across library versions.
//!
//! The format is a single JSON document (readable, diffable; the datasets
//! here are small enough that a binary format isn't warranted).

use std::io::{Read, Write};
use std::path::Path;

use autoac_graph::HeteroGraph;
use autoac_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Split};

#[derive(Serialize, Deserialize)]
struct MatrixRepr {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl From<&Matrix> for MatrixRepr {
    fn from(m: &Matrix) -> Self {
        Self { rows: m.rows(), cols: m.cols(), data: m.data().to_vec() }
    }
}

impl MatrixRepr {
    fn into_matrix(self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data)
    }
}

#[derive(Serialize, Deserialize)]
struct NodeTypeRepr {
    name: String,
    count: usize,
}

#[derive(Serialize, Deserialize)]
struct EdgeTypeRepr {
    name: String,
    src: usize,
    dst: usize,
    edges: Vec<(u32, u32)>,
}

/// Serializable snapshot of a [`Dataset`].
#[derive(Serialize, Deserialize)]
pub struct DatasetRepr {
    name: String,
    node_types: Vec<NodeTypeRepr>,
    edge_types: Vec<EdgeTypeRepr>,
    features: Vec<Option<MatrixRepr>>,
    labels: Vec<u32>,
    num_classes: usize,
    target_type: usize,
    split_train: Vec<u32>,
    split_val: Vec<u32>,
    split_test: Vec<u32>,
    lp_edge_type: Option<usize>,
}

impl From<&Dataset> for DatasetRepr {
    fn from(d: &Dataset) -> Self {
        let g = &d.graph;
        Self {
            name: d.name.clone(),
            node_types: (0..g.num_node_types())
                .map(|t| NodeTypeRepr {
                    name: g.node_type_name(t).to_string(),
                    count: g.num_nodes_of_type(t),
                })
                .collect(),
            edge_types: (0..g.num_edge_types())
                .map(|e| {
                    let et = g.edge_type(e);
                    EdgeTypeRepr {
                        name: et.name.clone(),
                        src: et.src,
                        dst: et.dst,
                        edges: g.edges_of_type(e).to_vec(),
                    }
                })
                .collect(),
            features: d.features.iter().map(|f| f.as_ref().map(MatrixRepr::from)).collect(),
            labels: d.labels.clone(),
            num_classes: d.num_classes,
            target_type: d.target_type,
            split_train: d.split.train.clone(),
            split_val: d.split.val.clone(),
            split_test: d.split.test.clone(),
            lp_edge_type: d.lp_edge_type,
        }
    }
}

impl DatasetRepr {
    /// Rebuilds the in-memory dataset.
    pub fn into_dataset(self) -> Dataset {
        let mut b = HeteroGraph::builder();
        for nt in &self.node_types {
            b.add_node_type(nt.name.clone(), nt.count);
        }
        for et in &self.edge_types {
            let id = b.add_edge_type(et.name.clone(), et.src, et.dst);
            for &(s, d) in &et.edges {
                b.add_edge(id, s, d);
            }
        }
        Dataset {
            name: self.name,
            graph: b.build(),
            features: self
                .features
                .into_iter()
                .map(|f| f.map(MatrixRepr::into_matrix))
                .collect(),
            labels: self.labels,
            num_classes: self.num_classes,
            target_type: self.target_type,
            split: Split { train: self.split_train, val: self.split_val, test: self.split_test },
            lp_edge_type: self.lp_edge_type,
        }
    }
}

/// Saves a dataset as JSON.
pub fn save(data: &Dataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    let repr = DatasetRepr::from(data);
    let json = serde_json::to_string(&repr)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())
}

/// Loads a dataset saved by [`save`].
pub fn load(path: impl AsRef<Path>) -> std::io::Result<Dataset> {
    let mut buf = String::new();
    std::fs::File::open(path)?.read_to_string(&mut buf)?;
    let repr: DatasetRepr = serde_json::from_str(&buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(repr.into_dataset())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, synth};

    #[test]
    fn roundtrip_preserves_everything() {
        let d = synth::generate(&presets::imdb(), synth::Scale::Tiny, 42);
        let dir = std::env::temp_dir().join("autoac_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("imdb_tiny.json");
        save(&d, &path).unwrap();
        let loaded = load(&path).unwrap();

        assert_eq!(loaded.name, d.name);
        assert_eq!(loaded.graph.num_nodes(), d.graph.num_nodes());
        assert_eq!(loaded.graph.num_edges(), d.graph.num_edges());
        for e in 0..d.graph.num_edge_types() {
            assert_eq!(loaded.graph.edges_of_type(e), d.graph.edges_of_type(e));
        }
        assert_eq!(loaded.labels, d.labels);
        assert_eq!(loaded.split.train, d.split.train);
        assert_eq!(loaded.split.test, d.split.test);
        assert_eq!(loaded.lp_edge_type, d.lp_edge_type);
        for (a, b) in loaded.features.iter().zip(&d.features) {
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x.data(), y.data()),
                (None, None) => {}
                _ => panic!("feature presence mismatch"),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("autoac_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/nonexistent/definitely/missing.json").is_err());
    }
}
