//! Dataset (de)serialization: save a generated dataset to disk and reload
//! it bit-exactly, so an experiment can pin its inputs instead of relying
//! on generator determinism across library versions.
//!
//! The format is a single JSON document (readable, diffable; the datasets
//! here are small enough that a binary format isn't warranted), written and
//! parsed by the in-repo [`crate::json`] module. Feature values round-trip
//! through shortest-representation decimal, so every finite `f32` survives
//! save→load with identical bits.

use std::io::{Read, Write};
use std::path::Path;

use autoac_graph::HeteroGraph;
use autoac_tensor::Matrix;

use crate::dataset::{Dataset, Split};
use crate::json::{self, Value};

fn bad_data(msg: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn matrix_to_value(m: &Matrix) -> Value {
    Value::Obj(vec![
        ("rows".into(), Value::Num(m.rows() as f64)),
        ("cols".into(), Value::Num(m.cols() as f64)),
        ("data".into(), json::f32_array(m.data())),
    ])
}

fn matrix_from_value(v: &Value) -> std::io::Result<Matrix> {
    let rows = field_usize(v, "rows")?;
    let cols = field_usize(v, "cols")?;
    let raw = v.get("data").and_then(Value::as_arr).ok_or_else(|| bad_data("matrix: data"))?;
    if raw.len() != rows * cols {
        return Err(bad_data(format!("matrix: {rows}x{cols} but {} values", raw.len())));
    }
    let data = raw
        .iter()
        .map(|x| x.as_f64().map(|f| f as f32).ok_or_else(|| bad_data("matrix: non-number entry")))
        .collect::<std::io::Result<Vec<f32>>>()?;
    Ok(Matrix::from_vec(rows, cols, data))
}

fn field<'v>(v: &'v Value, key: &str) -> std::io::Result<&'v Value> {
    v.get(key).ok_or_else(|| bad_data(format!("missing field `{key}`")))
}

fn field_usize(v: &Value, key: &str) -> std::io::Result<usize> {
    field(v, key)?.as_usize().ok_or_else(|| bad_data(format!("field `{key}`: expected integer")))
}

fn field_str(v: &Value, key: &str) -> std::io::Result<String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| bad_data(format!("field `{key}`: expected string")))?
        .to_string())
}

fn u32_vec(v: &Value, key: &str) -> std::io::Result<Vec<u32>> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| bad_data(format!("field `{key}`: expected array")))?
        .iter()
        .map(|x| {
            x.as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad_data(format!("field `{key}`: expected u32 entries")))
        })
        .collect()
}

fn dataset_to_value(d: &Dataset) -> Value {
    let g = &d.graph;
    let node_types = (0..g.num_node_types())
        .map(|t| {
            Value::Obj(vec![
                ("name".into(), Value::Str(g.node_type_name(t).to_string())),
                ("count".into(), Value::Num(g.num_nodes_of_type(t) as f64)),
            ])
        })
        .collect();
    let edge_types = (0..g.num_edge_types())
        .map(|e| {
            let et = g.edge_type(e);
            let edges = g
                .edges_of_type(e)
                .iter()
                .map(|&(s, dst)| {
                    Value::Arr(vec![Value::Num(s as f64), Value::Num(dst as f64)])
                })
                .collect();
            Value::Obj(vec![
                ("name".into(), Value::Str(et.name.clone())),
                ("src".into(), Value::Num(et.src as f64)),
                ("dst".into(), Value::Num(et.dst as f64)),
                ("edges".into(), Value::Arr(edges)),
            ])
        })
        .collect();
    let features = d
        .features
        .iter()
        .map(|f| f.as_ref().map_or(Value::Null, matrix_to_value))
        .collect();
    Value::Obj(vec![
        ("name".into(), Value::Str(d.name.clone())),
        ("node_types".into(), Value::Arr(node_types)),
        ("edge_types".into(), Value::Arr(edge_types)),
        ("features".into(), Value::Arr(features)),
        (
            "labels".into(),
            Value::Arr(d.labels.iter().map(|&l| Value::Num(l as f64)).collect()),
        ),
        ("num_classes".into(), Value::Num(d.num_classes as f64)),
        ("target_type".into(), Value::Num(d.target_type as f64)),
        (
            "split".into(),
            Value::Obj(vec![
                (
                    "train".into(),
                    Value::Arr(d.split.train.iter().map(|&v| Value::Num(v as f64)).collect()),
                ),
                (
                    "val".into(),
                    Value::Arr(d.split.val.iter().map(|&v| Value::Num(v as f64)).collect()),
                ),
                (
                    "test".into(),
                    Value::Arr(d.split.test.iter().map(|&v| Value::Num(v as f64)).collect()),
                ),
            ]),
        ),
        (
            "lp_edge_type".into(),
            d.lp_edge_type.map_or(Value::Null, |e| Value::Num(e as f64)),
        ),
    ])
}

fn dataset_from_value(v: &Value) -> std::io::Result<Dataset> {
    let mut b = HeteroGraph::builder();
    for nt in field(v, "node_types")?.as_arr().ok_or_else(|| bad_data("node_types"))? {
        b.add_node_type(field_str(nt, "name")?, field_usize(nt, "count")?);
    }
    for et in field(v, "edge_types")?.as_arr().ok_or_else(|| bad_data("edge_types"))? {
        let id = b.add_edge_type(field_str(et, "name")?, field_usize(et, "src")?, field_usize(et, "dst")?);
        for pair in field(et, "edges")?.as_arr().ok_or_else(|| bad_data("edges"))? {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| bad_data("edge pair"))?;
            let s = pair[0].as_usize().ok_or_else(|| bad_data("edge src"))? as u32;
            let dst = pair[1].as_usize().ok_or_else(|| bad_data("edge dst"))? as u32;
            b.add_edge(id, s, dst);
        }
    }
    let features = field(v, "features")?
        .as_arr()
        .ok_or_else(|| bad_data("features"))?
        .iter()
        .map(|f| if f.is_null() { Ok(None) } else { matrix_from_value(f).map(Some) })
        .collect::<std::io::Result<Vec<Option<Matrix>>>>()?;
    let split = field(v, "split")?;
    let lp = field(v, "lp_edge_type")?;
    Ok(Dataset {
        name: field_str(v, "name")?,
        graph: b.build(),
        features,
        labels: u32_vec(v, "labels")?,
        num_classes: field_usize(v, "num_classes")?,
        target_type: field_usize(v, "target_type")?,
        split: Split {
            train: u32_vec(split, "train")?,
            val: u32_vec(split, "val")?,
            test: u32_vec(split, "test")?,
        },
        lp_edge_type: if lp.is_null() {
            None
        } else {
            Some(lp.as_usize().ok_or_else(|| bad_data("lp_edge_type"))?)
        },
    })
}

/// Saves a dataset as JSON.
pub fn save(data: &Dataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    let text = json::to_string(&dataset_to_value(data));
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Loads a dataset saved by [`save`].
pub fn load(path: impl AsRef<Path>) -> std::io::Result<Dataset> {
    let mut buf = String::new();
    std::fs::File::open(path)?.read_to_string(&mut buf)?;
    let doc = json::parse(&buf).map_err(bad_data)?;
    dataset_from_value(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, synth};

    #[test]
    fn roundtrip_preserves_everything() {
        let d = synth::generate(&presets::imdb(), synth::Scale::Tiny, 42);
        let dir = std::env::temp_dir().join("autoac_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("imdb_tiny.json");
        save(&d, &path).unwrap();
        let loaded = load(&path).unwrap();

        assert_eq!(loaded.name, d.name);
        assert_eq!(loaded.graph.num_nodes(), d.graph.num_nodes());
        assert_eq!(loaded.graph.num_edges(), d.graph.num_edges());
        for e in 0..d.graph.num_edge_types() {
            assert_eq!(loaded.graph.edges_of_type(e), d.graph.edges_of_type(e));
        }
        assert_eq!(loaded.labels, d.labels);
        assert_eq!(loaded.split.train, d.split.train);
        assert_eq!(loaded.split.test, d.split.test);
        assert_eq!(loaded.lp_edge_type, d.lp_edge_type);
        for (a, b) in loaded.features.iter().zip(&d.features) {
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x.data(), y.data()),
                (None, None) => {}
                _ => panic!("feature presence mismatch"),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("autoac_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/nonexistent/definitely/missing.json").is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let dir = std::env::temp_dir().join("autoac_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shape_mismatch.json");
        let d = synth::generate(&presets::imdb(), synth::Scale::Tiny, 7);
        save(&d, &path).unwrap();
        // Corrupt a matrix's row count; load must fail, not misinterpret.
        let text = std::fs::read_to_string(&path).unwrap().replacen("\"rows\":", "\"rows\":9", 1);
        std::fs::write(&path, text).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
