//! Link-prediction edge masking and negative sampling (HGB protocol:
//! mask a fraction of target-type edges, sample random negatives).

use autoac_graph::EdgeTypeId;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// A link-prediction split: the training graph has the positive test edges
/// removed; evaluation scores `test_pos` against `test_neg`.
#[derive(Debug, Clone)]
pub struct LinkSplit {
    /// Dataset whose graph lacks the masked edges.
    pub train_data: Dataset,
    /// The edge type being predicted.
    pub edge_type: EdgeTypeId,
    /// Held-out positive edges.
    pub test_pos: Vec<(u32, u32)>,
    /// Sampled negative edges (same count as `test_pos`).
    pub test_neg: Vec<(u32, u32)>,
}

/// Masks `rate` of the dataset's LP-target edges and samples an equal
/// number of negative (non-)edges uniformly over the valid type pair.
///
/// # Panics
/// Panics if the dataset declares no LP edge type.
pub fn mask_edges(data: &Dataset, rate: f64, rng: &mut impl Rng) -> LinkSplit {
    let etype = data.lp_edge_type.expect("dataset has no link-prediction edge type");
    mask_edges_of_type(data, etype, rate, rng)
}

/// [`mask_edges`] with an explicit edge type.
pub fn mask_edges_of_type(
    data: &Dataset,
    etype: EdgeTypeId,
    rate: f64,
    rng: &mut impl Rng,
) -> LinkSplit {
    assert!((0.0..1.0).contains(&rate), "mask rate must be in [0, 1)");
    let edges = data.graph.edges_of_type(etype);
    let n = edges.len();
    let n_mask = ((n as f64) * rate).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let masked: std::collections::HashSet<usize> = order[..n_mask].iter().copied().collect();
    let keep: Vec<bool> = (0..n).map(|i| !masked.contains(&i)).collect();
    let test_pos: Vec<(u32, u32)> =
        order[..n_mask].iter().map(|&i| edges[i]).collect();

    // Negative sampling: uniform over the (src-type × dst-type) rectangle,
    // rejecting existing edges (in either the kept or masked set).
    let existing: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    let et = data.graph.edge_type(etype);
    let src_range = data.graph.nodes_of_type(et.src);
    let dst_range = data.graph.nodes_of_type(et.dst);
    let mut test_neg = Vec::with_capacity(n_mask);
    let mut guard = 0usize;
    while test_neg.len() < n_mask {
        let s = rng.gen_range(src_range.clone()) as u32;
        let d = rng.gen_range(dst_range.clone()) as u32;
        guard += 1;
        assert!(guard < 200 * n_mask.max(1) + 1000, "negative sampling stalled");
        if s != d && !existing.contains(&(s, d)) {
            test_neg.push((s, d));
        }
    }

    let mut train_data = data.clone();
    train_data.graph = data.graph.without_edges(etype, &keep);
    LinkSplit { train_data, edge_type: etype, test_pos, test_neg }
}

/// Samples `count` training negatives for contrastive LP training, avoiding
/// all currently present edges of `etype` in `data`'s graph.
pub fn sample_train_negatives(
    data: &Dataset,
    etype: EdgeTypeId,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<(u32, u32)> {
    let existing: std::collections::HashSet<(u32, u32)> =
        data.graph.edges_of_type(etype).iter().copied().collect();
    let et = data.graph.edge_type(etype);
    let src_range = data.graph.nodes_of_type(et.src);
    let dst_range = data.graph.nodes_of_type(et.dst);
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count {
        let s = rng.gen_range(src_range.clone()) as u32;
        let d = rng.gen_range(dst_range.clone()) as u32;
        guard += 1;
        assert!(guard < 200 * count.max(1) + 1000, "negative sampling stalled");
        if s != d && !existing.contains(&(s, d)) {
            out.push((s, d));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::synth::{generate, Scale};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masking_removes_exactly_rate() {
        let d = generate(&presets::imdb(), Scale::Tiny, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let before = d.graph.edges_of_type(2).len();
        let split = mask_edges(&d, 0.10, &mut rng);
        let after = split.train_data.graph.edges_of_type(2).len();
        assert_eq!(before - after, split.test_pos.len());
        let want = (before as f64 * 0.10).round() as usize;
        assert_eq!(split.test_pos.len(), want);
        assert_eq!(split.test_neg.len(), split.test_pos.len());
    }

    #[test]
    fn negatives_are_non_edges_with_correct_types() {
        let d = generate(&presets::lastfm(), Scale::Tiny, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let split = mask_edges(&d, 0.2, &mut rng);
        let existing: std::collections::HashSet<_> =
            d.graph.edges_of_type(0).iter().copied().collect();
        let et = d.graph.edge_type(0);
        for &(s, dd) in &split.test_neg {
            assert!(!existing.contains(&(s, dd)), "negative ({s},{dd}) is a real edge");
            assert!(d.graph.nodes_of_type(et.src).contains(&(s as usize)));
            assert!(d.graph.nodes_of_type(et.dst).contains(&(dd as usize)));
        }
    }

    #[test]
    fn positives_are_removed_from_training_graph() {
        let d = generate(&presets::imdb(), Scale::Tiny, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let split = mask_edges(&d, 0.3, &mut rng);
        let remaining: std::collections::HashSet<_> =
            split.train_data.graph.edges_of_type(2).iter().copied().collect();
        for p in &split.test_pos {
            assert!(!remaining.contains(p), "masked edge {p:?} still present");
        }
    }

    #[test]
    fn other_edge_types_untouched() {
        let d = generate(&presets::imdb(), Scale::Tiny, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let split = mask_edges(&d, 0.3, &mut rng);
        assert_eq!(
            split.train_data.graph.edges_of_type(0),
            d.graph.edges_of_type(0)
        );
        assert_eq!(
            split.train_data.graph.edges_of_type(1),
            d.graph.edges_of_type(1)
        );
    }

    #[test]
    fn train_negative_sampler_avoids_edges() {
        let d = generate(&presets::lastfm(), Scale::Tiny, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let negs = sample_train_negatives(&d, 0, 50, &mut rng);
        assert_eq!(negs.len(), 50);
        let existing: std::collections::HashSet<_> =
            d.graph.edges_of_type(0).iter().copied().collect();
        assert!(negs.iter().all(|e| !existing.contains(e)));
    }
}
