//! Streaming power-law graph generation for 100×-scale benchmarking.
//!
//! [`synth::generate`](crate::synth::generate) mirrors the paper's Table I
//! statistics faithfully, but its rank samplers and dedup sets hold
//! O(nodes + edges) floating-point state that makes 10M-node graphs slow
//! and memory-hungry. This module trades the planted-semantics fidelity for
//! scale: endpoints are drawn by an **inverse-CDF Zipf** sampler (O(1)
//! state), ranks are scrambled into node ids by an O(1) modular bijection,
//! and latent classes come from a stateless hash — so edge construction
//! streams straight into the graph builder with no whole-graph temporaries
//! beyond the edge lists the graph itself stores. Multi-edges are possible
//! but rare (no dedup set); these graphs back throughput benchmarks, not
//! link-prediction masking.
//!
//! The companion [`DegreeProfile`] summarizes a generated (or any) graph's
//! degree distribution — min/max/mean plus a maximum-likelihood power-law
//! exponent estimate — and validates that the generator actually produced
//! the heavy-tailed shape the sharding benchmarks assume.

use autoac_graph::HeteroGraph;
use autoac_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, Split};

/// Specification of a scale-benchmark graph: three node types (labeled
/// `target`, attributed `attr`, attribute-less `plain`) wired by two
/// power-law edge types (`target-attr`, `target-plain`).
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Labeled, attribute-less target nodes.
    pub target_nodes: usize,
    /// Attributed auxiliary nodes.
    pub attr_nodes: usize,
    /// Attribute-less auxiliary nodes.
    pub plain_nodes: usize,
    /// `target-attr` edges.
    pub attr_edges: usize,
    /// `target-plain` edges.
    pub plain_edges: usize,
    /// Zipf exponent for endpoint rank draws (>1; ~2.1 matches web-scale
    /// degree tails).
    pub gamma: f64,
    /// Label classes on the target type.
    pub num_classes: usize,
    /// Probability that an edge connects same-latent-class endpoints.
    pub assortativity: f64,
    /// Attribute dimension of the `attr` type; `0` generates no feature
    /// matrix at all (every node missing — generation/profiling runs only).
    pub feature_dim: usize,
    /// Fraction of labels flipped to a random class.
    pub label_noise: f64,
}

impl ScaleSpec {
    /// A balanced spec totalling roughly `n` nodes: 40% target, 40%
    /// attributed, 20% plain, with ~4 edges per node.
    pub fn with_total_nodes(name: &'static str, n: usize) -> Self {
        let n = n.max(100);
        Self {
            name,
            target_nodes: n * 2 / 5,
            attr_nodes: n * 2 / 5,
            plain_nodes: n / 5,
            attr_edges: n * 3,
            plain_edges: n,
            gamma: 2.1,
            num_classes: 8,
            assortativity: 0.75,
            feature_dim: 32,
            label_noise: 0.05,
        }
    }

    /// Total node count across all three types.
    pub fn total_nodes(&self) -> usize {
        self.target_nodes + self.attr_nodes + self.plain_nodes
    }
}

/// SplitMix64 — the stateless mixer used for hash-derived classes and the
/// rank-scrambling bijection.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// O(1)-state Zipf sampler over ranks `0..n` with exponent `gamma`: inverse
/// transform of the continuous power-law CDF on `[1, n+1)`. Rank 0 is the
/// heaviest.
struct Zipf {
    n: usize,
    gamma: f64,
    /// `(n+1)^{1-γ} − 1`, precomputed for the inverse CDF (γ ≠ 1).
    span: f64,
}

impl Zipf {
    fn new(n: usize, gamma: f64) -> Self {
        assert!(n > 0, "scale: Zipf over empty domain");
        let span = if (gamma - 1.0).abs() < 1e-9 {
            0.0
        } else {
            ((n as f64) + 1.0).powf(1.0 - gamma) - 1.0
        };
        Self { n, gamma, span }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        let x = if (self.gamma - 1.0).abs() < 1e-9 {
            (u * ((self.n as f64) + 1.0).ln()).exp()
        } else {
            (1.0 + u * self.span).powf(1.0 / (1.0 - self.gamma))
        };
        ((x as usize).saturating_sub(1)).min(self.n - 1)
    }
}

/// O(1) bijection `rank → local id` inside one node type, so hub ranks land
/// on scattered ids instead of a sorted prefix (the cache-reordering pass
/// would otherwise be a no-op on generated graphs).
struct Scramble {
    a: u64,
    b: u64,
    n: u64,
}

impl Scramble {
    fn new(n: usize, salt: u64) -> Self {
        let n = n as u64;
        // A multiplier coprime with n makes `a·r + b mod n` a bijection.
        let mut a = splitmix64(salt) % n;
        a = a.max(1) | 1;
        while gcd(a, n) != 1 {
            a = (a + 2) % n;
            a = a.max(1) | 1;
        }
        Self { a, b: splitmix64(salt ^ 0x5eed) % n, n }
    }

    fn id_of_rank(&self, rank: usize) -> u32 {
        ((self.a.wrapping_mul(rank as u64).wrapping_add(self.b)) % self.n) as u32
    }
}

/// Generates a [`ScaleSpec`] dataset, deterministically in `seed`.
///
/// Construction is streaming: every edge is one Zipf draw per endpoint
/// (plus a capped assortativity retry loop) appended directly to the
/// builder; the only O(nodes) allocations are the label vector, the split,
/// and the optional feature matrix the dataset itself carries.
pub fn generate_scale(spec: &ScaleSpec, seed: u64) -> Dataset {
    let _span = autoac_obs::span("scale_generate");
    assert!(spec.gamma > 1.0, "scale: gamma must exceed 1 for a normalizable tail");
    assert!(spec.num_classes > 0, "scale: need at least one class");
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = spec.num_classes as u64;
    let class_salt = splitmix64(seed ^ 0xc1a5_5e5a);
    // Stateless latent class of a *global* node id.
    let class_of = move |v: u32| (splitmix64(class_salt ^ u64::from(v)) % classes) as u32;

    let mut b = HeteroGraph::builder();
    let t_target = b.add_node_type("target", spec.target_nodes);
    let t_attr = b.add_node_type("attr", spec.attr_nodes);
    let t_plain = b.add_node_type("plain", spec.plain_nodes);
    let e_attr = b.add_edge_type("target-attr", t_target, t_attr);
    let e_plain = b.add_edge_type("target-plain", t_target, t_plain);

    let offsets = [0u32, spec.target_nodes as u32, (spec.target_nodes + spec.attr_nodes) as u32];
    let zipf_target = Zipf::new(spec.target_nodes, spec.gamma);
    let scr_target = Scramble::new(spec.target_nodes, splitmix64(seed ^ 1));
    let mut wire = |e: usize, dst_t: usize, dst_n: usize, n_edges: usize, rng: &mut StdRng| {
        let zipf_dst = Zipf::new(dst_n, spec.gamma);
        let scr_dst = Scramble::new(dst_n, splitmix64(seed ^ (dst_t as u64 + 2)));
        for _ in 0..n_edges {
            let s = scr_target.id_of_rank(zipf_target.sample(rng));
            let s_class = class_of(s);
            let mut d = scr_dst.id_of_rank(zipf_dst.sample(rng));
            if rng.gen_bool(spec.assortativity) {
                // Capped rejection: retry the Zipf draw until the class
                // matches. 32 tries bound the worst case (a class absent
                // from the head); the cap keeps the cost O(1) per edge.
                for _ in 0..32 {
                    if class_of(offsets[dst_t] + d) == s_class {
                        break;
                    }
                    d = scr_dst.id_of_rank(zipf_dst.sample(rng));
                }
            }
            b.add_edge(e, s, offsets[dst_t] + d);
        }
    };
    wire(e_attr, t_attr, spec.attr_nodes, spec.attr_edges, &mut rng);
    wire(e_plain, t_plain, spec.plain_nodes, spec.plain_edges, &mut rng);
    let graph = b.build();
    autoac_obs::counter_add("scale_nodes", graph.num_nodes() as u64);
    autoac_obs::counter_add("scale_edges", graph.num_edges() as u64);

    // Class-informative attr features: a class-indexed spike plus one
    // random word — two nonzeros per row, enough signal for aggregation
    // ops to beat one-hot on attributed neighborhoods.
    let features: Vec<Option<Matrix>> = vec![
        None,
        (spec.feature_dim > 0).then(|| {
            let dim = spec.feature_dim;
            let mut m = Matrix::zeros(spec.attr_nodes, dim);
            for i in 0..spec.attr_nodes {
                let c = class_of(offsets[1] + i as u32) as usize;
                m.set(i, c % dim, 1.0);
                let w = rng.gen_range(0..dim);
                let cur = m.get(i, w);
                m.set(i, w, cur + 0.5);
            }
            m
        }),
        None,
    ];

    let mut labels: Vec<u32> = (0..spec.target_nodes as u32).map(class_of).collect();
    for l in &mut labels {
        if rng.gen_bool(spec.label_noise) {
            *l = rng.gen_range(0..spec.num_classes) as u32;
        }
    }
    let split = Split::hgb(0..spec.target_nodes as u32, &mut rng);

    Dataset {
        name: spec.name.to_string(),
        graph,
        features,
        labels,
        num_classes: spec.num_classes,
        target_type: t_target,
        split,
        lp_edge_type: None,
    }
}

/// Summary of a graph's undirected degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeProfile {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Maximum-likelihood power-law exponent estimate over nonzero degrees
    /// (continuous approximation with the standard −0.5 discreteness
    /// correction at `d_min = 1`).
    pub gamma_hat: f64,
}

/// Computes the [`DegreeProfile`] of a graph (one O(N + E) degree pass).
pub fn degree_profile(g: &HeteroGraph) -> DegreeProfile {
    let _span = autoac_obs::span("degree_profile");
    let deg = g.undirected_degrees();
    assert!(!deg.is_empty(), "degree_profile: empty graph");
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0u64;
    let mut log_sum = 0.0f64;
    let mut nonzero = 0usize;
    for &d in &deg {
        min = min.min(d);
        max = max.max(d);
        sum += d as u64;
        if d > 0 {
            log_sum += (d as f64 / 0.5).ln();
            nonzero += 1;
        }
    }
    let gamma_hat = if nonzero == 0 { f64::NAN } else { 1.0 + nonzero as f64 / log_sum };
    DegreeProfile { min, max, mean: sum as f64 / deg.len() as f64, gamma_hat }
}

impl DegreeProfile {
    /// Internal-consistency check plus a heavy-tail sanity test; returns a
    /// description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.min > self.max {
            return Err(format!("degree min {} exceeds max {}", self.min, self.max));
        }
        if !(self.min as f64 <= self.mean && self.mean <= self.max as f64) {
            return Err(format!(
                "mean degree {:.3} outside [{}, {}]",
                self.mean, self.min, self.max
            ));
        }
        if !self.gamma_hat.is_finite() || self.gamma_hat <= 1.0 {
            return Err(format!(
                "power-law exponent estimate {:.3} is not a normalizable tail (must be > 1)",
                self.gamma_hat
            ));
        }
        Ok(())
    }

    /// One-line summary for bench reports.
    pub fn summary(&self) -> String {
        format!(
            "degree min {} / max {} / mean {:.2}, gamma_hat {:.2}",
            self.min, self.max, self.mean, self.gamma_hat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize) -> ScaleSpec {
        ScaleSpec::with_total_nodes("scale-test", n)
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(5_000);
        let a = generate_scale(&s, 42);
        let b = generate_scale(&s, 42);
        assert_eq!(
            a.graph.structural_fingerprint(),
            b.graph.structural_fingerprint()
        );
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.split.train, b.split.train);
        assert_eq!(
            a.features[1].as_ref().expect("attr features").data(),
            b.features[1].as_ref().expect("attr features").data()
        );
        let c = generate_scale(&s, 43);
        assert_ne!(
            a.graph.structural_fingerprint(),
            c.graph.structural_fingerprint()
        );
    }

    #[test]
    fn spec_shapes_the_graph() {
        let s = spec(5_000);
        let d = generate_scale(&s, 0);
        assert_eq!(d.graph.num_nodes(), s.total_nodes());
        assert_eq!(d.graph.num_edges(), s.attr_edges + s.plain_edges);
        assert_eq!(d.graph.num_node_types(), 3);
        assert_eq!(d.labels.len(), s.target_nodes);
        assert_eq!(d.split.len(), s.target_nodes);
        // Only the attr type carries features: target and plain are V⁻.
        assert_eq!(d.missing_nodes().len(), s.target_nodes + s.plain_nodes);
    }

    #[test]
    fn degrees_are_heavy_tailed_and_profile_validates() {
        let d = generate_scale(&spec(20_000), 7);
        let p = degree_profile(&d.graph);
        p.validate().expect("profile must validate");
        assert_eq!(p.min, 0, "a Zipf tail leaves some nodes isolated");
        assert!(p.max > 100, "expected hubs, max degree {}", p.max);
        assert!(p.mean > 1.0 && p.mean < 20.0, "mean {}", p.mean);
        assert!(
            p.gamma_hat > 1.2 && p.gamma_hat < 5.0,
            "gamma_hat {:.3} outside the plausible band",
            p.gamma_hat
        );
        assert!(!p.summary().is_empty());
    }

    #[test]
    fn edges_are_assortative_in_latent_class() {
        let mut s = spec(10_000);
        s.label_noise = 0.0;
        let d = generate_scale(&s, 3);
        // An edge's endpoints agree on latent class far above chance; use
        // labels (= target latents at zero noise) against attr latents
        // recovered from the feature spike.
        let feats = d.features[1].as_ref().expect("attr features");
        let attr_start = d.graph.nodes_of_type(1).start;
        let mut same = 0usize;
        let mut total = 0usize;
        for &(t, a) in d.graph.edges_of_type(0) {
            let a_local = a as usize - attr_start;
            let a_class = (0..s.feature_dim)
                .max_by(|&i, &j| {
                    feats.get(a_local, i).partial_cmp(&feats.get(a_local, j)).expect("finite")
                })
                .expect("nonempty row") as u32;
            same += usize::from(d.labels[t as usize] == a_class);
            total += 1;
        }
        let frac = same as f64 / total as f64;
        let chance = 1.0 / s.num_classes as f64;
        assert!(
            frac > chance + 0.2,
            "same-class edge fraction {frac:.3} vs chance {chance:.3}"
        );
    }

    #[test]
    fn scramble_is_a_bijection() {
        for n in [7usize, 100, 4096, 9999] {
            let s = Scramble::new(n, 123);
            let mut seen = vec![false; n];
            for r in 0..n {
                let id = s.id_of_rank(r) as usize;
                assert!(!seen[id], "id {id} hit twice (n={n})");
                seen[id] = true;
            }
        }
    }

    #[test]
    fn zipf_head_dominates_tail() {
        let z = Zipf::new(10_000, 2.1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With γ=2.1, the top 1% of ranks draws the vast majority of mass.
        assert!(head > 7_000, "head draws {head}/10000");
    }
}
