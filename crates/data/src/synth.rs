//! Synthetic heterogeneous-graph generator.
//!
//! Real HGB data needs network access and a submission server, so every
//! dataset here is generated (DESIGN.md §1). The generator plants the
//! structure the paper's phenomena depend on:
//!
//! * **class-assortative wiring** — every node of every type carries a
//!   latent class; edges preferentially connect same-class endpoints, so
//!   labels of attribute-less target nodes (DBLP authors) are recoverable
//!   only through neighbors, which is exactly when attribute completion
//!   matters;
//! * **class-conditioned bag-of-words attributes** on the types that have
//!   raw attributes in Table I;
//! * **degree heterogeneity** (rank-weighted endpoint sampling) — hub nodes
//!   with many attributed neighbors favor local aggregation ops, leaf and
//!   isolated nodes favor one-hot, nodes whose signal sits behind
//!   unattributed intermediates favor PPNP. This is the semantic diversity
//!   AutoAC's per-node operation search exploits.

use autoac_graph::{HeteroGraph, NodeTypeId};
use autoac_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, Split};

/// Declaration of one node type.
#[derive(Debug, Clone)]
pub struct NodeTypeSpec {
    /// Type name.
    pub name: &'static str,
    /// Node count at `Scale::Paper`.
    pub count: usize,
    /// Raw attribute dimension, or `None` when the type's attributes are
    /// missing (Table I's "Missing").
    pub raw_dim: Option<usize>,
}

/// Declaration of one edge type.
#[derive(Debug, Clone)]
pub struct EdgeTypeSpec {
    /// Edge type name.
    pub name: &'static str,
    /// Source node type index.
    pub src: NodeTypeId,
    /// Target node type index.
    pub dst: NodeTypeId,
    /// Stored (undirected) edge count at `Scale::Paper`.
    pub count: usize,
    /// Probability that an edge connects same-latent-class endpoints.
    pub assortativity: f64,
}

/// Full dataset specification.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Node types (order fixes the global id layout).
    pub node_types: Vec<NodeTypeSpec>,
    /// Edge types.
    pub edge_types: Vec<EdgeTypeSpec>,
    /// Number of label classes (0 disables the classification task).
    pub num_classes: usize,
    /// Node type carrying labels.
    pub target_type: NodeTypeId,
    /// Edge type targeted by link prediction, if any.
    pub lp_edge_type: Option<usize>,
    /// Words drawn per attributed node.
    pub words_per_node: usize,
    /// Probability that a drawn word comes from the node's class topic.
    pub topic_purity: f64,
    /// Fraction of labels flipped to a random class (label noise).
    pub label_noise: f64,
    /// Rank-weight exponent for endpoint sampling (larger → heavier hubs).
    pub hub_exponent: f64,
}

/// Size profile: scales node and edge counts relative to the paper's
/// Table I statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// ~1/32 of the paper size — unit/integration tests.
    Tiny,
    /// ~1/8 of the paper size — default for the experiment harness.
    Small,
    /// Full Table I statistics.
    Paper,
    /// Custom multiplier.
    Factor(f64),
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 1.0 / 32.0,
            Scale::Small => 1.0 / 8.0,
            Scale::Paper => 1.0,
            Scale::Factor(f) => f,
        }
    }

    /// Parses `"tiny" | "small" | "paper"` (CLI helper).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => s.parse::<f64>().ok().map(Scale::Factor),
        }
    }
}

fn scaled(count: usize, factor: f64, min: usize) -> usize {
    ((count as f64 * factor).round() as usize).max(min)
}

/// Rank-weighted sampler: element at rank `r` (0-based) of a shuffled
/// permutation is drawn with weight `(r+1)^{-gamma}`, producing a heavy
/// head of hub nodes and a long tail of near-isolated ones.
struct RankSampler {
    /// Shuffled node ids.
    perm: Vec<u32>,
    /// Cumulative weights aligned with `perm`.
    cum: Vec<f64>,
}

impl RankSampler {
    fn new(ids: &[u32], gamma: f64, rng: &mut impl Rng) -> Self {
        let mut perm = ids.to_vec();
        perm.shuffle(rng);
        let mut cum = Vec::with_capacity(perm.len());
        let mut total = 0.0;
        for r in 0..perm.len() {
            total += (r as f64 + 1.0).powf(-gamma);
            cum.push(total);
        }
        Self { perm, cum }
    }

    fn sample(&self, rng: &mut impl Rng) -> u32 {
        let total = *self.cum.last().expect("sampler over empty id set");
        let x = rng.gen::<f64>() * total;
        let idx = self.cum.partition_point(|&c| c < x).min(self.perm.len() - 1);
        self.perm[idx]
    }
}

/// Generates a dataset from a spec at the given scale, deterministically in
/// `seed`.
pub fn generate(spec: &GraphSpec, scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = scale.factor();

    // --- Nodes and latent classes -------------------------------------
    let counts: Vec<usize> =
        spec.node_types.iter().map(|nt| scaled(nt.count, f, spec.num_classes.max(4))).collect();
    let mut builder = HeteroGraph::builder();
    for (nt, &c) in spec.node_types.iter().zip(&counts) {
        builder.add_node_type(nt.name, c);
    }
    let classes = spec.num_classes.max(1);
    // Latent class per node, per type; target-type latents become labels.
    let mut latent: Vec<Vec<u32>> = counts
        .iter()
        .map(|&c| (0..c).map(|_| rng.gen_range(0..classes) as u32).collect())
        .collect();
    // Guarantee every class is inhabited in every type (tiny scales).
    for lat in &mut latent {
        let take = classes.min(lat.len());
        for (i, slot) in lat.iter_mut().enumerate().take(take) {
            *slot = (i % classes) as u32;
        }
        lat.shuffle(&mut rng);
    }

    // --- Edges ---------------------------------------------------------
    // Per (type, class) samplers over *global* ids, plus per-type samplers.
    let mut offsets = vec![0usize];
    for &c in &counts {
        // analyze:allow(panic, offsets is seeded with one element and only grows)
        offsets.push(offsets.last().expect("non-empty") + c);
    }
    let global_ids_of = |t: usize| -> Vec<u32> {
        // analyze:allow(panic, t is a node-type id and offsets has one entry per type plus a sentinel)
        (offsets[t]..offsets[t + 1]).map(|v| v as u32).collect()
    };
    let mut by_class: Vec<Vec<Vec<u32>>> = Vec::with_capacity(counts.len());
    for (t, lat) in latent.iter().enumerate() {
        let mut groups = vec![Vec::new(); classes];
        for (i, &c) in lat.iter().enumerate() {
            // analyze:allow(panic, latent classes are produced modulo `classes` and groups is sized `classes`)
            groups[c as usize].push((offsets[t] + i) as u32);
        }
        by_class.push(groups);
    }
    let type_samplers: Vec<RankSampler> = (0..counts.len())
        .map(|t| RankSampler::new(&global_ids_of(t), spec.hub_exponent, &mut rng))
        .collect();
    let class_samplers: Vec<Vec<Option<RankSampler>>> = by_class
        .iter()
        .map(|groups| {
            groups
                .iter()
                .map(|ids| {
                    (!ids.is_empty()).then(|| RankSampler::new(ids, spec.hub_exponent, &mut rng))
                })
                .collect()
        })
        .collect();

    for (e, et) in spec.edge_types.iter().enumerate() {
        builder.add_edge_type(et.name, et.src, et.dst);
        let n_edges = scaled(et.count, f, 4);
        // Simple graph: duplicates are rejected (a duplicate surviving
        // link-prediction masking would leak the held-out edge).
        let mut seen = std::collections::HashSet::with_capacity(n_edges * 2);
        for _ in 0..n_edges {
            // analyze:allow(panic, edge-type endpoints come from the preset spec and index one sampler per node type)
            let s = type_samplers[et.src].sample(&mut rng);
            // analyze:allow(panic, s is drawn from the global-id range of type et.src so the local index is in bounds)
            let s_class = latent[et.src][(s as usize) - offsets[et.src]] as usize;
            let d = if rng.gen_bool(et.assortativity) {
                // analyze:allow(panic, class_samplers has one row per node type and `classes` columns; s_class < classes)
                match &class_samplers[et.dst][s_class] {
                    Some(sampler) => sampler.sample(&mut rng),
                    // analyze:allow(panic, et.dst is a preset node-type id with a dedicated sampler)
                    None => type_samplers[et.dst].sample(&mut rng),
                }
            } else {
                // analyze:allow(panic, et.dst is a preset node-type id with a dedicated sampler)
                type_samplers[et.dst].sample(&mut rng)
            };
            if s == d || !seen.insert((s, d)) {
                continue; // self-loop on same-type edge types, or duplicate
            }
            builder.add_edge(e, s, d);
        }
    }
    let graph = builder.build();

    // --- Attributes ------------------------------------------------------
    let features: Vec<Option<Matrix>> = spec
        .node_types
        .iter()
        .enumerate()
        .map(|(t, nt)| {
            nt.raw_dim.map(|dim| {
                // analyze:allow(panic, t enumerates node_types and counts/latent have one entry per type)
                bow_features(counts[t], dim, classes, &latent[t], spec, &mut rng)
            })
        })
        .collect();

    // --- Labels and split -------------------------------------------------
    let (labels, split) = if spec.num_classes > 0 {
        // analyze:allow(panic, target_type is a preset node-type id and latent has one entry per type)
        let mut labels = latent[spec.target_type].clone();
        for l in &mut labels {
            if rng.gen_bool(spec.label_noise) {
                *l = rng.gen_range(0..classes) as u32;
            }
        }
        let split =
            Split::hgb(graph.nodes_of_type(spec.target_type).map(|v| v as u32), &mut rng);
        (labels, split)
    } else {
        (Vec::new(), Split::default())
    };

    Dataset {
        name: spec.name.to_string(),
        graph,
        features,
        labels,
        num_classes: spec.num_classes,
        target_type: spec.target_type,
        split,
        lp_edge_type: spec.lp_edge_type,
    }
}

/// Class-conditioned bag-of-words features: the vocabulary is split into
/// per-class topic blocks plus a shared block; each node draws
/// `words_per_node` words, `topic_purity` of them from its class block.
fn bow_features(
    count: usize,
    dim: usize,
    classes: usize,
    latent: &[u32],
    spec: &GraphSpec,
    rng: &mut impl Rng,
) -> Matrix {
    let block = dim / (classes + 1).max(1);
    let mut m = Matrix::zeros(count, dim);
    for (i, &lat) in latent.iter().enumerate().take(count) {
        let c = lat as usize;
        for _ in 0..spec.words_per_node {
            let word = if block > 0 && rng.gen_bool(spec.topic_purity) {
                c * block + rng.gen_range(0..block)
            } else {
                rng.gen_range(0..dim)
            };
            let cur = m.get(i, word);
            m.set(i, word, cur + 1.0);
        }
        // L2-normalize rows so feature magnitude is degree-independent.
        let norm = autoac_tensor::dot(m.row(i), m.row(i)).sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for v in m.row_mut(i) {
                *v *= inv;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn generation_is_deterministic() {
        let spec = presets::imdb();
        let a = generate(&spec, Scale::Tiny, 42);
        let b = generate(&spec, Scale::Tiny, 42);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.labels, b.labels);
        assert_eq!(
            a.features[0].as_ref().unwrap().data(),
            b.features[0].as_ref().unwrap().data()
        );
        assert_eq!(a.split.train, b.split.train);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = presets::imdb();
        let a = generate(&spec, Scale::Tiny, 1);
        let b = generate(&spec, Scale::Tiny, 2);
        assert_ne!(a.split.train, b.split.train);
    }

    #[test]
    fn scale_controls_size() {
        let spec = presets::imdb();
        let tiny = generate(&spec, Scale::Tiny, 0);
        let small = generate(&spec, Scale::Small, 0);
        assert!(small.graph.num_nodes() > 2 * tiny.graph.num_nodes());
        assert!(small.graph.num_edges() > 2 * tiny.graph.num_edges());
    }

    #[test]
    fn every_class_is_present_in_labels() {
        let spec = presets::dblp();
        let d = generate(&spec, Scale::Tiny, 3);
        for c in 0..spec.num_classes as u32 {
            assert!(d.labels.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn edges_are_assortative() {
        let spec = presets::imdb(); // movie-actor assortativity > 0
        let d = generate(&spec, Scale::Small, 5);
        let g = &d.graph;
        // Recover latent classes of movies (= labels, modulo noise).
        let mut same = 0usize;
        let mut total = 0usize;
        // Compare movie labels across shared actors via 2-hop pairs.
        let adj = autoac_graph::Adjacency::build(g);
        for a in g.nodes_of_type(2) {
            let movies = adj.typed_neighbors(a, 0);
            for w in movies.windows(2) {
                let l0 = d.label_of(w[0]);
                let l1 = d.label_of(w[1]);
                same += usize::from(l0 == l1);
                total += 1;
            }
        }
        assert!(total > 100, "need enough 2-hop pairs, got {total}");
        let frac = same as f64 / total as f64;
        let chance = 1.0 / spec.num_classes as f64;
        assert!(
            frac > chance + 0.1,
            "movies sharing an actor should agree on class: {frac:.3} vs chance {chance:.3}"
        );
    }

    #[test]
    fn features_are_class_informative() {
        let spec = presets::acm();
        let d = generate(&spec, Scale::Tiny, 7);
        let x = d.features[0].as_ref().unwrap();
        // Same-class feature rows should be more similar than cross-class.
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        let n = x.rows().min(200);
        for i in 0..n {
            for j in (i + 1)..n {
                let s = autoac_tensor::dot(x.row(i), x.row(j));
                if d.labels[i] == d.labels[j] {
                    intra = (intra.0 + s as f64, intra.1 + 1);
                } else {
                    inter = (inter.0 + s as f64, inter.1 + 1);
                }
            }
        }
        let (ia, ie) = (intra.0 / intra.1 as f64, inter.0 / inter.1 as f64);
        assert!(ia > ie * 1.5, "intra-class similarity {ia:.4} vs inter {ie:.4}");
    }

    #[test]
    fn degree_distribution_has_hubs_and_leaves() {
        let spec = presets::imdb();
        let d = generate(&spec, Scale::Small, 11);
        let deg = d.graph.undirected_degrees();
        let actors = d.graph.nodes_of_type(2);
        let adeg: Vec<usize> = actors.map(|v| deg[v]).collect();
        let max = *adeg.iter().max().unwrap();
        let leaves = adeg.iter().filter(|&&d| d <= 1).count();
        assert!(max >= 20, "expected hub actors, max degree {max}");
        assert!(leaves > adeg.len() / 20, "expected leaf actors, got {leaves}");
    }

    #[test]
    fn rank_sampler_is_skewed() {
        let mut rng = StdRng::seed_from_u64(0);
        let ids: Vec<u32> = (0..100).collect();
        let s = RankSampler::new(&ids, 1.0, &mut rng);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Head rank should dominate the tail by an order of magnitude.
        assert!(sorted[0] > sorted[50] * 5, "head {} vs mid {}", sorted[0], sorted[50]);
    }
}
