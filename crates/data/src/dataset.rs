//! The dataset container shared by every experiment.

use autoac_graph::{EdgeTypeId, HeteroGraph, NodeTypeId};
use autoac_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Train/validation/test node split in global node ids.
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// Training nodes.
    pub train: Vec<u32>,
    /// Validation nodes.
    pub val: Vec<u32>,
    /// Test nodes.
    pub test: Vec<u32>,
}

impl Split {
    /// HGB convention: 24% train / 6% validation / 70% test.
    pub fn hgb(nodes: impl Iterator<Item = u32>, rng: &mut impl Rng) -> Self {
        let mut ids: Vec<u32> = nodes.collect();
        ids.shuffle(rng);
        let n = ids.len();
        let n_train = (n as f64 * 0.24).round() as usize;
        let n_val = (n as f64 * 0.06).round() as usize;
        Split {
            train: ids[..n_train].to_vec(),
            val: ids[n_train..n_train + n_val].to_vec(),
            test: ids[n_train + n_val..].to_vec(),
        }
    }

    /// Total number of split nodes.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when the split holds no nodes (e.g. link-prediction-only data).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A heterogeneous graph dataset with (possibly partially missing) node
/// attributes, classification labels on a target node type, and an optional
/// link-prediction target edge type.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `"DBLP"`).
    pub name: String,
    /// The graph.
    pub graph: HeteroGraph,
    /// Raw attribute matrix per node type; `None` marks a type whose
    /// attributes are missing (the `V⁻` side of the paper).
    pub features: Vec<Option<Matrix>>,
    /// Class label per *target-type-local* node index (empty when the
    /// dataset has no classification task).
    pub labels: Vec<u32>,
    /// Number of classes (0 when no classification task).
    pub num_classes: usize,
    /// The node type carrying labels.
    pub target_type: NodeTypeId,
    /// Node split for classification (global ids within the target type).
    pub split: Split,
    /// Edge type used for the link-prediction task, if any.
    pub lp_edge_type: Option<EdgeTypeId>,
}

impl Dataset {
    /// Per-node attribute presence mask (`V⁺` membership).
    pub fn has_attr(&self) -> Vec<bool> {
        let mut mask = vec![false; self.graph.num_nodes()];
        for (t, feat) in self.features.iter().enumerate() {
            if feat.is_some() {
                for v in self.graph.nodes_of_type(t) {
                    mask[v] = true;
                }
            }
        }
        mask
    }

    /// Global ids of nodes with missing attributes (`V⁻`), ordered.
    pub fn missing_nodes(&self) -> Vec<u32> {
        self.has_attr()
            .iter()
            .enumerate()
            .filter_map(|(v, &h)| (!h).then_some(v as u32))
            .collect()
    }

    /// Fraction of nodes with missing attributes.
    pub fn missing_rate(&self) -> f64 {
        self.missing_nodes().len() as f64 / self.graph.num_nodes() as f64
    }

    /// Label of a global node id (must lie in the target type's range).
    pub fn label_of(&self, v: u32) -> u32 {
        let local = self.graph.local_index(v as usize);
        self.labels[local]
    }

    /// Labels indexed by *global* node id (`u32::MAX` outside the target
    /// type), convenient for loss masking.
    pub fn global_labels(&self) -> Vec<u32> {
        let mut out = vec![u32::MAX; self.graph.num_nodes()];
        let range = self.graph.nodes_of_type(self.target_type);
        for (local, v) in range.enumerate() {
            if local < self.labels.len() {
                out[v] = self.labels[local];
            }
        }
        out
    }

    /// Replaces the features of node type `t` with identity one-hot rows —
    /// the handcrafted completion used by the varying-missing-rate study
    /// (Table IX).
    pub fn with_onehot_features(&self, t: NodeTypeId) -> Dataset {
        let mut d = self.clone();
        let count = self.graph.num_nodes_of_type(t);
        d.features[t] = Some(Matrix::eye(count));
        d
    }

    /// Drops the features of node type `t` (marks them missing).
    pub fn with_missing_features(&self, t: NodeTypeId) -> Dataset {
        let mut d = self.clone();
        d.features[t] = None;
        d
    }

    /// One-line Table-I-style statistics row.
    pub fn stats_row(&self) -> String {
        let per_type: Vec<String> = (0..self.graph.num_node_types())
            .map(|t| {
                let attr = if self.features[t].is_some() { "raw" } else { "missing" };
                format!(
                    "{}:{} ({attr})",
                    self.graph.node_type_name(t),
                    self.graph.num_nodes_of_type(t)
                )
            })
            .collect();
        format!(
            "{} | #nodes {} | #edges {} | target {} | {}",
            self.name,
            self.graph.num_nodes(),
            self.graph.num_edges(),
            self.graph.node_type_name(self.target_type),
            per_type.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 4);
        let a = b.add_node_type("actor", 3);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 5);
        let graph = b.build();
        Dataset {
            name: "toy".into(),
            graph,
            features: vec![Some(Matrix::ones(4, 2)), None],
            labels: vec![0, 1, 0, 1],
            num_classes: 2,
            target_type: 0,
            split: Split { train: vec![0], val: vec![1], test: vec![2, 3] },
            lp_edge_type: Some(0),
        }
    }

    #[test]
    fn attr_masks() {
        let d = toy_dataset();
        assert_eq!(d.has_attr(), vec![true, true, true, true, false, false, false]);
        assert_eq!(d.missing_nodes(), vec![4, 5, 6]);
        assert!((d.missing_rate() - 3.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn global_labels_mask_non_target() {
        let d = toy_dataset();
        let gl = d.global_labels();
        assert_eq!(&gl[..4], &[0, 1, 0, 1]);
        assert!(gl[4..].iter().all(|&l| l == u32::MAX));
        assert_eq!(d.label_of(2), 0);
    }

    #[test]
    fn onehot_and_missing_feature_overrides() {
        let d = toy_dataset();
        let with = d.with_onehot_features(1);
        assert!(with.features[1].is_some());
        assert_eq!(with.features[1].as_ref().unwrap().shape(), (3, 3));
        assert!((with.missing_rate() - 0.0).abs() < 1e-9);
        let without = d.with_missing_features(0);
        assert_eq!(without.missing_nodes().len(), 7);
    }

    #[test]
    fn hgb_split_proportions() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Split::hgb(0..1000u32, &mut rng);
        assert_eq!(s.train.len(), 240);
        assert_eq!(s.val.len(), 60);
        assert_eq!(s.test.len(), 700);
        // Disjoint and complete.
        let mut all: Vec<u32> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
