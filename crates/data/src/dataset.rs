//! The dataset container shared by every experiment.

use autoac_graph::{EdgeTypeId, HeteroGraph, NodeTypeId};
use autoac_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Train/validation/test node split in global node ids.
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// Training nodes.
    pub train: Vec<u32>,
    /// Validation nodes.
    pub val: Vec<u32>,
    /// Test nodes.
    pub test: Vec<u32>,
}

impl Split {
    /// HGB convention: 24% train / 6% validation / 70% test.
    pub fn hgb(nodes: impl Iterator<Item = u32>, rng: &mut impl Rng) -> Self {
        let mut ids: Vec<u32> = nodes.collect();
        ids.shuffle(rng);
        let n = ids.len();
        let n_train = (n as f64 * 0.24).round() as usize;
        let n_val = (n as f64 * 0.06).round() as usize;
        Split {
            train: ids[..n_train].to_vec(),
            val: ids[n_train..n_train + n_val].to_vec(),
            test: ids[n_train + n_val..].to_vec(),
        }
    }

    /// Total number of split nodes.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when the split holds no nodes (e.g. link-prediction-only data).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A heterogeneous graph dataset with (possibly partially missing) node
/// attributes, classification labels on a target node type, and an optional
/// link-prediction target edge type.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `"DBLP"`).
    pub name: String,
    /// The graph.
    pub graph: HeteroGraph,
    /// Raw attribute matrix per node type; `None` marks a type whose
    /// attributes are missing (the `V⁻` side of the paper).
    pub features: Vec<Option<Matrix>>,
    /// Class label per *target-type-local* node index (empty when the
    /// dataset has no classification task).
    pub labels: Vec<u32>,
    /// Number of classes (0 when no classification task).
    pub num_classes: usize,
    /// The node type carrying labels.
    pub target_type: NodeTypeId,
    /// Node split for classification (global ids within the target type).
    pub split: Split,
    /// Edge type used for the link-prediction task, if any.
    pub lp_edge_type: Option<EdgeTypeId>,
}

impl Dataset {
    /// Per-node attribute presence mask (`V⁺` membership).
    pub fn has_attr(&self) -> Vec<bool> {
        let mut mask = vec![false; self.graph.num_nodes()];
        for (t, feat) in self.features.iter().enumerate() {
            if feat.is_some() {
                for v in self.graph.nodes_of_type(t) {
                    // analyze:allow(panic, nodes_of_type yields ids below num_nodes and mask is sized num_nodes)
                    mask[v] = true;
                }
            }
        }
        mask
    }

    /// Global ids of nodes with missing attributes (`V⁻`), ordered.
    pub fn missing_nodes(&self) -> Vec<u32> {
        self.has_attr()
            .iter()
            .enumerate()
            .filter_map(|(v, &h)| (!h).then_some(v as u32))
            .collect()
    }

    /// Fraction of nodes with missing attributes.
    pub fn missing_rate(&self) -> f64 {
        self.missing_nodes().len() as f64 / self.graph.num_nodes() as f64
    }

    /// Label of a global node id (must lie in the target type's range).
    pub fn label_of(&self, v: u32) -> u32 {
        let local = self.graph.local_index(v as usize);
        self.labels[local]
    }

    /// Labels indexed by *global* node id (`u32::MAX` outside the target
    /// type), convenient for loss masking.
    pub fn global_labels(&self) -> Vec<u32> {
        let mut out = vec![u32::MAX; self.graph.num_nodes()];
        let range = self.graph.nodes_of_type(self.target_type);
        for (local, v) in range.enumerate() {
            if local < self.labels.len() {
                out[v] = self.labels[local];
            }
        }
        out
    }

    /// Replaces the features of node type `t` with identity one-hot rows —
    /// the handcrafted completion used by the varying-missing-rate study
    /// (Table IX).
    pub fn with_onehot_features(&self, t: NodeTypeId) -> Dataset {
        let mut d = self.clone();
        let count = self.graph.num_nodes_of_type(t);
        d.features[t] = Some(Matrix::eye(count));
        d
    }

    /// Drops the features of node type `t` (marks them missing).
    pub fn with_missing_features(&self, t: NodeTypeId) -> Dataset {
        let mut d = self.clone();
        d.features[t] = None;
        d
    }

    /// Rebuilds the dataset under a within-type node [`Reordering`]: the
    /// graph is renumbered and every node-aligned payload — per-type feature
    /// rows, target-local labels, split ids — moves with its node. Applying
    /// a reordering and then its inverse reproduces the original dataset
    /// bitwise on every field.
    ///
    /// [`Reordering`]: autoac_graph::Reordering
    pub fn reordered(&self, r: &autoac_graph::Reordering) -> Dataset {
        assert_eq!(
            r.len(),
            self.graph.num_nodes(),
            "Dataset::reordered: permutation covers {} nodes, graph has {}",
            r.len(),
            self.graph.num_nodes()
        );
        let graph = r.apply(&self.graph);
        let features: Vec<Option<Matrix>> = self
            .features
            .iter()
            .enumerate()
            .map(|(t, feat)| {
                feat.as_ref().map(|m| {
                    let start = self.graph.nodes_of_type(t).start;
                    let mut out = Matrix::zeros(m.rows(), m.cols());
                    for old_local in 0..m.rows() {
                        let new_local = r.new_of_old(start + old_local) - start;
                        out.row_mut(new_local).copy_from_slice(m.row(old_local));
                    }
                    out
                })
            })
            .collect();
        let t_start = self.graph.nodes_of_type(self.target_type).start;
        let mut labels = self.labels.clone();
        for (old_local, &l) in self.labels.iter().enumerate() {
            labels[r.new_of_old(t_start + old_local) - t_start] = l;
        }
        let map_ids =
            |ids: &[u32]| ids.iter().map(|&v| r.new_of_old(v as usize) as u32).collect();
        Dataset {
            name: self.name.clone(),
            graph,
            features,
            labels,
            num_classes: self.num_classes,
            target_type: self.target_type,
            split: Split {
                train: map_ids(&self.split.train),
                val: map_ids(&self.split.val),
                test: map_ids(&self.split.test),
            },
            lp_edge_type: self.lp_edge_type,
        }
    }

    /// One-line Table-I-style statistics row.
    pub fn stats_row(&self) -> String {
        let per_type: Vec<String> = (0..self.graph.num_node_types())
            .map(|t| {
                let attr = if self.features[t].is_some() { "raw" } else { "missing" };
                format!(
                    "{}:{} ({attr})",
                    self.graph.node_type_name(t),
                    self.graph.num_nodes_of_type(t)
                )
            })
            .collect();
        format!(
            "{} | #nodes {} | #edges {} | target {} | {}",
            self.name,
            self.graph.num_nodes(),
            self.graph.num_edges(),
            self.graph.node_type_name(self.target_type),
            per_type.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset() -> Dataset {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 4);
        let a = b.add_node_type("actor", 3);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 5);
        let graph = b.build();
        Dataset {
            name: "toy".into(),
            graph,
            features: vec![Some(Matrix::ones(4, 2)), None],
            labels: vec![0, 1, 0, 1],
            num_classes: 2,
            target_type: 0,
            split: Split { train: vec![0], val: vec![1], test: vec![2, 3] },
            lp_edge_type: Some(0),
        }
    }

    #[test]
    fn attr_masks() {
        let d = toy_dataset();
        assert_eq!(d.has_attr(), vec![true, true, true, true, false, false, false]);
        assert_eq!(d.missing_nodes(), vec![4, 5, 6]);
        assert!((d.missing_rate() - 3.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn global_labels_mask_non_target() {
        let d = toy_dataset();
        let gl = d.global_labels();
        assert_eq!(&gl[..4], &[0, 1, 0, 1]);
        assert!(gl[4..].iter().all(|&l| l == u32::MAX));
        assert_eq!(d.label_of(2), 0);
    }

    #[test]
    fn onehot_and_missing_feature_overrides() {
        let d = toy_dataset();
        let with = d.with_onehot_features(1);
        assert!(with.features[1].is_some());
        assert_eq!(with.features[1].as_ref().unwrap().shape(), (3, 3));
        assert!((with.missing_rate() - 0.0).abs() < 1e-9);
        let without = d.with_missing_features(0);
        assert_eq!(without.missing_nodes().len(), 7);
    }

    #[test]
    fn reordered_moves_payloads_with_nodes_and_round_trips() {
        let d = toy_dataset();
        for strategy in [
            autoac_graph::ReorderStrategy::DegreeSorted,
            autoac_graph::ReorderStrategy::BfsClustered,
        ] {
            let r = autoac_graph::Reordering::compute(&d.graph, strategy);
            let rd = d.reordered(&r);
            // Labels follow their nodes.
            for v in d.graph.nodes_of_type(d.target_type) {
                assert_eq!(
                    rd.label_of(r.new_of_old(v) as u32),
                    d.label_of(v as u32),
                    "{strategy:?}: label moved wrong"
                );
            }
            // Feature rows follow their nodes.
            let (old_f, new_f) =
                (d.features[0].as_ref().unwrap(), rd.features[0].as_ref().unwrap());
            for old_local in 0..old_f.rows() {
                let new_local = r.new_of_old(old_local); // type 0 starts at 0
                assert_eq!(new_f.row(new_local), old_f.row(old_local));
            }
            // Round trip is bitwise identity on every field.
            let back = rd.reordered(&r.inverse());
            assert_eq!(
                back.graph.structural_fingerprint(),
                d.graph.structural_fingerprint()
            );
            assert_eq!(back.labels, d.labels);
            assert_eq!(back.split.train, d.split.train);
            assert_eq!(back.split.val, d.split.val);
            assert_eq!(back.split.test, d.split.test);
            assert_eq!(
                back.features[0].as_ref().unwrap().data(),
                d.features[0].as_ref().unwrap().data()
            );
        }
    }

    #[test]
    fn hgb_split_proportions() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Split::hgb(0..1000u32, &mut rng);
        assert_eq!(s.train.len(), 240);
        assert_eq!(s.val.len(), 60);
        assert_eq!(s.test.len(), 700);
        // Disjoint and complete.
        let mut all: Vec<u32> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
