//! Dataset presets mirroring Table I of the paper.
//!
//! Node-type cardinalities and which types carry raw attributes follow the
//! table exactly (at `Scale::Paper`); stored edge counts are chosen so that
//! the directed edge count (2× stored for the citation-style datasets)
//! matches the paper's `#Edges` column. Raw attribute dimensions are scaled
//! down from the original bag-of-words vocabularies to keep the CPU
//! substrate tractable (DESIGN.md §1) — class-information content, not
//! dimensionality, is what the experiments exercise.

use crate::synth::{EdgeTypeSpec, GraphSpec, NodeTypeSpec};

/// DBLP: 4 node types; the classification **target (author) has no raw
/// attributes**, so completion quality directly gates accuracy.
pub fn dblp() -> GraphSpec {
    GraphSpec {
        name: "DBLP",
        node_types: vec![
            NodeTypeSpec { name: "author", count: 4057, raw_dim: None },
            NodeTypeSpec { name: "paper", count: 14328, raw_dim: Some(128) },
            NodeTypeSpec { name: "term", count: 7723, raw_dim: None },
            NodeTypeSpec { name: "venue", count: 20, raw_dim: None },
        ],
        edge_types: vec![
            EdgeTypeSpec { name: "paper-author", src: 1, dst: 0, count: 19645, assortativity: 0.85 },
            EdgeTypeSpec { name: "paper-term", src: 1, dst: 2, count: 85810, assortativity: 0.7 },
            EdgeTypeSpec { name: "paper-venue", src: 1, dst: 3, count: 14328, assortativity: 0.9 },
        ],
        num_classes: 4,
        target_type: 0,
        lp_edge_type: Some(0),
        words_per_node: 24,
        topic_purity: 0.75,
        label_noise: 0.04,
        hub_exponent: 0.75,
    }
}

/// ACM: target (paper) has raw attributes; authors/subjects/terms are
/// missing. Includes paper-paper citations.
pub fn acm() -> GraphSpec {
    GraphSpec {
        name: "ACM",
        node_types: vec![
            NodeTypeSpec { name: "paper", count: 3025, raw_dim: Some(128) },
            NodeTypeSpec { name: "author", count: 5959, raw_dim: None },
            NodeTypeSpec { name: "subject", count: 56, raw_dim: None },
            NodeTypeSpec { name: "term", count: 1902, raw_dim: None },
        ],
        edge_types: vec![
            EdgeTypeSpec { name: "paper-cite-paper", src: 0, dst: 0, count: 5343, assortativity: 0.7 },
            EdgeTypeSpec { name: "paper-author", src: 0, dst: 1, count: 9949, assortativity: 0.75 },
            EdgeTypeSpec { name: "paper-subject", src: 0, dst: 2, count: 3025, assortativity: 0.8 },
            EdgeTypeSpec { name: "paper-term", src: 0, dst: 3, count: 255619, assortativity: 0.5 },
        ],
        num_classes: 3,
        target_type: 0,
        lp_edge_type: None,
        words_per_node: 16,
        topic_purity: 0.65,
        label_noise: 0.06,
        hub_exponent: 0.75,
    }
}

/// IMDB: target (movie) has raw attributes; directors/actors/keywords are
/// missing (77% of nodes — the paper's most attribute-starved dataset).
pub fn imdb() -> GraphSpec {
    GraphSpec {
        name: "IMDB",
        node_types: vec![
            NodeTypeSpec { name: "movie", count: 4932, raw_dim: Some(128) },
            NodeTypeSpec { name: "director", count: 2393, raw_dim: None },
            NodeTypeSpec { name: "actor", count: 6124, raw_dim: None },
            NodeTypeSpec { name: "keyword", count: 7971, raw_dim: None },
        ],
        edge_types: vec![
            EdgeTypeSpec { name: "movie-director", src: 0, dst: 1, count: 4932, assortativity: 0.7 },
            EdgeTypeSpec { name: "movie-actor", src: 0, dst: 2, count: 14779, assortativity: 0.6 },
            EdgeTypeSpec { name: "movie-keyword", src: 0, dst: 3, count: 23610, assortativity: 0.55 },
        ],
        num_classes: 5,
        target_type: 0,
        lp_edge_type: Some(2),
        words_per_node: 16,
        topic_purity: 0.55,
        label_noise: 0.1,
        hub_exponent: 0.8,
    }
}

/// LastFM: link-prediction-only dataset (user-artist); artists carry raw
/// attributes. The paper uses one-hot artist attributes; we substitute
/// fixed random features of modest dimension, which are equivalent to
/// one-hot followed by a (frozen) linear map (DESIGN.md §1).
pub fn lastfm() -> GraphSpec {
    GraphSpec {
        name: "LastFM",
        node_types: vec![
            NodeTypeSpec { name: "user", count: 1892, raw_dim: None },
            NodeTypeSpec { name: "artist", count: 17632, raw_dim: Some(64) },
            // Table I prints 2980 tags, but the dataset's own total (20612)
            // and the released HGB LastFM both imply 1088.
            NodeTypeSpec { name: "tag", count: 1088, raw_dim: None },
        ],
        edge_types: vec![
            EdgeTypeSpec { name: "user-artist", src: 0, dst: 1, count: 92834, assortativity: 0.8 },
            EdgeTypeSpec { name: "user-user", src: 0, dst: 0, count: 25434, assortativity: 0.85 },
            EdgeTypeSpec { name: "artist-tag", src: 1, dst: 2, count: 23253, assortativity: 0.8 },
        ],
        // Latent classes drive assortative wiring; no classification task.
        num_classes: 0,
        target_type: 0,
        lp_edge_type: Some(0),
        words_per_node: 16,
        topic_purity: 0.8,
        label_noise: 0.0,
        hub_exponent: 0.8,
    }
}

/// All four presets in paper order.
pub fn all() -> Vec<GraphSpec> {
    vec![dblp(), acm(), imdb(), lastfm()]
}

/// Looks up a preset by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<GraphSpec> {
    match name.to_ascii_lowercase().as_str() {
        "dblp" => Some(dblp()),
        "acm" => Some(acm()),
        "imdb" => Some(imdb()),
        "lastfm" => Some(lastfm()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, Scale};

    #[test]
    fn paper_scale_matches_table1_node_counts() {
        let d = generate(&dblp(), Scale::Paper, 0);
        assert_eq!(d.graph.num_nodes(), 26128);
        assert_eq!(d.graph.num_nodes_of_type(0), 4057);
        assert_eq!(d.graph.num_nodes_of_type(3), 20);

        let d = generate(&acm(), Scale::Paper, 0);
        assert_eq!(d.graph.num_nodes(), 10942);

        let d = generate(&imdb(), Scale::Paper, 0);
        assert_eq!(d.graph.num_nodes(), 21420);

        let d = generate(&lastfm(), Scale::Paper, 0);
        assert_eq!(d.graph.num_nodes(), 20612);
    }

    #[test]
    fn missing_rates_match_paper_section_viii() {
        // Paper §V-H: inherent missing rates DBLP 45%, ACM 69%, IMDB 76%.
        // ACM's exact Table-I ratio is (5959+56+1902)/10942 = 72.4%; the
        // paper's 69% is a rounding of a slightly different accounting.
        let cases = [("dblp", 0.45), ("acm", 0.724), ("imdb", 0.76)];
        for (name, want) in cases {
            let d = generate(&by_name(name).unwrap(), Scale::Paper, 0);
            let got = d.missing_rate();
            assert!(
                (got - want).abs() < 0.02,
                "{name}: missing rate {got:.3}, paper says {want}"
            );
        }
    }

    #[test]
    fn target_attribute_presence_matches_table1() {
        let d = generate(&dblp(), Scale::Tiny, 0);
        assert!(d.features[d.target_type].is_none(), "DBLP authors have no raw attrs");
        let d = generate(&acm(), Scale::Tiny, 0);
        assert!(d.features[d.target_type].is_some(), "ACM papers have raw attrs");
        let d = generate(&imdb(), Scale::Tiny, 0);
        assert!(d.features[d.target_type].is_some(), "IMDB movies have raw attrs");
    }

    #[test]
    fn lastfm_is_lp_only() {
        let spec = lastfm();
        let d = generate(&spec, Scale::Tiny, 0);
        assert_eq!(d.num_classes, 0);
        assert!(d.labels.is_empty());
        assert!(d.split.is_empty());
        assert_eq!(d.lp_edge_type, Some(0));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("DBLP").is_some());
        assert!(by_name("Imdb").is_some());
        assert!(by_name("cora").is_none());
        assert_eq!(all().len(), 4);
    }
}
