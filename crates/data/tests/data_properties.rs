//! Property-based tests over the dataset generator and masking machinery.

use autoac_data::{mask_edges, presets, synth, Scale};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_datasets_are_internally_consistent(
        seed in 0u64..1000,
        which in 0usize..4,
    ) {
        let spec = presets::all().swap_remove(which);
        let d = synth::generate(&spec, Scale::Tiny, seed);
        // Feature matrices match node counts.
        for (t, f) in d.features.iter().enumerate() {
            if let Some(m) = f {
                prop_assert_eq!(m.rows(), d.graph.num_nodes_of_type(t));
                prop_assert!(m.check_finite().is_ok());
            }
        }
        // Labels in range; split covers exactly the target nodes.
        if d.num_classes > 0 {
            prop_assert_eq!(d.labels.len(), d.graph.num_nodes_of_type(d.target_type));
            prop_assert!(d.labels.iter().all(|&l| (l as usize) < d.num_classes));
            let range = d.graph.nodes_of_type(d.target_type);
            let mut all: Vec<u32> = d
                .split
                .train
                .iter()
                .chain(&d.split.val)
                .chain(&d.split.test)
                .copied()
                .collect();
            all.sort_unstable();
            let want: Vec<u32> = range.map(|v| v as u32).collect();
            prop_assert_eq!(all, want);
        }
        // has_attr agrees with features.
        let has = d.has_attr();
        for (t, f) in d.features.iter().enumerate() {
            for v in d.graph.nodes_of_type(t) {
                prop_assert_eq!(has[v], f.is_some());
            }
        }
    }

    #[test]
    fn generator_has_no_duplicate_edges(seed in 0u64..200) {
        let d = synth::generate(&presets::imdb(), Scale::Tiny, seed);
        for e in 0..d.graph.num_edge_types() {
            let edges = d.graph.edges_of_type(e);
            let set: std::collections::HashSet<_> = edges.iter().collect();
            prop_assert_eq!(set.len(), edges.len(), "duplicates in edge type {}", e);
        }
    }

    #[test]
    fn masking_is_leak_free(seed in 0u64..100, rate in 0.05f64..0.4) {
        let d = synth::generate(&presets::lastfm(), Scale::Tiny, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = mask_edges(&d, rate, &mut rng);
        let remaining: std::collections::HashSet<_> =
            split.train_data.graph.edges_of_type(split.edge_type).iter().copied().collect();
        for p in &split.test_pos {
            prop_assert!(!remaining.contains(p), "positive {p:?} leaked into training");
        }
        for n in &split.test_neg {
            prop_assert!(!remaining.contains(n), "negative {n:?} is an actual edge");
        }
        // Masked count within one edge of the requested rate.
        let total = d.graph.edges_of_type(split.edge_type).len();
        let want = (total as f64 * rate).round() as usize;
        prop_assert_eq!(split.test_pos.len(), want);
    }
}

#[test]
fn scale_factor_is_monotone() {
    let spec = presets::dblp();
    let mut last = 0;
    for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
        let d = synth::generate(&spec, scale, 0);
        assert!(d.graph.num_nodes() > last);
        last = d.graph.num_nodes();
    }
}

#[test]
fn custom_scale_factor() {
    let spec = presets::imdb();
    let half = synth::generate(&spec, Scale::Factor(0.5), 0);
    let full = synth::generate(&spec, Scale::Paper, 0);
    let ratio = half.graph.num_nodes() as f64 / full.graph.num_nodes() as f64;
    assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
}
