//! Adversarial-input property tests for the strict JSON parser.
//!
//! The parser now sits on a network boundary (`autoac-serve` feeds it raw
//! request bodies), so beyond correctness on well-formed documents it must
//! *reject* — never panic on, never recurse to death on — arbitrary bytes:
//! truncated documents, trailing garbage, malformed escapes, and nesting
//! bombs. Every test here either round-trips a valid document or asserts a
//! clean `Err`; a panic or abort anywhere fails the suite.
//!
//! The vendored proptest has no regex-string or recursive strategies, so
//! the input generators are small hand-rolled [`Strategy`] impls.

use autoac_data::json::{self, Value};
use proptest::prelude::*;
use rand::Rng;

/// `parse` must return, not panic — exercised on every input below.
fn parse_total(input: &str) -> Result<Value, json::ParseError> {
    json::parse(input)
}

/// Strategy: strings of up to `max_len` chars drawn from `charset`.
struct Soup {
    charset: &'static [char],
    max_len: usize,
}

impl Strategy for Soup {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(0..self.max_len + 1);
        (0..len).map(|_| self.charset[rng.gen_range(0..self.charset.len())]).collect()
    }
}

/// Strategy: well-formed JSON document trees, nesting bounded well under
/// [`json::MAX_DEPTH`].
struct Doc {
    max_depth: usize,
}

fn gen_doc(rng: &mut StdRng, depth: usize) -> Value {
    let leafy = depth == 0 || rng.gen_range(0..3) == 0;
    if leafy {
        match rng.gen_range(0..4) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_range(0..2) == 0),
            2 => {
                // f32-valued numbers, the writer's bit-exact contract.
                let x = f32::from_bits(rng.gen::<u32>());
                Value::Num(if x.is_finite() { x as f64 } else { 0.0 })
            }
            _ => {
                // Strings with escapes, controls, unicode.
                const CHARS: &[char] =
                    &['a', 'b', '"', '\\', '\n', '\t', '\u{1}', 'é', '😀', '/', ' '];
                let s = Soup { charset: CHARS, max_len: 10 };
                Value::Str(s.generate(rng))
            }
        }
    } else if rng.gen_range(0..2) == 0 {
        let n = rng.gen_range(0..4);
        Value::Arr((0..n).map(|_| gen_doc(rng, depth - 1)).collect())
    } else {
        let n = rng.gen_range(0..4);
        Value::Obj(
            (0..n)
                .map(|i| (format!("k{i}"), gen_doc(rng, depth - 1)))
                .collect(),
        )
    }
}

impl Strategy for Doc {
    type Value = Value;

    fn generate(&self, rng: &mut StdRng) -> Value {
        gen_doc(rng, self.max_depth)
    }
}

#[test]
fn depth_limit_rejects_nesting_bombs_without_blowing_the_stack() {
    // One byte per level: without the depth limit this overflows the
    // thread stack long before the allocator notices anything.
    for bomb in ["[".repeat(100_000), "{\"k\":".repeat(100_000)] {
        let err = parse_total(&bomb).expect_err("nesting bomb must be rejected");
        assert_eq!(err.msg, "nesting too deep", "{err}");
    }
    // Mixed nesting counts against the same budget.
    let mixed = "[{\"k\":".repeat(50_000) + "1";
    assert!(parse_total(&mixed).is_err());
}

#[test]
fn depth_limit_boundary_is_exact() {
    // MAX_DEPTH-deep documents parse; one level deeper is rejected.
    let deepest = "[".repeat(json::MAX_DEPTH - 1) + "1" + &"]".repeat(json::MAX_DEPTH - 1);
    assert!(parse_total(&deepest).is_ok(), "depth MAX_DEPTH-1 must parse");
    let too_deep = "[".repeat(json::MAX_DEPTH) + "1" + &"]".repeat(json::MAX_DEPTH);
    let err = parse_total(&too_deep).expect_err("depth MAX_DEPTH must be rejected");
    assert_eq!(err.msg, "nesting too deep");
}

#[test]
fn malformed_escapes_error_cleanly() {
    for bad in [
        r#""\x""#,         // unknown escape
        r#""\u12""#,       // truncated \u
        r#""\u12zz""#,     // non-hex \u
        r#""\ud800""#,     // lone high surrogate
        r#""\ud800\n""#,   // high surrogate followed by non-surrogate escape
        r#""\ud800A""#,    // high surrogate + raw char
        r#""\"#,           // escape at end of input
        "\"raw\u{1}ctl\"", // raw control character
    ] {
        assert!(parse_total(bad).is_err(), "must reject {bad:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Biased toward JSON structural bytes so the container/escape paths
    // actually get hit: either parses or errors; no panic, no abort.
    #[test]
    fn jsonish_soup_never_panics(input in Soup {
        charset: &['[', ']', '{', '}', '"', ',', ':', '\\', '-', '0', '1', '9',
                   '.', 'e', '+', 'n', 'u', 'l', 't', 'r', 'f', ' ', '\n', 'é'],
        max_len: 48,
    }) {
        let _ = parse_total(&input);
    }

    // Every valid document round-trips writer → parser exactly.
    #[test]
    fn roundtrip_is_exact(doc in Doc { max_depth: 5 }) {
        let text = json::to_string(&doc);
        let back = parse_total(&text).expect("writer output must parse");
        prop_assert_eq!(back, doc);
    }

    // Truncating a valid document anywhere must produce an error, not a
    // panic. Only container-wrapped documents are used: every proper
    // prefix of `[…]` is incomplete, whereas a bare scalar like `123`
    // has prefixes that legitimately parse.
    #[test]
    fn truncation_errors_cleanly(doc in Doc { max_depth: 4 }, frac in 0.0f64..1.0) {
        let text = json::to_string(&Value::Arr(vec![doc]));
        let mut cut = ((text.len() as f64 * frac) as usize).min(text.len() - 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(parse_total(&text[..cut]).is_err(), "prefix {:?}", &text[..cut]);
    }

    // Trailing garbage after a complete document is always rejected. The
    // container wrap keeps the document self-delimiting (`7` + `1` would
    // merge into the longer number `71`; `[7]` + `1` cannot).
    #[test]
    fn trailing_garbage_is_rejected(doc in Doc { max_depth: 3 }, tail in Soup {
        charset: &['a', 'z', '{', '[', '"', '1'],
        max_len: 8,
    }) {
        if !tail.is_empty() {
            let text = json::to_string(&Value::Arr(vec![doc])) + &tail;
            prop_assert!(parse_total(&text).is_err(), "accepted {text:?}");
        }
    }

    // Escape-sequence soup inside a string literal: parses to the right
    // unescaped content or errors — never panics.
    #[test]
    fn escape_soup_never_panics(body in Soup {
        charset: &['\\', 'n', 't', 'u', '"', 'd', '8', '0', 'a', 'f', 'F', ' ', '/'],
        max_len: 16,
    }) {
        let _ = parse_total(&format!("\"{body}\""));
    }
}
