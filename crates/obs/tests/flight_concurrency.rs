//! Concurrency torture for the flight recorder's seqlock ring: writers
//! from many threads while readers drain continuously, then structural
//! checks — no torn records ever surface, and eviction is oldest-first.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use autoac_obs::{FlightKind, Ring};

/// Message whose content is a pure function of (thread, iteration), so a
/// reader can verify every surfaced record against what the writer wrote.
fn msg_for(thread: usize, i: usize) -> String {
    format!("t{thread}-i{i}-{}", "x".repeat((thread * 7 + i) % 40))
}

#[test]
fn hammered_ring_never_surfaces_torn_records() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4000;
    let ring = Arc::new(Ring::new(256));
    let stop = Arc::new(AtomicBool::new(false));

    // Readers snapshot continuously while writers are mid-flight.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for r in ring.snapshot() {
                        // A torn record would pair a thread id with the
                        // wrong iteration payload or a truncated body.
                        let a = r.a as usize;
                        let b = r.b as usize;
                        assert!(a < THREADS, "thread id out of range: {a}");
                        assert!(b < PER_THREAD, "iteration out of range: {b}");
                        let expected = msg_for(a, b);
                        let expected = if expected.len() > autoac_obs::MSG_MAX {
                            expected[..autoac_obs::MSG_MAX].to_string()
                        } else {
                            expected
                        };
                        assert_eq!(r.msg, expected, "torn record at seq {}", r.seq);
                        assert_eq!(r.kind, FlightKind::Request);
                        seen += 1;
                    }
                }
                seen
            })
        })
        .collect();

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    ring.record(FlightKind::Request, t as u64, i as u64, &msg_for(t, i));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let mut reads = 0usize;
    for r in readers {
        reads += r.join().expect("reader");
    }
    assert!(reads > 0, "readers observed records mid-hammer");

    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(ring.total_recorded(), total);
    // Writers that raced the same slot on the final lap can leave it
    // permanently torn — by design the reader discards it, so at
    // quiescence the snapshot may be short, but only by slots that had
    // concurrent last-lap writers.
    let quiescent = ring.snapshot();
    assert!(
        quiescent.len() >= ring.capacity() - THREADS,
        "lost more slots than could have collided: {}",
        quiescent.len()
    );
    for pair in quiescent.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "snapshot not seq-ordered");
    }

    // One more single-threaded lap gives every slot an uncontended final
    // writer; now the snapshot must be exactly full, and eviction order
    // must be oldest-first over the last `capacity` sequence numbers.
    for i in 0..ring.capacity() {
        ring.record(FlightKind::Request, 0, i as u64, &msg_for(0, i));
    }
    let finals = ring.snapshot();
    assert_eq!(finals.len(), ring.capacity());
    for (i, r) in finals.iter().enumerate() {
        assert_eq!(r.seq, total + i as u64, "oldest-first eviction order");
    }
}

#[test]
fn drain_during_writes_yields_monotone_sequences() {
    let ring = Arc::new(Ring::new(64));
    let writer = {
        let ring = Arc::clone(&ring);
        std::thread::spawn(move || {
            for i in 0..20_000u64 {
                ring.record(FlightKind::Warn, i, 0, "w");
            }
        })
    };
    // Each snapshot must be internally seq-sorted even while the writer
    // laps the ring many times over.
    for _ in 0..200 {
        let snap = ring.snapshot();
        for pair in snap.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "snapshot not seq-ordered");
        }
    }
    writer.join().expect("writer");
    let snap = ring.snapshot();
    assert_eq!(snap.len(), 64);
    assert_eq!(snap.last().map(|r| r.seq), Some(19_999));
}
