//! Property tests for histogram bucket boundaries: every recorded value
//! lands in exactly one bucket, and that bucket's bounds contain it.

use autoac_obs::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Membership predicate matching the documented bucket semantics:
/// `[lo, hi)` half-open, except the last bucket also admits `+inf`.
fn in_bucket(i: usize, v: f64) -> bool {
    let (lo, hi) = bucket_bounds(i);
    if i == NUM_BUCKETS - 1 {
        v >= lo
    } else {
        v >= lo && v < hi
    }
}

/// Builds an f64 from random bits, skewed toward the interesting range by
/// also mixing in plain magnitudes.
fn value_from(bits: u64, magnitude: f64) -> f64 {
    if bits % 3 == 0 {
        f64::from_bits(bits)
    } else {
        magnitude
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_value_lands_in_exactly_one_bucket(
        bits in 0u64..u64::MAX,
        magnitude in 0.0f64..1e20,
    ) {
        let v = value_from(bits, magnitude);
        if v.is_nan() {
            // NaN is clamped into bucket 0 by record(); index agrees.
            prop_assert_eq!(bucket_index(v), 0);
        } else {
            let idx = bucket_index(v);
            prop_assert!(idx < NUM_BUCKETS);
            prop_assert!(in_bucket(idx, v), "v={} idx={} bounds={:?}", v, idx, bucket_bounds(idx));
            // Exactly one: membership fails for every other bucket.
            let members = (0..NUM_BUCKETS).filter(|&i| in_bucket(i, v)).count();
            prop_assert_eq!(members, 1, "v={} claimed by {} buckets", v, members);
        }
    }

    #[test]
    fn recorded_population_is_fully_accounted_for(
        values in vec(0.0f64..1e12, 1..64),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min, min);
        prop_assert_eq!(h.max, max);
        // The min and max must sit inside the extreme non-empty buckets.
        let first = h.buckets.iter().position(|&c| c > 0).unwrap();
        let last = h.buckets.iter().rposition(|&c| c > 0).unwrap();
        prop_assert!(in_bucket(first, min));
        prop_assert!(in_bucket(last, max));
    }

    /// Pins `quantile`'s error bound: the estimate may interpolate, but it
    /// can never leave the power-of-two bucket holding the true order
    /// statistic (clamped to the recorded `[min, max]`). This is the
    /// contract `/metrics` p50/p90/p99 gauges and the SLO windows rely on.
    #[test]
    fn quantile_stays_within_the_order_statistics_bucket(
        values in vec(0.0f64..1e12, 1..128),
        // Over-generate past 1.0 to exercise the q-clamping path too.
        qs in vec(0.0f64..1.25, 1..8),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        for &q in &qs {
            let est = h.quantile(q);
            let q = q.clamp(0.0, 1.0);
            // The implementation walks to continuous rank q*(n-1)+1; the
            // occupant at ceil(rank) is the true order statistic whose
            // bucket the estimate interpolates within.
            let target = q * (n as f64 - 1.0) + 1.0;
            let rank = (target.ceil() as usize).clamp(1, n);
            let stat = sorted[rank - 1];
            let (lo, hi) = bucket_bounds(bucket_index(stat));
            let lo = lo.max(sorted[0]);
            let hi = hi.min(sorted[n - 1]);
            prop_assert!(
                est >= lo && est <= hi,
                "q={} est={} order-stat={} allowed=[{}, {}]", q, est, stat, lo, hi
            );
        }
    }
}
