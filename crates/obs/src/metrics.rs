//! Metrics registry (counters / gauges / histograms) and the event buffer
//! (time series + warnings).
//!
//! Counters, gauges and histograms are *registry* state: name-keyed,
//! aggregated in place, exported once at drain. Series points and warnings
//! are *events*: they carry a step/timestamp and are buffered per thread
//! (in the span module's thread state, so one flush path covers both),
//! then ordered by timestamp in the JSONL output.
//!
//! Every recording function is a no-op behind a single [`enabled`] branch
//! — except [`warn`], which always prints to stderr (a dropped checkpoint
//! must be visible even with obs off) and only the *counting* is gated.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::env::enabled;
use crate::hist::Histogram;
use crate::span::{now_ns, push_event};

/// A buffered observability event.
#[derive(Clone, Debug)]
pub enum Event {
    /// One step of a named time series (e.g. per-epoch validation loss).
    /// Multi-valued steps carry one entry per cluster / class / etc.
    Series {
        /// Series name, e.g. `alpha_entropy`.
        name: &'static str,
        /// Step index (epoch number for training series).
        step: u64,
        /// Values recorded at this step.
        values: Vec<f64>,
        /// Nanoseconds since process obs start, for cross-thread ordering.
        ts_ns: u64,
    },
    /// A counted warning (also printed to stderr at emit time).
    Warn {
        /// Subsystem tag, e.g. `ckpt`.
        tag: &'static str,
        /// Human-readable message.
        msg: String,
        /// Nanoseconds since process obs start.
        ts_ns: u64,
    },
}

impl Event {
    /// Timestamp used to order events in the JSONL output.
    pub fn ts_ns(&self) -> u64 {
        match self {
            Event::Series { ts_ns, .. } | Event::Warn { ts_ns, .. } => *ts_ns,
        }
    }
}

/// Key identifying one recorded kernel shape: the op name plus its
/// `[m, k, n, nnz]` dimensions (`nnz` is 0 for dense ops). Shapes in a
/// training loop are highly repetitive — the same layer dims every epoch —
/// so aggregating counts per exact key stays small.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShapeKey {
    /// Kernel op name, e.g. `matmul` or `spmm`.
    pub op: &'static str,
    /// `[m, k, n, nnz]`; unused slots are 0.
    pub dims: [usize; 4],
}

/// Distinct shape keys retained per drain; further *new* shapes are dropped
/// (counted under `kernel.shape_dropped`) to bound memory on adversarial
/// workloads. Existing keys keep counting.
pub const MAX_SHAPE_KEYS: usize = 4096;

#[derive(Clone, Default)]
pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, f64>,
    pub(crate) hists: BTreeMap<&'static str, Histogram>,
    pub(crate) shapes: BTreeMap<ShapeKey, u64>,
    pub(crate) warns: BTreeMap<&'static str, u64>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Empties the registry, returning its contents (drain-time helper).
pub(crate) fn take_registry() -> Registry {
    std::mem::take(&mut *registry())
}

/// Clones the registry without emptying it (snapshot-time helper): the
/// serving `/metrics` endpoint must be able to export at any moment
/// without resetting counters for the next scrape or for the process-exit
/// drain.
pub(crate) fn clone_registry() -> Registry {
    registry().clone()
}

/// Adds `n` to the counter `name`. Counters only go up between drains.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    *registry().counters.entry(name).or_insert(0) += n;
}

/// Sets the gauge `name` to `v` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    registry().gauges.insert(name, v);
}

/// Records `v` into the histogram `name`.
#[inline]
pub fn hist_record(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    registry().hists.entry(name).or_default().record(v);
}

/// Records `v` into the histogram `name` with a trace-id exemplar: the
/// value lands in the buckets exactly as [`hist_record`] would place it
/// (bitwise-identical aggregates), and when `trace_id != 0` the
/// recording is additionally retained as an [`crate::Exemplar`] if it is
/// among the histogram's largest — so `/metrics` tail buckets carry a
/// concrete request id to look up in `/debug/traces`.
#[inline]
pub fn hist_record_ex(name: &'static str, v: f64, trace_id: u64) {
    if !enabled() {
        return;
    }
    let ts = now_ns();
    registry().hists.entry(name).or_default().record_exemplar(v, trace_id, ts);
}

/// Records one execution of a kernel with the given shape. Aggregated per
/// exact `(op, dims)` key and exported as `"type":"shape"` JSONL records —
/// the replay input for the offline kernel tuner
/// (`bench_kernels --replay`).
#[inline]
pub fn shape_record(op: &'static str, dims: [usize; 4]) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    let key = ShapeKey { op, dims };
    if reg.shapes.len() >= MAX_SHAPE_KEYS && !reg.shapes.contains_key(&key) {
        *reg.counters.entry("kernel.shape_dropped").or_insert(0) += 1;
        return;
    }
    *reg.shapes.entry(key).or_insert(0) += 1;
}

/// Records a single-valued time-series point.
#[inline]
pub fn series(name: &'static str, step: u64, value: f64) {
    if !enabled() {
        return;
    }
    push_event(Event::Series { name, step, values: vec![value], ts_ns: now_ns() });
}

/// Records a multi-valued time-series point (one value per cluster, class,
/// …) — the shape of the Fig. 4/5 trajectory data.
#[inline]
pub fn series_vec(name: &'static str, step: u64, values: &[f64]) {
    if !enabled() {
        return;
    }
    push_event(Event::Series { name, step, values: values.to_vec(), ts_ns: now_ns() });
}

/// Emits a warning: always printed to stderr (this is the sanctioned
/// routing for what used to be bare `eprintln!` in library crates — the
/// `eprintln-in-lib` lint points here), and, when obs is enabled,
/// additionally buffered as a [`Event::Warn`] and counted under
/// `warnings_total` so run summaries surface it.
pub fn warn(tag: &'static str, msg: &str) {
    eprintln!("autoac-{tag}: {msg}");
    // The flight recorder is its own always-on system (gated only by
    // AUTOAC_FLIGHT): a warning must survive into a post-mortem dump even
    // when the metrics registry is off.
    crate::flight::flight_record(
        crate::flight::FlightKind::Warn,
        0,
        0,
        &format!("{tag}: {msg}"),
    );
    if !enabled() {
        return;
    }
    let mut reg = registry();
    *reg.counters.entry("warnings_total").or_insert(0) += 1;
    *reg.warns.entry(tag).or_insert(0) += 1;
    drop(reg);
    push_event(Event::Warn { tag, msg: msg.to_string(), ts_ns: now_ns() });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::with_obs;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        with_obs(false, || {
            counter_add("c", 5);
            gauge_set("g", 1.0);
            hist_record("h", 2.0);
            series("s", 0, 1.0);
        });
        let rep = crate::drain();
        assert_eq!(rep.counter("c"), 0);
        assert!(rep.gauges.is_empty() && rep.hists.is_empty() && rep.events.is_empty());
    }

    #[test]
    fn registry_aggregates_and_drains() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        with_obs(true, || {
            counter_add("hits", 2);
            counter_add("hits", 3);
            gauge_set("rate", 0.25);
            gauge_set("rate", 0.75);
            hist_record("lat", 3.0);
            series_vec("ent", 7, &[0.1, 0.2]);
        });
        let rep = crate::drain();
        assert_eq!(rep.counter("hits"), 5);
        assert_eq!(rep.gauges.get("rate"), Some(&0.75));
        let h = rep.hists.get("lat").expect("histogram present");
        assert_eq!((h.count, h.min, h.max), (1, 3.0, 3.0));
        match &rep.events[..] {
            [Event::Series { name, step, values, .. }] => {
                assert_eq!((*name, *step), ("ent", 7));
                assert_eq!(values, &[0.1, 0.2]);
            }
            other => panic!("expected one series event, got {other:?}"),
        }
        // Second drain is empty: drain removes what it returns.
        let rep2 = crate::drain();
        assert_eq!(rep2.counter("hits"), 0);
        assert!(rep2.events.is_empty());
    }

    #[test]
    fn shape_record_aggregates_per_exact_key() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        with_obs(true, || {
            shape_record("matmul", [128, 64, 32, 0]);
            shape_record("matmul", [128, 64, 32, 0]);
            shape_record("spmm", [128, 128, 32, 900]);
        });
        with_obs(false, || shape_record("matmul", [1, 1, 1, 0]));
        let rep = crate::drain();
        assert_eq!(rep.shapes.len(), 2);
        assert_eq!(
            rep.shapes.get(&ShapeKey { op: "matmul", dims: [128, 64, 32, 0] }),
            Some(&2)
        );
        assert_eq!(
            rep.shapes.get(&ShapeKey { op: "spmm", dims: [128, 128, 32, 900] }),
            Some(&1)
        );
    }

    #[test]
    fn warn_counts_only_when_enabled() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        with_obs(false, || warn("test", "invisible to the registry"));
        with_obs(true, || warn("test", "counted"));
        let rep = crate::drain();
        assert_eq!(rep.counter("warnings_total"), 1);
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.warns.get("test"), Some(&1), "per-tag count follows the gate");
    }

    #[test]
    fn warns_aggregate_per_tag() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        with_obs(true, || {
            warn("ckpt", "a");
            warn("ckpt", "b");
            warn("serve", "c");
        });
        let rep = crate::drain();
        assert_eq!(rep.counter("warnings_total"), 3);
        assert_eq!(rep.warns.get("ckpt"), Some(&2));
        assert_eq!(rep.warns.get("serve"), Some(&1));
    }

    #[test]
    fn hist_record_ex_matches_plain_record_population() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        with_obs(true, || {
            hist_record("plain", 5.0);
            hist_record_ex("traced", 5.0, 0xabc);
            hist_record_ex("traced", 9.0, 0); // untraced recording
        });
        let rep = crate::drain();
        let plain = rep.hists.get("plain").expect("plain");
        let traced = rep.hists.get("traced").expect("traced");
        assert_eq!(traced.count, 2);
        assert_eq!(plain.buckets, {
            let mut b = traced.buckets;
            // Remove the second recording's bucket to compare the first.
            b[crate::bucket_index(9.0)] -= 1;
            b
        });
        let ex: Vec<_> = traced.exemplars().collect();
        assert_eq!(ex.len(), 1, "only the traced recording leaves an exemplar");
        assert_eq!(ex[0].trace_id, 0xabc);
    }
}
