//! Rolling SLO tracking with multi-window burn-rate alerting.
//!
//! One [`SloEngine`] tracks a single latency/availability objective: a
//! request is **bad** when it errored (5xx) or exceeded the latency
//! objective. Observations are bucketed into fixed wall-clock ticks
//! (default 1 s) held in a ring of [`cfg.slow_ticks`](SloConfig) slots, so
//! memory is fixed and old ticks expire by overwrite.
//!
//! The alert rule is the classic multi-window, multi-burn-rate pair from
//! SRE practice: the **burn rate** of a window is
//! `bad_rate / (1 - availability_target)` — how many times faster than
//! "exactly exhausting the error budget" the service is burning — and the
//! alert fires only when *both* the fast window (default 60 ticks) and
//! the slow window (default 300 ticks) exceed their thresholds. The fast
//! window gives detection latency; the slow window keeps a brief spike
//! from paging.
//!
//! Everything is computed from the same power-of-two [`Histogram`]s the
//! rest of obs uses, so `/slo` quantiles agree with `/metrics` quantiles
//! by construction.

use std::sync::Mutex;

use crate::hist::Histogram;
use crate::metrics::gauge_set;
use crate::span::now_ns;

/// SLO objective and evaluation knobs.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Latency objective in nanoseconds; a slower request is "bad".
    pub latency_objective_ns: f64,
    /// Availability target in `[0, 1)`, e.g. `0.999`. The error budget is
    /// `1 - target`.
    pub availability_target: f64,
    /// Tick width in nanoseconds (observations bucket by `now / tick_ns`).
    pub tick_ns: u64,
    /// Fast-window length in ticks (detection).
    pub fast_ticks: usize,
    /// Slow-window length in ticks (confirmation); also the ring size.
    pub slow_ticks: usize,
    /// Burn-rate threshold the fast window must exceed.
    pub burn_fast: f64,
    /// Burn-rate threshold the slow window must exceed.
    pub burn_slow: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            latency_objective_ns: 25_000_000.0, // 25 ms
            availability_target: 0.999,
            tick_ns: 1_000_000_000,
            fast_ticks: 60,
            slow_ticks: 300,
            burn_fast: 14.4,
            burn_slow: 6.0,
        }
    }
}

/// Aggregates for one tick.
#[derive(Clone)]
struct Tick {
    tick: u64,
    total: u64,
    errors: u64,
    bad: u64,
    hist: Histogram,
}

impl Tick {
    fn fresh(tick: u64) -> Tick {
        Tick { tick, total: 0, errors: 0, bad: 0, hist: Histogram::new() }
    }
}

/// Aggregated statistics over one evaluation window.
#[derive(Clone, Debug)]
pub struct WindowStat {
    /// Window length in ticks.
    pub ticks: usize,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests that errored.
    pub errors: u64,
    /// Requests that errored *or* missed the latency objective.
    pub bad: u64,
    /// `errors / total` (0 when empty).
    pub error_rate: f64,
    /// `bad / total` (0 when empty).
    pub bad_rate: f64,
    /// `bad_rate / (1 - target)`: 1.0 burns the budget exactly.
    pub burn_rate: f64,
    /// Median latency over the window, ns (NaN when empty).
    pub p50_ns: f64,
    /// 90th-percentile latency, ns (NaN when empty).
    pub p90_ns: f64,
    /// 99th-percentile latency, ns (NaN when empty).
    pub p99_ns: f64,
}

/// One full SLO evaluation: both windows plus the alert decision.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// The latency objective evaluated against, ns.
    pub objective_ns: f64,
    /// The availability target.
    pub target: f64,
    /// Fast-window statistics.
    pub fast: WindowStat,
    /// Slow-window statistics.
    pub slow: WindowStat,
    /// Fast-window burn threshold.
    pub burn_fast_threshold: f64,
    /// Slow-window burn threshold.
    pub burn_slow_threshold: f64,
    /// True when both windows exceed their burn thresholds.
    pub firing: bool,
}

/// Rolling multi-window SLO tracker. All methods take `&self`; a single
/// mutex guards the tick ring (held only for O(ring) work, never I/O).
pub struct SloEngine {
    cfg: SloConfig,
    ring: Mutex<Vec<Tick>>,
}

impl SloEngine {
    /// An engine with the given objective; the ring holds
    /// `cfg.slow_ticks` ticks.
    pub fn new(cfg: SloConfig) -> SloEngine {
        let len = cfg.slow_ticks.max(1);
        SloEngine { cfg, ring: Mutex::new((0..len).map(|_| Tick::fresh(u64::MAX)).collect()) }
    }

    /// The configuration this engine evaluates.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Records one request outcome at the current wall-clock tick.
    pub fn observe(&self, latency_ns: f64, is_error: bool) {
        self.observe_at(now_ns() / self.cfg.tick_ns.max(1), latency_ns, is_error);
    }

    /// Records one request outcome at an explicit tick (deterministic
    /// seam for tests and offline replay of trace logs).
    pub fn observe_at(&self, tick: u64, latency_ns: f64, is_error: bool) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let len = ring.len().max(1);
        let Some(slot) = ring.get_mut((tick % len as u64) as usize) else {
            return;
        };
        if slot.tick != tick {
            *slot = Tick::fresh(tick); // overwrite an expired tick
        }
        slot.total += 1;
        if is_error {
            slot.errors += 1;
        }
        if is_error || latency_ns > self.cfg.latency_objective_ns {
            slot.bad += 1;
        }
        slot.hist.record(latency_ns);
    }

    /// Evaluates both windows as of the current wall-clock tick.
    pub fn status(&self) -> SloStatus {
        self.status_at(now_ns() / self.cfg.tick_ns.max(1))
    }

    /// Evaluates both windows as of an explicit tick.
    pub fn status_at(&self, tick: u64) -> SloStatus {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let window = |ticks: usize| {
            let mut total = 0u64;
            let mut errors = 0u64;
            let mut bad = 0u64;
            let mut hist = Histogram::new();
            for slot in ring.iter() {
                // In-window: tick - ticks < slot.tick <= tick.
                if slot.tick <= tick && slot.tick.saturating_add(ticks as u64) > tick {
                    total += slot.total;
                    errors += slot.errors;
                    bad += slot.bad;
                    merge_hist(&mut hist, &slot.hist);
                }
            }
            let rate = |n: u64| if total == 0 { 0.0 } else { n as f64 / total as f64 };
            let budget = (1.0 - self.cfg.availability_target).max(f64::MIN_POSITIVE);
            WindowStat {
                ticks,
                total,
                errors,
                bad,
                error_rate: rate(errors),
                bad_rate: rate(bad),
                burn_rate: rate(bad) / budget,
                p50_ns: hist.quantile(0.5),
                p90_ns: hist.quantile(0.9),
                p99_ns: hist.quantile(0.99),
            }
        };
        let fast = window(self.cfg.fast_ticks.max(1));
        let slow = window(self.cfg.slow_ticks.max(1));
        let firing = fast.total > 0
            && slow.total > 0
            && fast.burn_rate >= self.cfg.burn_fast
            && slow.burn_rate >= self.cfg.burn_slow;
        SloStatus {
            objective_ns: self.cfg.latency_objective_ns,
            target: self.cfg.availability_target,
            fast,
            slow,
            burn_fast_threshold: self.cfg.burn_fast,
            burn_slow_threshold: self.cfg.burn_slow,
            firing,
        }
    }

    /// Evaluates the current status and publishes it as `slo_*` gauges in
    /// the metrics registry, so `prom_dump` exports burn rates alongside
    /// the latency histograms. NaN quantiles (empty windows) publish as 0
    /// — Prometheus exposition has no `null`.
    pub fn export_gauges(&self) -> SloStatus {
        let s = self.status();
        let fin = |v: f64| if v.is_finite() { v } else { 0.0 };
        gauge_set("slo_burn_rate_fast", fin(s.fast.burn_rate));
        gauge_set("slo_burn_rate_slow", fin(s.slow.burn_rate));
        gauge_set("slo_bad_rate_fast", fin(s.fast.bad_rate));
        gauge_set("slo_bad_rate_slow", fin(s.slow.bad_rate));
        gauge_set("slo_error_rate_fast", fin(s.fast.error_rate));
        gauge_set("slo_p50_ns_fast", fin(s.fast.p50_ns));
        gauge_set("slo_p99_ns_fast", fin(s.fast.p99_ns));
        gauge_set("slo_error_budget_remaining", fin((1.0 - s.slow.burn_rate).max(0.0)));
        gauge_set("slo_alert_firing", if s.firing { 1.0 } else { 0.0 });
        s
    }
}

/// Adds `src`'s population into `dst` (bucket-wise; exemplars are not
/// merged — SLO windows only need quantiles).
fn merge_hist(dst: &mut Histogram, src: &Histogram) {
    if src.count == 0 {
        return;
    }
    dst.count += src.count;
    dst.sum += src.sum;
    dst.min = dst.min.min(src.min);
    dst.max = dst.max.max(src.max);
    for (d, s) in dst.buckets.iter_mut().zip(src.buckets.iter()) {
        *d += *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            latency_objective_ns: 1000.0,
            availability_target: 0.9, // budget = 0.1
            tick_ns: 1,
            fast_ticks: 5,
            slow_ticks: 20,
            burn_fast: 3.0,
            burn_slow: 2.0,
        }
    }

    #[test]
    fn burn_rate_is_bad_rate_over_budget() {
        let e = SloEngine::new(cfg());
        // Tick 10: 8 good, 2 over-objective → bad_rate 0.2, burn 2.0.
        for _ in 0..8 {
            e.observe_at(10, 100.0, false);
        }
        for _ in 0..2 {
            e.observe_at(10, 5000.0, false);
        }
        let s = e.status_at(10);
        assert_eq!(s.fast.total, 10);
        assert_eq!(s.fast.bad, 2);
        assert!((s.fast.bad_rate - 0.2).abs() < 1e-12);
        assert!((s.fast.burn_rate - 2.0).abs() < 1e-9, "burn={}", s.fast.burn_rate);
        assert_eq!(s.fast.errors, 0);
        assert!(!s.firing, "burn 2.0 < fast threshold 3.0");
    }

    #[test]
    fn errors_count_as_bad_regardless_of_latency() {
        let e = SloEngine::new(cfg());
        e.observe_at(3, 10.0, true);
        e.observe_at(3, 10.0, false);
        let s = e.status_at(3);
        assert_eq!((s.fast.errors, s.fast.bad), (1, 1));
        assert!((s.fast.error_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alert_needs_both_windows_over_threshold() {
        let e = SloEngine::new(cfg());
        // Old ticks (0..10): all good → slow window diluted.
        for t in 0..10u64 {
            for _ in 0..10 {
                e.observe_at(t, 1.0, false);
            }
        }
        // Recent ticks (16..20): everything bad → fast window saturated.
        for t in 16..20u64 {
            for _ in 0..10 {
                e.observe_at(t, 1.0, true);
            }
        }
        let s = e.status_at(19);
        // Fast window [15..19]: 40/40 bad → burn 10 ≥ 3.
        assert!(s.fast.burn_rate >= 3.0, "fast burn {}", s.fast.burn_rate);
        // Slow window [0..19]: 40/140 bad → burn ~2.857 ≥ 2 → fires.
        assert!(s.firing, "slow burn {}", s.slow.burn_rate);

        // A brief spike alone must NOT fire: good traffic everywhere,
        // one bad tick.
        let e2 = SloEngine::new(cfg());
        for t in 0..19u64 {
            for _ in 0..50 {
                e2.observe_at(t, 1.0, false);
            }
        }
        for _ in 0..50 {
            e2.observe_at(19, 1.0, true);
        }
        let s2 = e2.status_at(19);
        assert!(s2.fast.burn_rate >= 2.0, "spike dominates the fast window");
        assert!(!s2.firing, "slow burn {} must hold the alert back", s2.slow.burn_rate);
    }

    #[test]
    fn expired_ticks_fall_out_of_the_window() {
        let e = SloEngine::new(cfg());
        for _ in 0..10 {
            e.observe_at(0, 1.0, true);
        }
        assert_eq!(e.status_at(0).slow.total, 10);
        // 20 ticks later the ring slot has expired (slow window is 20).
        assert_eq!(e.status_at(20).slow.total, 0);
        // And writing at tick 20 overwrites the stale slot, not merges.
        e.observe_at(20, 1.0, false);
        let s = e.status_at(20);
        assert_eq!((s.slow.total, s.slow.bad), (1, 0));
    }

    #[test]
    fn quantiles_come_from_the_merged_window_histogram() {
        let e = SloEngine::new(cfg());
        for t in 0..5u64 {
            e.observe_at(t, 100.0, false);
            e.observe_at(t, 900.0, false);
        }
        let s = e.status_at(4);
        assert_eq!(s.fast.total, 10);
        assert!(s.fast.p50_ns.is_finite() && s.fast.p50_ns >= 100.0);
        assert!(s.fast.p99_ns <= 900.0 + 1e-9, "p99 {} clamps to max", s.fast.p99_ns);
        // Empty window → NaN quantiles, 0 burn.
        let empty = e.status_at(1000);
        assert!(empty.fast.p50_ns.is_nan());
        assert_eq!(empty.fast.burn_rate, 0.0);
    }

    #[test]
    fn export_gauges_publishes_finite_values() {
        let _serial = crate::test_lock();
        let _ = crate::drain();
        let e = SloEngine::new(cfg());
        let _ = crate::with_obs(true, || e.export_gauges());
        let rep = crate::drain();
        for name in [
            "slo_burn_rate_fast",
            "slo_burn_rate_slow",
            "slo_p50_ns_fast",
            "slo_error_budget_remaining",
            "slo_alert_firing",
        ] {
            let v = rep.gauges.get(name).copied();
            assert!(v.is_some_and(f64::is_finite), "{name} = {v:?}");
        }
    }
}
