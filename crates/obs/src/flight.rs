//! Always-on flight recorder: a fixed-capacity lock-free ring of
//! structured events for post-mortem debugging.
//!
//! Unlike the rest of the obs crate, the flight recorder is **not** gated
//! on `AUTOAC_OBS`: its whole point is to still hold the last ~moments of
//! history when a server crashes in a configuration nobody thought to
//! instrument. Recording costs a handful of atomic stores and no
//! allocation, so it stays on by default; `AUTOAC_FLIGHT=0` is the
//! escape hatch (strictly parsed, like every other `AUTOAC_*` flag).
//!
//! ## Ring semantics
//!
//! The ring is a power-of-two array of seqlock-style slots made entirely
//! of `AtomicU64`s — no locks, no `unsafe`. A writer claims a sequence
//! number with one `fetch_add`, stamps the slot *odd* (`2·seq+1`,
//! write in progress), stores the payload words plus an FNV-1a checksum,
//! and stamps it *even* (`2·seq+2`, complete). Readers accept a slot only
//! when the stamp equals the completed value for the expected sequence
//! number before **and** after reading the payload *and* the checksum
//! matches — a torn read (writer racing the reader, or a wrapped writer
//! reusing the slot) fails at least one of the three checks and is
//! skipped rather than surfaced as garbage. Capacity eviction is
//! oldest-first by construction: slot `seq % capacity` is simply
//! overwritten by sequence `seq + capacity`.
//!
//! Messages are truncated to [`MSG_MAX`] bytes (at a char boundary); the
//! numeric `a`/`b` payload words carry the load-bearing values (trace
//! ids, durations, batch sizes) losslessly.
//!
//! ## Dumps
//!
//! [`flight_dump_to`] writes `FLIGHT_<run>.jsonl`: a `meta` line with the
//! ring geometry followed by one `{"type":"flight",...}` object per
//! surviving record in sequence order. The serving binary dumps on clean
//! exit (which a SIGTERM turns into) and from the panic hook installed by
//! [`install_panic_dump`]; `POST /admin/flight` dumps on demand.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::env::parse_bool_env;
use crate::report::jstr;
use crate::span::now_ns;

/// Slots in the global ring (power of two).
pub const FLIGHT_CAPACITY: usize = 1024;
/// Maximum message bytes retained per record (longer messages truncate).
pub const MSG_MAX: usize = 96;

/// Payload words per slot: ts, meta, a, b + message words.
const PAYLOAD_WORDS: usize = 4 + MSG_MAX / 8;

/// What a flight record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// One served request: `a` = trace id, `b` = total latency ns.
    Request,
    /// An [`crate::warn`] emission.
    Warn,
    /// Checkpoint reload attempt/outcome: `a`/`b` = fingerprints.
    Reload,
    /// Shutdown requested or lifecycle transition completed.
    Shutdown,
    /// Model-thread batch flush decision: `a` = batch size, `b` = window µs.
    Flush,
    /// Process/server lifecycle marker (start, listening, model loaded).
    Lifecycle,
    /// A panic caught by the installed hook.
    Panic,
}

impl FlightKind {
    /// Stable tag used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Request => "request",
            FlightKind::Warn => "warn",
            FlightKind::Reload => "reload",
            FlightKind::Shutdown => "shutdown",
            FlightKind::Flush => "flush",
            FlightKind::Lifecycle => "lifecycle",
            FlightKind::Panic => "panic",
        }
    }

    fn to_u64(self) -> u64 {
        match self {
            FlightKind::Request => 0,
            FlightKind::Warn => 1,
            FlightKind::Reload => 2,
            FlightKind::Shutdown => 3,
            FlightKind::Flush => 4,
            FlightKind::Lifecycle => 5,
            FlightKind::Panic => 6,
        }
    }

    fn from_u64(v: u64) -> Option<FlightKind> {
        match v {
            0 => Some(FlightKind::Request),
            1 => Some(FlightKind::Warn),
            2 => Some(FlightKind::Reload),
            3 => Some(FlightKind::Shutdown),
            4 => Some(FlightKind::Flush),
            5 => Some(FlightKind::Lifecycle),
            6 => Some(FlightKind::Panic),
            _ => None,
        }
    }
}

/// One decoded record read back out of the ring.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Global sequence number (monotonic since process start).
    pub seq: u64,
    /// Nanoseconds since process obs start.
    pub ts_ns: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Kind-specific numeric payload (see [`FlightKind`] docs).
    pub a: u64,
    /// Second kind-specific numeric payload.
    pub b: u64,
    /// Free-form message, truncated to [`MSG_MAX`] bytes.
    pub msg: String,
}

/// One seqlock slot: a stamp word, the payload words, and a checksum.
struct Slot {
    stamp: AtomicU64,
    words: [AtomicU64; PAYLOAD_WORDS],
    check: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
            check: AtomicU64::new(0),
        }
    }
}

fn fnv1a64_words(seq: u64, words: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (v >> shift) & 0xff;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(seq);
    for &w in words {
        mix(w);
    }
    h
}

/// A fixed-capacity lock-free event ring. The process-global instance
/// behind [`flight_record`] is all normal code needs; constructing a
/// private [`Ring`] is for tests that must not pollute global history.
pub struct Ring {
    mask: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    /// A ring with `capacity` slots (rounded up to a power of two, min 8).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(8);
        Ring {
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Writes one record. Lock-free: one `fetch_add` plus plain atomic
    /// stores; never blocks and never allocates beyond message truncation.
    pub fn record(&self, kind: FlightKind, a: u64, b: u64, msg: &str) {
        let seq = self.head.fetch_add(1, Ordering::SeqCst);
        let Some(slot) = self.slots.get((seq & self.mask) as usize) else {
            return;
        };
        // Truncate to MSG_MAX at a char boundary so decode stays valid UTF-8.
        let bytes = msg.as_bytes();
        let mut take = bytes.len().min(MSG_MAX);
        while take > 0 && !msg.is_char_boundary(take) {
            take -= 1;
        }
        let mut words = [0u64; PAYLOAD_WORDS];
        words[0] = now_ns();
        words[1] = kind.to_u64() | ((take as u64) << 8);
        words[2] = a;
        words[3] = b;
        for (i, chunk) in bytes.get(..take).unwrap_or(&[]).chunks(8).enumerate() {
            let mut w = 0u64;
            for (j, &bb) in chunk.iter().enumerate() {
                w |= (bb as u64) << (8 * j);
            }
            if let Some(dst) = words.get_mut(4 + i) {
                *dst = w;
            }
        }
        let check = fnv1a64_words(seq, &words);

        // Seqlock write protocol: odd stamp → payload → checksum → even
        // stamp. All SeqCst: flight recording is far off any hot path and
        // the total ordering makes the torn-read reasoning trivial.
        slot.stamp.store(seq * 2 + 1, Ordering::SeqCst);
        for (dst, &w) in slot.words.iter().zip(words.iter()) {
            dst.store(w, Ordering::SeqCst);
        }
        slot.check.store(check, Ordering::SeqCst);
        slot.stamp.store(seq * 2 + 2, Ordering::SeqCst);
    }

    /// Reads every intact record currently in the ring, oldest first.
    /// Records mid-overwrite (stamp mismatch or checksum failure) are
    /// skipped, never surfaced torn.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let head = self.head.load(Ordering::SeqCst);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let Some(slot) = self.slots.get((seq & self.mask) as usize) else {
                continue;
            };
            let complete = seq * 2 + 2;
            if slot.stamp.load(Ordering::SeqCst) != complete {
                continue;
            }
            let mut words = [0u64; PAYLOAD_WORDS];
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::SeqCst);
            }
            let check = slot.check.load(Ordering::SeqCst);
            if slot.stamp.load(Ordering::SeqCst) != complete {
                continue; // overwritten while reading
            }
            if check != fnv1a64_words(seq, &words) {
                continue; // torn
            }
            let word = |i: usize| words.get(i).copied().unwrap_or(0);
            let meta = word(1);
            let Some(kind) = FlightKind::from_u64(meta & 0xff) else {
                continue;
            };
            let len = ((meta >> 8) as usize).min(MSG_MAX);
            let mut bytes = Vec::with_capacity(len);
            for w in words.iter().skip(4) {
                for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
                    bytes.push(((w >> shift) & 0xff) as u8);
                }
            }
            bytes.truncate(len);
            out.push(FlightRecord {
                seq,
                ts_ns: word(0),
                kind,
                a: word(2),
                b: word(3),
                msg: String::from_utf8_lossy(&bytes).into_owned(),
            });
        }
        out
    }
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring::new(FLIGHT_CAPACITY))
}

/// Cached `AUTOAC_FLIGHT` verdict: 0 = not read yet, 1 = off, 2 = on.
/// A plain atomic rather than a `OnceLock` on purpose: the strict parse
/// below panics on malformed values, and the panic hook installed by
/// [`install_panic_dump`] runs flight code — re-entering a `OnceLock`
/// whose initializer is the frame that panicked would deadlock instead
/// of aborting. Racing first readers may both parse; the result is
/// identical, so the double store is benign.
static FLIGHT_ENV: AtomicU8 = AtomicU8::new(0);

/// Whether flight recording is armed. Defaults to **on**; `AUTOAC_FLIGHT`
/// (strictly parsed) is the escape hatch. Read once per process.
pub fn flight_enabled() -> bool {
    match FLIGHT_ENV.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = match std::env::var("AUTOAC_FLIGHT") {
                Ok(raw) => {
                    // analyze:allow(panic, malformed AUTOAC_* values abort at startup by design instead of silently defaulting)
                    parse_bool_env("AUTOAC_FLIGHT", &raw).unwrap_or_else(|e| panic!("autoac-obs: {e}"))
                }
                Err(_) => true,
            };
            FLIGHT_ENV.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Records one event into the process-global ring (no-op when
/// `AUTOAC_FLIGHT=0`). Safe to call from any thread, including inside
/// signal-adjacent shutdown paths — it never locks or allocates beyond
/// message truncation.
#[inline]
pub fn flight_record(kind: FlightKind, a: u64, b: u64, msg: &str) {
    if !flight_enabled() {
        return;
    }
    ring().record(kind, a, b, msg);
}

/// Intact records currently in the global ring, oldest first.
pub fn flight_snapshot() -> Vec<FlightRecord> {
    ring().snapshot()
}

/// Serializes `records` as the flight JSONL dump (meta line + one object
/// per record).
pub fn flight_jsonl(run: &str, capacity: usize, total: u64, records: &[FlightRecord]) -> String {
    let mut out = format!(
        "{{\"type\":\"meta\",\"run\":{},\"schema\":1,\"kind\":\"flight\",\"capacity\":{capacity},\"total_recorded\":{total}}}\n",
        jstr(run)
    );
    for r in records {
        out.push_str(&format!(
            "{{\"type\":\"flight\",\"seq\":{},\"ts_ns\":{},\"kind\":{},\"a\":{},\"b\":{},\"msg\":{}}}\n",
            r.seq,
            r.ts_ns,
            jstr(r.kind.as_str()),
            r.a,
            r.b,
            jstr(&r.msg)
        ));
    }
    out
}

/// Dumps the global ring to `dir/FLIGHT_<run>.jsonl` (creating `dir`),
/// returning the path written and the number of records dumped.
pub fn flight_dump_to(dir: &Path, run: &str) -> std::io::Result<(PathBuf, usize)> {
    let records = flight_snapshot();
    let text = flight_jsonl(run, ring().capacity(), ring().total_recorded(), &records);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("FLIGHT_{run}.jsonl"));
    std::fs::write(&path, text)?;
    Ok((path, records.len()))
}

/// Installs a panic hook that records the panic into the ring, dumps it
/// to `dir/FLIGHT_<run>.jsonl`, and then runs the previously installed
/// hook (so the default backtrace printing is preserved).
pub fn install_panic_dump(dir: &Path, run: &str) {
    let dir = dir.to_path_buf();
    let run = run.to_string();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // The hook must never re-run the AUTOAC_FLIGHT parse: if THIS
        // panic is the parse rejecting a malformed value, parsing again
        // here would panic inside the hook and turn a clean startup
        // abort into a double-panic. Read the cached verdict instead;
        // "not read yet" (a panic earlier than any flight event) still
        // dumps — a post-mortem is the whole point of the hook.
        if FLIGHT_ENV.load(Ordering::Relaxed) != 1 {
            ring().record(FlightKind::Panic, 0, 0, &info.to_string());
            let _ = flight_dump_to(&dir, &run);
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_kind_payload_and_message() {
        let ring = Ring::new(16);
        ring.record(FlightKind::Request, 0xdead_beef, 42, "GET /healthz 200");
        ring.record(FlightKind::Warn, 0, 0, "ckpt: disk full");
        let records = ring.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, FlightKind::Request);
        assert_eq!((records[0].a, records[0].b), (0xdead_beef, 42));
        assert_eq!(records[0].msg, "GET /healthz 200");
        assert_eq!(records[1].kind, FlightKind::Warn);
        assert_eq!(records[1].msg, "ckpt: disk full");
        assert!(records[0].seq < records[1].seq);
    }

    #[test]
    fn long_messages_truncate_at_char_boundaries() {
        let ring = Ring::new(8);
        // 94 ASCII bytes then a 3-byte char straddling the 96-byte cut.
        let msg = format!("{}\u{20AC}xyz", "a".repeat(94));
        ring.record(FlightKind::Lifecycle, 0, 0, &msg);
        let records = ring.snapshot();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].msg, "a".repeat(94));
        assert!(records[0].msg.len() <= MSG_MAX);
    }

    #[test]
    fn eviction_is_oldest_first_and_capacity_bounded() {
        let ring = Ring::new(32);
        let cap = ring.capacity();
        let total = cap as u64 + 50;
        for i in 0..total {
            ring.record(FlightKind::Flush, i, 0, "flush");
        }
        let records = ring.snapshot();
        assert_eq!(records.len(), cap, "exactly one ring of records survives");
        // Survivors are the newest `cap` records, in sequence order.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, total - cap as u64 + i as u64);
            assert_eq!(r.a, r.seq);
        }
        assert_eq!(ring.total_recorded(), total);
    }

    #[test]
    fn jsonl_dump_has_meta_line_and_braced_objects() {
        let ring = Ring::new(8);
        ring.record(FlightKind::Panic, 1, 2, "boom \"quoted\"");
        let text = flight_jsonl("unit", ring.capacity(), ring.total_recorded(), &ring.snapshot());
        let mut lines = text.lines();
        let meta = lines.next().expect("meta line");
        assert!(meta.contains(r#""kind":"flight""#), "{meta}");
        assert!(meta.contains(r#""capacity":8"#), "{meta}");
        let rec = lines.next().expect("record line");
        assert!(rec.contains(r#""kind":"panic""#), "{rec}");
        assert!(rec.contains(r#"\"quoted\""#), "escaping: {rec}");
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        }
    }

    #[test]
    fn global_record_and_snapshot_are_wired() {
        flight_record(FlightKind::Lifecycle, 7, 8, "unit-test-global-marker");
        let records = flight_snapshot();
        assert!(
            records.iter().any(|r| r.msg == "unit-test-global-marker" && r.a == 7 && r.b == 8),
            "global ring must surface the record"
        );
    }
}
