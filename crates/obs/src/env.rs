//! The `AUTOAC_OBS` control surface.
//!
//! Observability follows the same discipline as the other runtime switches
//! (`AUTOAC_CHECK`, `AUTOAC_POOL`, `AUTOAC_NUM_THREADS`): strict parsing,
//! one env read per process, and a disabled path that costs a single branch.
//! Priority order:
//!
//! 1. [`with_obs`] — scoped per-thread override, for tests that compare
//!    instrumented and uninstrumented runs bit-for-bit in one process.
//! 2. [`set_force`] — process-global override, for harness binaries
//!    (`table4_runtime`, `bench_alloc`, `obs_smoke`) that always want the
//!    span data regardless of the environment, and for tests that need
//!    worker threads (which never inherit a thread-local override) to see
//!    obs as enabled.
//! 3. The `AUTOAC_OBS` environment variable, read once and parsed strictly
//!    by [`parse_bool_env`]: a typo like `AUTOAC_OBS=ture` aborts instead of
//!    silently running un-instrumented.
//! 4. Default: disabled.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Strict parser for boolean-flag environment variables (`AUTOAC_OBS`,
/// `AUTOAC_CHECK`, `AUTOAC_POOL`). Accepts `1/true/on/yes` and
/// `0/false/off/no` (case-insensitive, surrounding whitespace ignored);
/// anything else — including an empty value — is an error so malformed
/// settings fail loudly instead of silently defaulting.
///
/// This is the single workspace-wide implementation; `autoac_tensor::chk`
/// re-exports it so existing callers keep their import path.
pub fn parse_bool_env(var: &str, raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        "" => Err(format!(
            "{var} is set but empty; use 1/true/on/yes or 0/false/off/no (or unset it)"
        )),
        other => Err(format!(
            "{var}={other:?} is not a recognized flag; use 1/true/on/yes or 0/false/off/no"
        )),
    }
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("AUTOAC_OBS") {
        Ok(raw) => {
            // analyze:allow(panic, malformed AUTOAC_* values abort at startup by design instead of silently defaulting)
            parse_bool_env("AUTOAC_OBS", &raw).unwrap_or_else(|e| panic!("autoac-obs: {e}"))
        }
        Err(_) => false,
    })
}

/// Process-global override: 0 = unset (defer to env), 1 = forced off,
/// 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Scoped override installed by [`with_obs`]; `None` defers to
    /// [`FORCE`] and then the env.
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Whether observability is armed on this thread right now. This is the
/// single branch every instrumentation site pays when obs is disabled.
#[inline]
pub fn enabled() -> bool {
    if let Some(v) = OVERRIDE.with(Cell::get) {
        return v;
    }
    match FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Process-global force switch. `Some(true)`/`Some(false)` win over the
/// env for every thread (workers included); `None` restores env control.
/// Harness binaries call `set_force(Some(true))` at startup so their span
/// data exists regardless of how they were launched.
pub fn set_force(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCE.store(v, Ordering::Relaxed);
}

/// Runs `f` with obs forced on/off on this thread, restoring the previous
/// setting afterwards (also on panic). Worker threads spawned inside `f`
/// do **not** inherit the override (thread-locals don't cross threads);
/// tests that need workers instrumented use [`set_force`] in a dedicated
/// test binary instead.
pub fn with_obs<T>(on: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = OVERRIDE.with(|o| {
        let prev = o.get();
        o.set(Some(on));
        Restore(prev)
    });
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_truthy_and_falsy_spellings() {
        for raw in ["1", "true", "on", "yes", " TRUE ", "On", "YES"] {
            assert_eq!(parse_bool_env("AUTOAC_OBS", raw), Ok(true), "raw={raw:?}");
        }
        for raw in ["0", "false", "off", "no", " FALSE ", "Off", "NO"] {
            assert_eq!(parse_bool_env("AUTOAC_OBS", raw), Ok(false), "raw={raw:?}");
        }
    }

    #[test]
    fn parse_rejects_empty_and_garbage() {
        for raw in ["", "  ", "ture", "2", "yes!", "enabled", "0x1"] {
            let err = parse_bool_env("AUTOAC_OBS", raw).unwrap_err();
            assert!(err.contains("AUTOAC_OBS"), "error should name the var: {err}");
        }
    }

    #[test]
    fn with_obs_overrides_and_restores() {
        // Assertions stay inside override scopes: sibling tests may toggle
        // the process-global force switch concurrently, so only the
        // thread-local layer is deterministic here.
        with_obs(true, || {
            assert!(enabled());
            with_obs(false, || assert!(!enabled()));
            assert!(enabled(), "inner scope must restore outer override");
        });
    }

    #[test]
    fn thread_override_beats_force() {
        let _serial = crate::test_lock();
        with_obs(false, || {
            set_force(Some(true));
            assert!(!enabled(), "thread-local override outranks set_force");
            set_force(None);
        });
    }
}
