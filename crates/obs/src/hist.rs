//! Log-scaled histograms with exact count/sum/min/max.
//!
//! Buckets are powers of two: bucket 0 holds everything below 1.0
//! (durations are non-negative, but the bucket formally covers
//! `(-inf, 1)` so *every* recorded value lands in exactly one bucket),
//! bucket `i` for `1 <= i < 63` holds `[2^(i-1), 2^i)`, and bucket 63 is
//! the overflow bucket `[2^62, +inf]`. 63 doublings above 1 ns is ~146
//! years, so nanosecond latencies never saturate.
//!
//! The bucket index is computed from the IEEE-754 exponent bits rather
//! than `f64::log2`, so boundary values (exact powers of two) classify
//! exactly — `log2(8.0)` returning `2.9999999999999996` would otherwise
//! put `8.0` in the wrong bucket.

/// Number of histogram buckets.
pub const NUM_BUCKETS: usize = 64;

/// Index of the bucket that `v` falls into. Total over all finite inputs:
/// every value lands in exactly one bucket (NaN is clamped into bucket 0).
pub fn bucket_index(v: f64) -> usize {
    if !(v >= 1.0) {
        // Covers v < 1, negatives, and NaN (all comparisons with NaN fail).
        return 0;
    }
    if v.is_infinite() {
        return NUM_BUCKETS - 1;
    }
    // For finite v >= 1.0 the value is a normal float, so the unbiased
    // exponent e satisfies 2^e <= v < 2^(e+1), i.e. floor(log2 v) == e.
    let e = ((v.to_bits() >> 52) & 0x7ff) as usize - 1023;
    (e + 1).min(NUM_BUCKETS - 1)
}

/// Half-open bounds `[lo, hi)` of bucket `i` (the last bucket's `hi` is
/// `+inf`, and it also admits `+inf` itself; bucket 0's `lo` is `-inf`).
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (f64::NEG_INFINITY, 1.0)
    } else {
        let lo = (2f64).powi(i as i32 - 1);
        let hi = if i == NUM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (2f64).powi(i as i32)
        };
        (lo, hi)
    }
}

/// Exemplar slots retained per histogram (the largest-valued recordings
/// that carried a trace id).
pub const MAX_EXEMPLARS: usize = 4;

/// One traced recording attached to a histogram: a concrete request id a
/// human can pull up to explain a tail-latency bucket.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exemplar {
    /// The recorded value.
    pub value: f64,
    /// The trace id that produced it (never 0 — 0 marks an empty slot).
    pub trace_id: u64,
    /// Nanoseconds since process obs start, when recorded.
    pub ts_ns: u64,
}

/// A log-bucketed histogram. Buckets answer "what order of magnitude",
/// while `min`/`max`/`sum`/`count` stay exact so the mean and extremes
/// are not quantized.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values (NaN inputs are recorded as 0.0).
    pub sum: f64,
    /// Smallest recorded value; `+inf` when empty.
    pub min: f64,
    /// Largest recorded value; `-inf` when empty.
    pub max: f64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: [u64; NUM_BUCKETS],
    /// Up to [`MAX_EXEMPLARS`] largest traced recordings (`None` = empty
    /// slot); kept top-by-value so tail latency always has a trace id.
    pub exemplars: [Option<Exemplar>; MAX_EXEMPLARS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; NUM_BUCKETS],
            exemplars: [None; MAX_EXEMPLARS],
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v };
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        // analyze:allow(panic, bucket_index is clamped to NUM_BUCKETS - 1)
        self.buckets[bucket_index(v)] += 1;
    }

    /// Records one value carrying a trace id, keeping the exemplar set
    /// top-by-value: an empty slot is filled, otherwise the smallest
    /// retained exemplar is replaced when `v` beats it. A `trace_id` of 0
    /// (tracing disabled) records the value without an exemplar, so the
    /// bucket counts — and therefore digests derived from them — are
    /// identical with tracing on or off.
    pub fn record_exemplar(&mut self, v: f64, trace_id: u64, ts_ns: u64) {
        self.record(v);
        if trace_id == 0 {
            return;
        }
        let v = if v.is_nan() { 0.0 } else { v };
        let mut weakest: Option<usize> = None;
        for (i, slot) in self.exemplars.iter().enumerate() {
            match slot {
                None => {
                    weakest = Some(i);
                    break;
                }
                Some(e) => {
                    let beats = match weakest.and_then(|w| self.exemplars.get(w).copied().flatten())
                    {
                        Some(w) => e.value < w.value,
                        None => true,
                    };
                    if beats {
                        weakest = Some(i);
                    }
                }
            }
        }
        if let Some(i) = weakest {
            if let Some(slot) = self.exemplars.get_mut(i) {
                let replace = match slot {
                    None => true,
                    Some(e) => v >= e.value,
                };
                if replace {
                    *slot = Some(Exemplar { value: v, trace_id, ts_ns });
                }
            }
        }
    }

    /// The retained exemplars, in slot order.
    pub fn exemplars(&self) -> impl Iterator<Item = Exemplar> + '_ {
        self.exemplars.iter().filter_map(|e| *e)
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by walking the
    /// bucket counts to the continuous rank `q * (count - 1) + 1` and
    /// interpolating linearly inside the bucket it lands in. The
    /// interpolation range is clamped to the exact recorded `[min, max]`,
    /// which pins the edge cases: a single sample returns that exact value
    /// for every `q`, all-equal samples return the value, and the unbounded
    /// outer buckets (`(-inf, 1)` and the overflow bucket) never leak an
    /// infinite bound into the estimate. Returns NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * (self.count as f64 - 1.0) + 1.0;
        let mut cum = 0u64;
        for i in 0..NUM_BUCKETS {
            // analyze:allow(panic, i ranges over 0..NUM_BUCKETS which is the buckets array length)
            let c = self.buckets[i];
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let (lo, hi) = bucket_bounds(i);
                let lo = lo.max(self.min);
                let hi = hi.min(self.max);
                // Fraction of the way through this bucket's occupants,
                // in (0, 1]; rank `cum + 1` (first occupant) maps to just
                // above the bucket floor, rank `cum + c` to its ceiling.
                let frac = (target - cum as f64) / c as f64;
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_powers_of_two_sit_at_bucket_lower_bounds() {
        // 2^(i-1) is the inclusive lower bound of bucket i.
        for i in 1..NUM_BUCKETS {
            let lo = (2f64).powi(i as i32 - 1);
            assert_eq!(bucket_index(lo), i, "2^{} must open bucket {i}", i - 1);
            // The value just below the bound belongs to the previous bucket.
            let below = f64::from_bits(lo.to_bits() - 1);
            assert_eq!(bucket_index(below), i - 1, "pred(2^{}) in bucket {}", i - 1, i - 1);
        }
    }

    #[test]
    fn sub_one_negative_and_nan_land_in_bucket_zero() {
        for v in [0.0, 0.5, 0.999_999_999, -1.0, -1e300, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(bucket_index(v), 0, "v={v}");
        }
    }

    #[test]
    fn huge_values_land_in_overflow_bucket() {
        for v in [(2f64).powi(62), (2f64).powi(100), f64::MAX, f64::INFINITY] {
            assert_eq!(bucket_index(v), NUM_BUCKETS - 1, "v={v}");
        }
    }

    #[test]
    fn record_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [3.0, 1.0, 10.0, 0.25] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 14.25);
        assert_eq!(h.min, 0.25);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
        assert_eq!(h.buckets[0], 1); // 0.25
        assert_eq!(h.buckets[1], 1); // 1.0 in [1,2)
        assert_eq!(h.buckets[2], 1); // 3.0 in [2,4)
        assert_eq!(h.buckets[4], 1); // 10.0 in [8,16)
        assert!((h.mean() - 14.25 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn quantile_of_empty_histogram_is_nan() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(h.quantile(q).is_nan(), "q={q}");
        }
    }

    #[test]
    fn quantile_of_single_sample_is_that_exact_value() {
        // The [min, max] clamp collapses the bucket to the sample itself,
        // so every quantile of a one-sample histogram is exact — including
        // samples that are NOT at a bucket boundary.
        for v in [0.125, 1.0, 3.7, 1234.5] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn quantile_of_identical_samples_is_that_value() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(6.0);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 6.0, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_pin_to_recorded_max() {
        let mut h = Histogram::new();
        for v in [1.5, 3.0, 100.0, 700.0] {
            h.record(v);
        }
        // q=1 targets the last rank; the clamp makes it the exact max.
        assert_eq!(h.quantile(1.0), 700.0);
        // Out-of-range q is clamped, not panicking.
        assert_eq!(h.quantile(7.0), 700.0);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
    }

    #[test]
    fn quantile_interpolates_linearly_within_a_bucket() {
        // 4 samples at exact bucket boundaries 1, 2, 4, 8 — one per
        // bucket. Continuous rank for q is q*(n-1)+1; rank r landing in a
        // bucket whose sole occupant has cumulative position r interpolates
        // to that bucket's (clamped) ceiling.
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        // q=0.5 → rank 2.5 → bucket [4,8) at fraction 0.5 → 4 + 0.5*(8-4).
        assert_eq!(h.quantile(0.5), 6.0);
        // q=1/3 → rank 2.0 → bucket [2,4) at fraction 1.0 → its ceiling 4.
        assert_eq!(h.quantile(1.0 / 3.0), 4.0);
        // q=0 → rank 1.0 → bucket [1,2) at fraction 1.0, ceiling 2.
        assert_eq!(h.quantile(0.0), 2.0);
        assert_eq!(h.quantile(1.0), 8.0);
    }

    #[test]
    fn quantile_outer_buckets_never_leak_infinities() {
        // Bucket 0 spans (-inf, 1) and the overflow bucket [2^62, +inf];
        // the [min, max] clamp keeps estimates finite and in-range.
        let mut h = Histogram::new();
        h.record(0.25);
        h.record(0.5);
        h.record((2f64).powi(70));
        for q in [0.0, 0.3, 0.7, 1.0] {
            let est = h.quantile(q);
            assert!(est.is_finite(), "q={q} → {est}");
            assert!((0.25..=(2f64).powi(70)).contains(&est), "q={q} → {est}");
        }
        assert_eq!(h.quantile(1.0), (2f64).powi(70));
    }

    #[test]
    fn exemplars_keep_the_largest_traced_values() {
        let mut h = Histogram::new();
        // Untraced recording: counted, no exemplar.
        h.record_exemplar(1e9, 0, 1);
        assert_eq!(h.count, 1);
        assert_eq!(h.exemplars().count(), 0);
        // Fill all slots, then push values that displace the smallest.
        for (i, v) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            h.record_exemplar(*v, i as u64 + 1, i as u64);
        }
        assert_eq!(h.exemplars().count(), MAX_EXEMPLARS);
        h.record_exemplar(5.0, 99, 9); // smaller than every retained one
        assert!(h.exemplars().all(|e| e.trace_id != 99), "must not displace larger");
        h.record_exemplar(100.0, 77, 9);
        let kept: Vec<u64> = h.exemplars().map(|e| e.trace_id).collect();
        assert!(kept.contains(&77), "largest value must be retained: {kept:?}");
        assert!(!kept.contains(&1), "smallest (10.0, id 1) displaced: {kept:?}");
        assert_eq!(h.count, 7, "every call records into the population");
    }

    #[test]
    fn nan_does_not_poison_min_max_sum() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 2.0);
        assert_eq!(h.sum, 2.0);
    }
}
