//! Drained-state report and the three exporters: JSONL event sink,
//! human span-tree rendering, and a Prometheus text snapshot.
//!
//! The JSON written here is deliberately minimal and self-contained
//! (string escaping + finite-number formatting) because obs sits *below*
//! `autoac-data` in the dependency graph and cannot use its JSON module;
//! the consuming side (`obs_smoke`, core's integration tests, verify.sh)
//! parses the emitted lines with `autoac_data::json::parse` to prove the
//! two implementations agree.
//!
//! JSONL schema (one object per line, `"type"` discriminates):
//!
//! | type      | fields                                                   |
//! |-----------|----------------------------------------------------------|
//! | `meta`    | `run`, `schema` (currently 1)                            |
//! | `span`    | `path`, `depth`, `count`, `total_ns`, `self_ns`          |
//! | `series`  | `name`, `step`, `values` (array), `ts_ns`                |
//! | `warn`    | `tag`, `msg`, `ts_ns`                                    |
//! | `warn_count` | `tag`, `value` (per-tag aggregate over the run)       |
//! | `counter` | `name`, `value`                                          |
//! | `gauge`   | `name`, `value`                                          |
//! | `hist`    | `name`, `count`, `min`, `max`, `sum`, `buckets` (array of `[index, lo, hi, count]`, non-empty buckets only), `exemplars` (array of `[value, trace_id_hex, ts_ns]`) |
//! | `shape`   | `op`, `m`, `k`, `n`, `nnz`, `count`                      |

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::hist::{bucket_bounds, Histogram, NUM_BUCKETS};
use crate::metrics::Event;

/// Aggregated timing for one distinct span path.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Slash-joined path from the root, e.g. `search/epoch/omega/matmul`.
    pub path: String,
    /// Leaf name (last path segment).
    pub name: &'static str,
    /// Nesting depth (root children have depth 0).
    pub depth: usize,
    /// How many times a span at this path was opened and closed.
    pub count: u64,
    /// Total wall time spent inside, children included.
    pub total_ns: u64,
    /// Total minus time attributed to child spans (saturating: child time
    /// recorded on worker threads can exceed the parent's wall time).
    pub self_ns: u64,
}

/// Everything one [`drain`](crate::drain) returns: span statistics in
/// pre-order, ordered events, and the metrics registry contents.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// Span statistics, pre-order (parents before children).
    pub spans: Vec<SpanStat>,
    /// Series points and warnings, ordered by timestamp.
    pub events: Vec<Event>,
    /// Final counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Final histograms.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Kernel shape execution counts (see [`crate::shape_record`]).
    pub shapes: BTreeMap<crate::ShapeKey, u64>,
    /// Per-tag warning counts (see [`crate::warn`]); `warnings_total`
    /// in `counters` is their sum.
    pub warns: BTreeMap<&'static str, u64>,
}

impl ObsReport {
    /// The span stat at exactly `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Total seconds spent under `path`, if recorded.
    pub fn span_total_secs(&self, path: &str) -> Option<f64> {
        self.span(path).map(|s| s.total_ns as f64 / 1e9)
    }

    /// Counter value, 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.shapes.is_empty()
            && self.warns.is_empty()
    }

    /// Renders the human span tree: indentation mirrors nesting, with
    /// total time, self time, call count, and mean per call per row.
    pub fn render_tree(&self) -> String {
        let mut out = String::from(
            "span tree                                 total ms    self ms      count    ms/call\n",
        );
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
            return out;
        }
        for s in &self.spans {
            let label = format!("{}{}", "  ".repeat(s.depth + 1), s.name);
            let total_ms = s.total_ns as f64 / 1e6;
            let self_ms = s.self_ns as f64 / 1e6;
            let per_call = if s.count > 0 { total_ms / s.count as f64 } else { 0.0 };
            out.push_str(&format!(
                "{label:<40} {total_ms:>10.3} {self_ms:>10.3} {:>10} {per_call:>10.4}\n",
                s.count
            ));
        }
        out
    }

    /// Serializes the report as JSONL (see the module docs for the schema).
    pub fn to_jsonl(&self, run: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"type\":\"meta\",\"run\":{},\"schema\":1}}\n", jstr(run)));
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"path\":{},\"depth\":{},\"count\":{},\"total_ns\":{},\"self_ns\":{}}}\n",
                jstr(&s.path), s.depth, s.count, s.total_ns, s.self_ns
            ));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}\n",
                jstr(name)
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                jstr(name),
                jnum(*v)
            ));
        }
        for (name, h) in &self.hists {
            let mut buckets = String::from("[");
            for i in 0..NUM_BUCKETS {
                if h.buckets[i] == 0 {
                    continue;
                }
                let (lo, hi) = bucket_bounds(i);
                if buckets.len() > 1 {
                    buckets.push(',');
                }
                buckets.push_str(&format!("[{i},{},{},{}]", jnum(lo), jnum(hi), h.buckets[i]));
            }
            buckets.push(']');
            let mut exemplars = String::from("[");
            for e in h.exemplars() {
                if exemplars.len() > 1 {
                    exemplars.push(',');
                }
                exemplars.push_str(&format!(
                    "[{},\"{:016x}\",{}]",
                    jnum(e.value),
                    e.trace_id,
                    e.ts_ns
                ));
            }
            exemplars.push(']');
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"buckets\":{buckets},\"exemplars\":{exemplars}}}\n",
                jstr(name), h.count, jnum(h.min), jnum(h.max), jnum(h.sum)
            ));
        }
        for (tag, v) in &self.warns {
            out.push_str(&format!(
                "{{\"type\":\"warn_count\",\"tag\":{},\"value\":{v}}}\n",
                jstr(tag)
            ));
        }
        for (key, count) in &self.shapes {
            out.push_str(&format!(
                "{{\"type\":\"shape\",\"op\":{},\"m\":{},\"k\":{},\"n\":{},\"nnz\":{},\"count\":{count}}}\n",
                jstr(key.op), key.dims[0], key.dims[1], key.dims[2], key.dims[3]
            ));
        }
        for ev in &self.events {
            match ev {
                Event::Series { name, step, values, ts_ns } => {
                    let mut vals = String::from("[");
                    for (i, v) in values.iter().enumerate() {
                        if i > 0 {
                            vals.push(',');
                        }
                        vals.push_str(&jnum(*v));
                    }
                    vals.push(']');
                    out.push_str(&format!(
                        "{{\"type\":\"series\",\"name\":{},\"step\":{step},\"values\":{vals},\"ts_ns\":{ts_ns}}}\n",
                        jstr(name)
                    ));
                }
                Event::Warn { tag, msg, ts_ns } => {
                    out.push_str(&format!(
                        "{{\"type\":\"warn\",\"tag\":{},\"msg\":{},\"ts_ns\":{ts_ns}}}\n",
                        jstr(tag),
                        jstr(msg)
                    ));
                }
            }
        }
        out
    }

    /// Writes the JSONL serialization to `path` (creating parent
    /// directories), returning the path written.
    pub fn write_jsonl(&self, path: &Path, run: &str) -> std::io::Result<PathBuf> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl(run).as_bytes())?;
        Ok(path.to_path_buf())
    }

    /// Prometheus text-format snapshot of the registry (counters, gauges,
    /// histograms with cumulative `le` buckets) plus span totals as
    /// counters. Metric names are prefixed `autoac_` and sanitized.
    pub fn prom_dump(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE autoac_{n} counter\nautoac_{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE autoac_{n} gauge\nautoac_{n} {}\n", jnum(*v)));
        }
        if !self.warns.is_empty() {
            // One family, one series per tag — not one family per tag.
            out.push_str("# TYPE autoac_warnings counter\n");
            for (tag, v) in &self.warns {
                out.push_str(&format!("autoac_warnings{{tag=\"{}\"}} {v}\n", prom_name(tag)));
            }
        }
        for (name, h) in &self.hists {
            let n = prom_name(name);
            // Largest exemplar per bucket, attached OpenMetrics-style
            // (` # {trace_id="…"} value`) to that bucket's line.
            let mut bucket_ex: [Option<crate::Exemplar>; NUM_BUCKETS] = [None; NUM_BUCKETS];
            for e in h.exemplars() {
                let bi = crate::bucket_index(e.value);
                if let Some(slot) = bucket_ex.get_mut(bi) {
                    let replace = slot.is_none_or(|prev| e.value >= prev.value);
                    if replace {
                        *slot = Some(e);
                    }
                }
            }
            out.push_str(&format!("# TYPE autoac_{n} histogram\n"));
            let mut cum = 0u64;
            for i in 0..NUM_BUCKETS {
                // analyze:allow(panic, i ranges over 0..NUM_BUCKETS which is the buckets array length)
                if h.buckets[i] == 0 {
                    continue;
                }
                // analyze:allow(panic, i ranges over 0..NUM_BUCKETS which is the buckets array length)
                cum += h.buckets[i];
                let (_, hi) = bucket_bounds(i);
                let le = if hi.is_infinite() { "+Inf".to_string() } else { jnum(hi) };
                let ex = bucket_ex
                    .get(i)
                    .copied()
                    .flatten()
                    .map(|e| format!(" # {{trace_id=\"{:016x}\"}} {}", e.trace_id, jnum(e.value)))
                    .unwrap_or_default();
                out.push_str(&format!("autoac_{n}_bucket{{le=\"{le}\"}} {cum}{ex}\n"));
            }
            out.push_str(&format!("autoac_{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("autoac_{n}_sum {}\n", jnum(h.sum)));
            out.push_str(&format!("autoac_{n}_count {}\n", h.count));
            // Estimated quantiles (linear interpolation within the
            // power-of-two bucket) as companion gauges, so a scrape gets
            // tail latency without re-deriving it from the buckets.
            for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                out.push_str(&format!(
                    "# TYPE autoac_{n}_{tag} gauge\nautoac_{n}_{tag} {}\n",
                    jnum(h.quantile(q))
                ));
            }
        }
        for s in &self.spans {
            let n = prom_name(&s.path);
            out.push_str(&format!(
                "autoac_span_total_ns{{path=\"{}\"}} {}\nautoac_span_count{{path=\"{}\"}} {}\n",
                n, s.total_ns, n, s.count
            ));
        }
        out
    }
}

/// Builds the pre-order span list from a drained global tree.
pub(crate) fn build_spans(g: &crate::span::Global) -> Vec<SpanStat> {
    fn walk(
        g: &crate::span::Global,
        node: usize,
        path: &str,
        depth: usize,
        out: &mut Vec<SpanStat>,
    ) {
        for &c in &g.nodes[node].children {
            let n = &g.nodes[c];
            let p = if path.is_empty() {
                n.name.to_string()
            } else {
                format!("{path}/{}", n.name)
            };
            let child_total: u64 = n
                .children
                .iter()
                .map(|&cc| g.nodes[cc].total_ns)
                .sum();
            out.push(SpanStat {
                path: p.clone(),
                name: n.name,
                depth,
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(child_total),
            });
            walk(g, c, &p, depth + 1, out);
        }
    }
    let mut out = Vec::new();
    walk(g, 0, "", 0, &mut out);
    out
}

/// JSON string literal with escaping (quotes, backslash, control chars).
pub(crate) fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite values print via `{:?}` (shortest round-trip repr);
/// NaN and infinities, which JSON cannot express, become `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Prometheus metric-name sanitizer: anything outside `[a-zA-Z0-9_]`
/// becomes `_`.
fn prom_name(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let mut hists = BTreeMap::new();
        let mut h = Histogram::new();
        h.record(3.0);
        h.record_exemplar(1000.0, 0xbeef, 42);
        hists.insert("lat", h);
        ObsReport {
            spans: vec![
                SpanStat {
                    path: "search".into(),
                    name: "search",
                    depth: 0,
                    count: 1,
                    total_ns: 5_000_000,
                    self_ns: 2_000_000,
                },
                SpanStat {
                    path: "search/epoch".into(),
                    name: "epoch",
                    depth: 1,
                    count: 10,
                    total_ns: 3_000_000,
                    self_ns: 3_000_000,
                },
            ],
            events: vec![Event::Warn { tag: "ckpt", msg: "disk \"full\"\n".into(), ts_ns: 7 }],
            counters: BTreeMap::from([("hits", 3u64)]),
            gauges: BTreeMap::from([("rate", 0.5f64)]),
            hists,
            shapes: BTreeMap::from([(
                crate::ShapeKey { op: "matmul", dims: [8, 4, 8, 0] },
                2u64,
            )]),
            warns: BTreeMap::from([("ckpt", 1u64)]),
        }
    }

    #[test]
    fn jsonl_escapes_and_lists_every_record_type() {
        let rep = sample_report();
        let text = rep.to_jsonl("unit");
        assert!(text.lines().count() == 1 + 2 + 1 + 1 + 1 + 1 + 1 + 1, "{text}");
        assert!(text.contains(r#""type":"meta","run":"unit""#));
        assert!(text.contains(r#""type":"warn_count","tag":"ckpt","value":1"#), "{text}");
        assert!(
            text.contains(r#""exemplars":[[1000.0,"000000000000beef",42]]"#),
            "hist exemplars serialized: {text}"
        );
        assert!(
            text.contains(r#""type":"shape","op":"matmul","m":8,"k":4,"n":8,"nnz":0,"count":2"#),
            "{text}"
        );
        assert!(text.contains(r#""path":"search/epoch""#));
        assert!(text.contains(r#""msg":"disk \"full\"\n""#), "escaping: {text}");
        assert!(text.contains(r#""buckets":[[2,2.0,4.0,1],[10,512.0,1024.0,1]]"#), "{text}");
        // Every line is a braces-balanced object ending in '}'.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        }
    }

    #[test]
    fn jnum_is_json_safe() {
        assert_eq!(jnum(0.5), "0.5");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
        assert_eq!(jnum(1e300), "1e300");
    }

    #[test]
    fn render_tree_indents_children() {
        let rep = sample_report();
        let tree = rep.render_tree();
        let search_line = tree.lines().find(|l| l.contains("search")).unwrap();
        let epoch_line = tree.lines().find(|l| l.contains("epoch")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(epoch_line) > indent(search_line), "{tree}");
        assert!(search_line.contains("5.000"), "total ms column: {search_line}");
    }

    #[test]
    fn prom_dump_has_cumulative_buckets() {
        let rep = sample_report();
        let prom = rep.prom_dump();
        assert!(prom.contains("# TYPE autoac_hits counter"));
        assert!(prom.contains("autoac_lat_bucket{le=\"4.0\"} 1"));
        assert!(prom.contains("autoac_lat_bucket{le=\"1024.0\"} 2"));
        assert!(prom.contains("autoac_lat_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("autoac_lat_count 2"));
        assert!(prom.contains("autoac_span_total_ns{path=\"search_epoch\"}"));
    }

    #[test]
    fn prom_dump_emits_one_warning_family_with_tag_labels() {
        let rep = sample_report();
        let prom = rep.prom_dump();
        assert_eq!(prom.matches("# TYPE autoac_warnings counter").count(), 1, "{prom}");
        assert!(prom.contains("autoac_warnings{tag=\"ckpt\"} 1"), "{prom}");
    }

    #[test]
    fn prom_dump_attaches_exemplars_to_bucket_lines() {
        let rep = sample_report();
        let prom = rep.prom_dump();
        assert!(
            prom.contains(
                "autoac_lat_bucket{le=\"1024.0\"} 2 # {trace_id=\"000000000000beef\"} 1000.0"
            ),
            "{prom}"
        );
        // The untraced bucket stays bare.
        assert!(prom.contains("autoac_lat_bucket{le=\"4.0\"} 1\n"), "{prom}");
    }

    #[test]
    fn prom_dump_emits_quantile_gauges() {
        let rep = sample_report();
        let prom = rep.prom_dump();
        // lat holds {3.0, 1000.0}: p50 targets rank 1.5, landing halfway
        // through the [512, 1024) bucket clamped to max=1000 → 756.
        assert!(prom.contains("# TYPE autoac_lat_p50 gauge"), "{prom}");
        assert!(prom.contains("autoac_lat_p50 756.0"), "{prom}");
        assert!(prom.contains("# TYPE autoac_lat_p90 gauge"), "{prom}");
        assert!(prom.contains("# TYPE autoac_lat_p99 gauge"), "{prom}");
        assert!(prom.contains("autoac_lat_p99 995.1"), "{prom}");
    }
}
