//! Hierarchical RAII spans with thread-aware nesting.
//!
//! Design constraints, in order:
//!
//! - **Disabled cost is one branch**: [`span`] checks [`enabled`] and
//!   returns an inert guard without touching any thread-local state.
//! - **Lock-light when enabled**: each thread owns an arena of span nodes
//!   (`Vec<Node>` + a cursor) and records into it without synchronization.
//!   The process-wide mutex is taken only when a thread exits (its state is
//!   merged into the global tree) and at [`drain`](crate::drain) time.
//! - **Bounded memory**: spans are aggregated online per *path* — opening
//!   the same `matmul` span a million times under `search/epoch/omega`
//!   touches one node a million times instead of buffering a million
//!   events. Count and total nanoseconds per distinct path is all the
//!   exporters need.
//! - **Cross-thread nesting**: `for_each_row_chunk` workers are scoped
//!   threads with no access to the launcher's thread-locals, so the
//!   launcher captures [`current_path`] before spawning and each worker
//!   installs it with [`adopt`]; kernel spans opened by the worker then
//!   nest under the launcher's position (e.g. `search/epoch/omega/matmul`).
//!   The adopt guard's drop also flushes the worker's arena into the
//!   global tree: `thread::scope` only orders the worker *closure* before
//!   the join, not TLS teardown, so waiting for thread exit would let a
//!   drain right after the region race the merge.
//!
//! Timing uses [`Instant`], the only monotonic clock in std; this module
//! is the one place in the workspace where kernels' time is read (the
//! `instant-in-kernel-loop` lint points here).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::env::enabled;
use crate::metrics::Event;

/// Index of the implicit root node in every arena.
const ROOT: usize = 0;

/// One aggregated span node: a (name, parent) position in the tree.
struct Node {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
}

impl Node {
    fn root() -> Node {
        Node { name: "", parent: ROOT, children: Vec::new(), count: 0, total_ns: 0 }
    }
}

/// Monotonically increasing generation, bumped every time a thread's state
/// is replaced (drain, or reuse after a flush). A guard created under one
/// generation refuses to record into a newer one: its arena indices would
/// be dangling.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// Process-start anchor for event timestamps.
fn start_instant() -> &'static Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now)
}

/// Nanoseconds since the first obs call in this process; used to order
/// events from different threads in the JSONL output, and exported for
/// the serving layer's trace timelines and flight-recorder timestamps so
/// every subsystem shares one clock anchor.
pub fn now_ns() -> u64 {
    start_instant().elapsed().as_nanos() as u64
}

struct ThreadState {
    generation: u64,
    nodes: Vec<Node>,
    current: usize,
    events: Vec<Event>,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
            nodes: vec![Node::root()],
            current: ROOT,
            events: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.events.is_empty()
    }

    /// Finds or creates the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        // Names are &'static str, usually the same literal: pointer
        // equality catches almost every lookup before the byte compare.
        for &c in &self.nodes[parent].children {
            let n = self.nodes[c].name;
            if std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name {
                return c;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        if !self.is_empty() {
            flush_into_global(self);
        }
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// The global accumulator: dead threads' trees merged together, plus
/// every buffered event. `drain` empties it.
pub(crate) struct Global {
    pub(crate) nodes: Vec<Node2>,
    pub(crate) events: Vec<Event>,
}

/// Global-tree node (same shape as the per-thread one, but owned strings
/// are unnecessary — names stay `&'static str`).
pub(crate) struct Node2 {
    pub(crate) name: &'static str,
    pub(crate) children: Vec<usize>,
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
}

impl Global {
    fn new() -> Global {
        Global {
            nodes: vec![Node2 { name: "", children: Vec::new(), count: 0, total_ns: 0 }],
            events: Vec::new(),
        }
    }

    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        for &c in &self.nodes[parent].children {
            let n = self.nodes[c].name;
            if std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name {
                return c;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node2 { name, children: Vec::new(), count: 0, total_ns: 0 });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn merge_subtree(&mut self, st: &ThreadState, src: usize, dst: usize) {
        // Walk the thread tree recursively; depth equals span nesting
        // depth, which is small (search/epoch/omega/matmul ≈ 4).
        let children: Vec<usize> = st.nodes[src].children.clone();
        for c in children {
            let d = self.child(dst, st.nodes[c].name);
            self.nodes[d].count += st.nodes[c].count;
            self.nodes[d].total_ns += st.nodes[c].total_ns;
            self.merge_subtree(st, c, d);
        }
    }
}

fn global() -> &'static Mutex<Global> {
    static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Global::new()))
}

fn flush_into_global(st: &ThreadState) {
    let mut g = global().lock().unwrap_or_else(|p| p.into_inner());
    g.merge_subtree(st, ROOT, ROOT);
    g.events.extend(st.events.iter().cloned());
}

/// Buffers an event on the current thread (no lock taken).
pub(crate) fn push_event(ev: Event) {
    STATE.with(|s| s.borrow_mut().events.push(ev));
}

/// Flushes the calling thread's buffered state and removes everything from
/// the global accumulator, returning the merged tree + events. Open spans
/// on *this* thread at drain time are discarded (their guards detect the
/// generation change and skip recording); other live threads keep their
/// in-progress state and flush it at their own exit.
pub(crate) fn take_all() -> Global {
    let local = STATE.with(|s| std::mem::replace(&mut *s.borrow_mut(), ThreadState::new()));
    // Dropping the old state flushes it into the global accumulator
    // (same path a dying thread takes), then we steal the whole thing.
    drop(local);
    let mut g = global().lock().unwrap_or_else(|p| p.into_inner());
    let mut out = Global::new();
    std::mem::swap(&mut *g, &mut out);
    out
}

/// RAII guard returned by [`span`]; records elapsed time into the span
/// node on drop. Inert (`None`) when obs was disabled at open time.
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    start: Instant,
    node: usize,
    prev: usize,
    generation: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let elapsed = a.start.elapsed().as_nanos() as u64;
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            if st.generation != a.generation {
                return; // drained mid-span; indices no longer ours
            }
            let n = &mut st.nodes[a.node];
            n.count += 1;
            n.total_ns += elapsed;
            st.current = a.prev;
        });
    }
}

/// Opens a hierarchical span named `name`, nested under whatever span is
/// currently open on this thread. Returns an inert guard (one branch, no
/// thread-local access) when obs is disabled. `name` must not contain `/`
/// — paths are formed by runtime nesting, and slashes would make them
/// ambiguous.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_slow(name)
}

fn span_slow(name: &'static str) -> SpanGuard {
    debug_assert!(!name.contains('/'), "span name {name:?} must not contain '/'");
    let (node, prev, generation) = STATE.with(|s| {
        let mut st = s.borrow_mut();
        let prev = st.current;
        let node = st.child(prev, name);
        st.current = node;
        (node, prev, st.generation)
    });
    SpanGuard(Some(ActiveSpan { start: Instant::now(), node, prev, generation }))
}

/// A captured span position: the chain of span names from the root down
/// to the currently open span. Cheap to clone across a scoped-thread
/// boundary.
#[derive(Clone, Debug, Default)]
pub struct SpanPath(Vec<&'static str>);

impl SpanPath {
    /// Whether this path captures no position (obs disabled, or no span
    /// open at capture time).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The captured names, root-first.
    pub fn segments(&self) -> &[&'static str] {
        &self.0
    }
}

/// Captures the calling thread's current span position so a worker thread
/// can [`adopt`] it. Returns an empty path (again: one branch) when obs is
/// disabled.
pub fn current_path() -> SpanPath {
    if !enabled() {
        return SpanPath(Vec::new());
    }
    STATE.with(|s| {
        let st = s.borrow();
        let mut names = Vec::new();
        let mut at = st.current;
        while at != ROOT {
            names.push(st.nodes[at].name);
            at = st.nodes[at].parent;
        }
        names.reverse();
        SpanPath(names)
    })
}

/// RAII guard returned by [`adopt`]; restores the worker thread's span
/// cursor on drop. Inert when obs was disabled or the path empty.
pub struct AdoptGuard(Option<(usize, u64)>);

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        let Some((prev, generation)) = self.0.take() else { return };
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            if st.generation != generation {
                return;
            }
            st.current = prev;
            // Eager flush for scoped workers: `thread::scope` unblocks when
            // the worker *closure* returns, but TLS destructors (the normal
            // flush path) run later, during thread teardown — so a launcher
            // draining right after the parallel region could miss this
            // worker's spans. This drop runs inside the closure, which the
            // scope join orders before the launcher resumes. Only safe when
            // the cursor returned to the root (no open spans whose arena
            // indices a flush would invalidate).
            if prev == ROOT && !st.is_empty() {
                // Replacing bumps the generation; the replaced state's own
                // Drop performs the merge into the global accumulator.
                drop(std::mem::replace(&mut *st, ThreadState::new()));
            }
        });
    }
}

/// Installs a captured [`SpanPath`] as the nesting context on the calling
/// (worker) thread: spans it opens afterwards nest under the launcher's
/// position. Adoption is position-only — it never counts or times the
/// adopted ancestors (the launcher's own guards do that).
pub fn adopt(path: &SpanPath) -> AdoptGuard {
    if !enabled() || path.0.is_empty() {
        return AdoptGuard(None);
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let prev = st.current;
        let mut at = st.current;
        for name in &path.0 {
            at = st.child(at, name);
        }
        st.current = at;
        AdoptGuard(Some((prev, st.generation)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::with_obs;

    #[test]
    fn disabled_span_touches_nothing() {
        with_obs(false, || {
            let g = span("never");
            drop(g);
            assert!(current_path().is_empty());
        });
    }

    #[test]
    fn nesting_builds_paths_and_drain_resets() {
        let _serial = crate::test_lock();
        with_obs(true, || {
            let _ = take_all(); // isolate from earlier flushes
            {
                let _a = span("outer");
                {
                    let _b = span("inner");
                    let p = current_path();
                    assert_eq!(p.segments(), &["outer", "inner"]);
                }
                let _c = span("inner"); // same position → same node
            }
            let g = take_all();
            // root → outer → inner
            let outer = g.nodes[ROOT]
                .children
                .iter()
                .copied()
                .find(|&c| g.nodes[c].name == "outer")
                .expect("outer span recorded");
            assert_eq!(g.nodes[outer].count, 1);
            let inner = g.nodes[outer]
                .children
                .iter()
                .copied()
                .find(|&c| g.nodes[c].name == "inner")
                .expect("inner span recorded");
            assert_eq!(g.nodes[inner].count, 2, "two openings aggregate into one node");
            assert!(g.nodes[outer].total_ns >= g.nodes[inner].total_ns);
        });
    }

    #[test]
    fn guard_outliving_a_drain_is_dropped_silently() {
        let _serial = crate::test_lock();
        with_obs(true, || {
            let _ = take_all();
            let g = span("stale");
            let drained = take_all();
            // "stale" exists as a node but was never closed → count 0.
            let n = drained.nodes[ROOT]
                .children
                .iter()
                .copied()
                .find(|&c| drained.nodes[c].name == "stale");
            if let Some(n) = n {
                assert_eq!(drained.nodes[n].count, 0);
            }
            drop(g); // must not panic or corrupt the fresh generation
            let after = take_all();
            assert!(
                after.nodes[ROOT].children.is_empty(),
                "stale guard must not record into the new generation"
            );
        });
    }

    #[test]
    fn adopt_nests_worker_spans_under_captured_path() {
        let _serial = crate::test_lock();
        crate::set_force(Some(true));
        let _ = take_all();
        let path = {
            let _outer = span("launch");
            current_path()
        };
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _ad = adopt(&path);
                    let _k = span("kernel");
                })
                .join()
                .unwrap();
        });
        let g = take_all();
        crate::set_force(None);
        let launch = g.nodes[ROOT]
            .children
            .iter()
            .copied()
            .find(|&c| g.nodes[c].name == "launch")
            .expect("launch node present");
        assert_eq!(g.nodes[launch].count, 1, "adoption must not re-count ancestors");
        let kernel = g.nodes[launch]
            .children
            .iter()
            .copied()
            .find(|&c| g.nodes[c].name == "kernel")
            .expect("worker span nests under adopted path");
        assert_eq!(g.nodes[kernel].count, 1);
    }
}
