//! # autoac-obs — observability for the AutoAC stack
//!
//! Zero-dependency structured tracing, metrics, and search-trajectory
//! telemetry, sitting at the very bottom of the workspace dependency
//! graph so every layer (tensor kernels included) can emit into it.
//!
//! Three pieces:
//!
//! 1. **Hierarchical spans** ([`span`], [`span!`]) — RAII guards with
//!    monotonic timing and thread-aware nesting. Kernel launchers capture
//!    [`current_path`] and workers [`adopt`] it, so worker-side spans nest
//!    under the launching call site. Aggregated online per distinct path:
//!    memory is bounded by tree shape, not call count.
//! 2. **Metrics registry** ([`counter_add`], [`gauge_set`],
//!    [`hist_record`], [`series`], [`series_vec`], [`warn`]) — counters,
//!    gauges, log-bucketed [`Histogram`]s with exact min/max/sum, and the
//!    per-epoch trajectory series (α entropy, ω grad norms, losses) that
//!    regenerate the paper's Fig. 4/5 data as a side effect of any run.
//! 3. **Exporters** ([`drain`] → [`ObsReport`]) — JSONL event sink
//!    (`results/OBS_<run>.jsonl` via [`finish`]), human span-tree report
//!    ([`ObsReport::render_tree`]), and a Prometheus text snapshot
//!    ([`ObsReport::prom_dump`]).
//!
//! Everything is gated on the strictly-parsed `AUTOAC_OBS` env var (see
//! [`parse_bool_env`]); when disabled, every instrumentation site costs a
//! single branch and the instrumented code is bitwise-identical to the
//! uninstrumented run — obs never reads RNG state or mutates tensors.

mod env;
mod flight;
mod hist;
mod metrics;
mod report;
mod slo;
mod span;

pub use env::{enabled, parse_bool_env, set_force, with_obs};
pub use flight::{
    flight_dump_to, flight_enabled, flight_jsonl, flight_record, flight_snapshot,
    install_panic_dump, FlightKind, FlightRecord, Ring, FLIGHT_CAPACITY, MSG_MAX,
};
pub use hist::{bucket_bounds, bucket_index, Exemplar, Histogram, MAX_EXEMPLARS, NUM_BUCKETS};
pub use metrics::{
    counter_add, gauge_set, hist_record, hist_record_ex, series, series_vec, shape_record, warn,
    Event, ShapeKey, MAX_SHAPE_KEYS,
};
pub use report::{ObsReport, SpanStat};
pub use slo::{SloConfig, SloEngine, SloStatus, WindowStat};
pub use span::{adopt, current_path, now_ns, span, AdoptGuard, SpanGuard, SpanPath};

/// Opens a span: `let _g = span!("epoch");`. Thin macro alias for the
/// [`span`] function, for call sites that prefer the macro form.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Flushes the calling thread's buffers and removes all accumulated
/// observability state from the process, returning it as an [`ObsReport`].
/// The next drain starts from zero — harness binaries that time several
/// runs in one process call `drain()` between them.
///
/// Spans still open on the calling thread are discarded (their guards
/// detect the reset and skip recording); spans open on *other* live
/// threads stay with those threads and surface in a later drain.
pub fn drain() -> ObsReport {
    let mut g = span::take_all();
    let reg = metrics::take_registry();
    let mut events = std::mem::take(&mut g.events);
    events.sort_by_key(Event::ts_ns);
    let spans = report::build_spans(&g);
    ObsReport {
        spans,
        events,
        counters: reg.counters,
        gauges: reg.gauges,
        hists: reg.hists,
        shapes: reg.shapes,
        warns: reg.warns,
    }
}

/// Non-destructive snapshot of the metrics registry (counters, gauges,
/// histograms, shapes) as an [`ObsReport`]. Unlike [`drain`], nothing is
/// reset and no thread buffers are flushed, so span statistics and
/// buffered events are *not* included — this is the live-export path for
/// the serving layer's `/metrics` endpoint, which must scrape repeatedly
/// without zeroing state between scrapes.
pub fn snapshot() -> ObsReport {
    let reg = metrics::clone_registry();
    ObsReport {
        spans: Vec::new(),
        events: Vec::new(),
        counters: reg.counters,
        gauges: reg.gauges,
        hists: reg.hists,
        shapes: reg.shapes,
        warns: reg.warns,
    }
}

/// Drains and writes `OBS_<run>.jsonl` under `dir`, returning the report
/// for further inspection (span-tree printing, assertions). Returns `None`
/// without draining when obs is disabled on the calling thread, so library
/// code can call it unconditionally at exit.
pub fn finish_to(dir: &std::path::Path, run: &str) -> Option<ObsReport> {
    if !enabled() {
        return None;
    }
    let rep = drain();
    let path = dir.join(format!("OBS_{run}.jsonl"));
    if let Err(e) = rep.write_jsonl(&path, run) {
        warn("obs", &format!("failed to write {}: {e}", path.display()));
    }
    Some(rep)
}

/// [`finish_to`] with the conventional `results/` output directory.
pub fn finish(run: &str) -> Option<ObsReport> {
    finish_to(std::path::Path::new("results"), run)
}

/// Serializes unit tests that touch process-global obs state (the force
/// switch, the global span accumulator, the metrics registry).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_combines_spans_events_and_registry() {
        let _serial = test_lock();
        let _ = drain();
        with_obs(true, || {
            {
                let _s = span!("search");
                let _e = span!("epoch");
                series("val_loss", 0, 0.5);
            }
            counter_add("opcache_hits", 2);
        });
        let rep = drain();
        assert!(rep.span("search").is_some());
        let epoch = rep.span("search/epoch").expect("nested path present");
        assert_eq!(epoch.count, 1);
        assert_eq!(rep.counter("opcache_hits"), 2);
        assert_eq!(rep.events.len(), 1);
        let jsonl = rep.to_jsonl("t");
        assert!(jsonl.contains(r#""path":"search/epoch""#));
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let _serial = test_lock();
        let _ = drain();
        with_obs(true, || {
            counter_add("served", 3);
            hist_record("lat_ns", 42.0);
        });
        let snap1 = snapshot();
        assert_eq!(snap1.counter("served"), 3);
        assert_eq!(snap1.hists.get("lat_ns").map(|h| h.count), Some(1));
        // A second snapshot sees the same state; drain still gets it all.
        let snap2 = snapshot();
        assert_eq!(snap2.counter("served"), 3);
        let rep = drain();
        assert_eq!(rep.counter("served"), 3);
        assert!(drain().counters.is_empty());
    }

    #[test]
    fn finish_returns_none_when_disabled() {
        with_obs(false, || {
            assert!(finish("never-written").is_none());
        });
    }

    #[test]
    fn finish_to_writes_parseable_jsonl() {
        let _serial = test_lock();
        let _ = drain();
        let dir = std::env::temp_dir().join(format!("autoac_obs_test_{}", std::process::id()));
        let rep = with_obs(true, || {
            let _s = span!("search");
            drop(_s);
            series("pool_hit_rate", 0, 1.0);
            finish_to(&dir, "unit").expect("enabled → Some")
        });
        assert!(rep.span("search").is_some());
        let text = std::fs::read_to_string(dir.join("OBS_unit.jsonl")).unwrap();
        assert!(text.lines().next().unwrap().contains(r#""type":"meta""#));
        assert!(text.contains("pool_hit_rate"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
