//! Basic trainable layers.

use autoac_tensor::{init, Act, Matrix, Tensor};
use rand::Rng;

/// Fully connected layer `y = x W + b`.
pub struct Linear {
    /// Weight matrix `(in_dim, out_dim)`.
    pub w: Tensor,
    /// Optional bias `(1, out_dim)`.
    pub b: Option<Tensor>,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, bias: bool, rng: &mut impl Rng) -> Self {
        Self {
            w: Tensor::param(init::xavier_uniform(in_dim, out_dim, rng)),
            b: bias.then(|| Tensor::param(Matrix::zeros(1, out_dim))),
        }
    }

    /// Applies the layer (fused matmul + bias, one autograd node).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.linear(&self.w, self.b.as_ref(), Act::Identity)
    }

    /// Applies the layer followed by an activation, fused into a single
    /// autograd node (bitwise-equivalent to `forward` + the standalone op).
    pub fn forward_act(&self, x: &Tensor, act: Act) -> Tensor {
        x.linear(&self.w, self.b.as_ref(), act)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.w.clone()];
        if let Some(b) = &self.b {
            p.push(b.clone());
        }
        p
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.shape().1
    }
}

/// Embedding table: a trainable `(count, dim)` matrix addressed by row.
pub struct Embedding {
    /// The table.
    pub table: Tensor,
}

impl Embedding {
    /// Normal-initialized embedding table.
    pub fn new(count: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Self { table: Tensor::param(init::random_normal(count, dim, 0.1, rng)) }
    }

    /// Looks up rows by index.
    pub fn forward(&self, idx: &[u32]) -> Tensor {
        self.table.gather_rows(idx)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(4, 3, true, &mut rng);
        let x = Tensor::constant(Matrix::ones(5, 4));
        let y = l.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(l.params().len(), 2);
        assert_eq!(l.out_dim(), 3);
    }

    #[test]
    fn linear_without_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(4, 3, false, &mut rng);
        assert_eq!(l.params().len(), 1);
        assert!(l.b.is_none());
    }

    #[test]
    fn linear_is_trainable() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(2, 2, true, &mut rng);
        let x = Tensor::constant(Matrix::ones(3, 2));
        l.forward(&x).sum().backward();
        assert!(l.w.grad().is_some());
        assert!(l.b.as_ref().unwrap().grad().is_some());
    }

    #[test]
    fn embedding_lookup() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = Embedding::new(10, 4, &mut rng);
        let out = e.forward(&[3, 3, 7]);
        assert_eq!(out.shape(), (3, 4));
        let v = out.to_matrix();
        assert_eq!(v.row(0), v.row(1), "same index, same row");
        out.sum().backward();
        let g = e.table.grad().unwrap();
        assert_eq!(g.row(3), &[2.0, 2.0, 2.0, 2.0], "duplicate index accumulates");
        assert_eq!(g.row(0), &[0.0; 4]);
    }
}
