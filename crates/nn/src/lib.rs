//! # autoac-nn
//!
//! Heterogeneous GNN model zoo on top of `autoac-tensor`: the backbones
//! AutoAC wraps (SimpleHGN, MAGNN) plus the baselines of Tables II and V
//! (GCN, GAT, HAN, HGT-lite, HetGNN-lite, GTN-lite), shared attention
//! layers, the per-type feature encoder, and the link-prediction head.

#![warn(missing_docs)]

pub mod attention;
mod edges;
mod encoder;
pub mod layers;
pub mod lp;
pub mod metapaths;
pub mod models;

pub use autoac_tensor::Act;
pub use edges::EdgeIndex;
pub use encoder::FeatureEncoder;
pub use models::{Forward, Gnn, GnnConfig};
