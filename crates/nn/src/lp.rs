//! Link-prediction scoring head (HGB protocol: dot-product decoder over
//! node embeddings, BCE training against sampled negatives).

use autoac_tensor::Tensor;

/// Scores node pairs by embedding dot product: returns `(P, 1)` logits.
pub fn score_pairs(embeddings: &Tensor, pairs: &[(u32, u32)]) -> Tensor {
    let src: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
    let dst: Vec<u32> = pairs.iter().map(|&(_, d)| d).collect();
    let hs = embeddings.gather_rows(&src);
    let hd = embeddings.gather_rows(&dst);
    hs.rowwise_dot(&hd)
}

/// BCE-with-logits loss over positive and negative pairs.
pub fn lp_loss(embeddings: &Tensor, pos: &[(u32, u32)], neg: &[(u32, u32)]) -> Tensor {
    let mut pairs = Vec::with_capacity(pos.len() + neg.len());
    pairs.extend_from_slice(pos);
    pairs.extend_from_slice(neg);
    let mut labels = vec![1.0f32; pos.len()];
    labels.extend(std::iter::repeat_n(0.0, neg.len()));
    score_pairs(embeddings, &pairs).bce_with_logits(&labels)
}

/// Sigmoid scores (probabilities) for evaluation, as a plain vector.
pub fn score_probs(embeddings: &Tensor, pairs: &[(u32, u32)]) -> Vec<f32> {
    autoac_tensor::no_grad(|| {
        score_pairs(embeddings, pairs)
            .value()
            .data()
            .iter()
            .map(|&z| 1.0 / (1.0 + (-z).exp()))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use rand::SeedableRng;

    #[test]
    fn scores_are_dot_products() {
        let h = Tensor::constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        let s = score_pairs(&h, &[(0, 1), (0, 2), (2, 2)]);
        assert_eq!(s.to_matrix().data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn loss_decreases_when_training_embeddings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let h = Tensor::param(autoac_tensor::init::random_normal(4, 4, 0.5, &mut rng));
        let pos = vec![(0u32, 1u32), (2, 3)];
        let neg = vec![(0u32, 3u32), (1, 2)];
        let mut opt = autoac_tensor::Adam::new(
            vec![h.clone()],
            autoac_tensor::AdamConfig::with(0.05, 0.0),
        );
        let first = lp_loss(&h, &pos, &neg).item();
        for _ in 0..50 {
            opt.zero_grad();
            let loss = lp_loss(&h, &pos, &neg);
            loss.backward();
            opt.step();
        }
        let last = lp_loss(&h, &pos, &neg).item();
        assert!(last < first * 0.5, "{first} -> {last}");
    }

    #[test]
    fn probs_in_unit_interval() {
        let h = Tensor::constant(Matrix::from_rows(&[&[10.0], &[-10.0]]));
        let p = score_probs(&h, &[(0, 0), (0, 1), (1, 1)]);
        assert!(p[0] > 0.99);
        assert!(p[1] < 0.01);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
