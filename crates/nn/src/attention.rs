//! Graph attention layer, parameterized to cover both plain GAT and
//! SimpleHGN (learnable edge-type embeddings in the attention logits, edge
//! attention residual β, node residual connections).
//!
//! Per head `h` over the edge index `(src, dst, etype)`:
//! ```text
//! z     = X W_h
//! e_ij  = LeakyReLU(a_srcᵀ z_i + a_dstᵀ z_j + a_eᵀ r_ψ(ij))   (r: etype embedding)
//! α̂     = softmax over incoming edges of j
//! α     = (1-β) α̂ + β α_prev                                   (edge residual)
//! out_j = Σ_i α_ij z_i  (+ residual W_r x_j)
//! ```

use autoac_tensor::{Act, Tensor};
use rand::rngs::StdRng;

use crate::edges::EdgeIndex;
use crate::layers::{Embedding, Linear};

/// Configuration for [`GatLayer`].
#[derive(Debug, Clone, Copy)]
pub struct GatConfig {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output dimension per head.
    pub out_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Negative slope of the attention LeakyReLU.
    pub slope: f32,
    /// Feature dropout probability (applied to the layer input).
    pub dropout: f32,
    /// Edge-type embedding dimension; 0 disables edge-type terms (plain GAT).
    pub edge_dim: usize,
    /// Edge attention residual weight β (SimpleHGN); 0 disables it.
    pub beta: f32,
    /// Whether to add a node residual connection.
    pub residual: bool,
    /// `true`: concatenate heads (hidden layers); `false`: average them
    /// (output layers, as in GAT/SimpleHGN).
    pub concat: bool,
}

impl Default for GatConfig {
    fn default() -> Self {
        Self {
            in_dim: 64,
            out_dim: 64,
            heads: 1,
            slope: 0.05,
            dropout: 0.5,
            edge_dim: 0,
            beta: 0.0,
            residual: false,
            concat: true,
        }
    }
}

struct Head {
    w: Linear,
    a_src: Tensor,
    a_dst: Tensor,
    a_edge: Option<Tensor>,
}

/// Multi-head graph attention layer.
pub struct GatLayer {
    cfg: GatConfig,
    heads: Vec<Head>,
    etype_emb: Option<Embedding>,
    w_res: Option<Linear>,
}

impl GatLayer {
    /// Creates the layer; `num_etypes` sizes the edge-type embedding table
    /// when `cfg.edge_dim > 0`.
    pub fn new(cfg: GatConfig, num_etypes: usize, rng: &mut StdRng) -> Self {
        let heads = (0..cfg.heads)
            .map(|_| Head {
                w: Linear::new(cfg.in_dim, cfg.out_dim, false, rng),
                a_src: Tensor::param(autoac_tensor::init::xavier_uniform(cfg.out_dim, 1, rng)),
                a_dst: Tensor::param(autoac_tensor::init::xavier_uniform(cfg.out_dim, 1, rng)),
                a_edge: (cfg.edge_dim > 0).then(|| {
                    Tensor::param(autoac_tensor::init::xavier_uniform(cfg.edge_dim, 1, rng))
                }),
            })
            .collect();
        let etype_emb =
            (cfg.edge_dim > 0).then(|| Embedding::new(num_etypes, cfg.edge_dim, rng));
        let out_total = if cfg.concat { cfg.out_dim * cfg.heads } else { cfg.out_dim };
        let w_res = (cfg.residual).then(|| Linear::new(cfg.in_dim, out_total, false, rng));
        Self { cfg, heads, etype_emb, w_res }
    }

    /// Output dimension (accounting for head concatenation).
    pub fn out_total(&self) -> usize {
        if self.cfg.concat {
            self.cfg.out_dim * self.cfg.heads
        } else {
            self.cfg.out_dim
        }
    }

    /// Forward pass. `prev_att` is the per-head attention from the previous
    /// layer (for the β edge residual); the returned attention can be fed
    /// to the next layer.
    pub fn forward(
        &self,
        x: &Tensor,
        idx: &EdgeIndex,
        prev_att: Option<&[Tensor]>,
        training: bool,
        rng: &mut StdRng,
    ) -> (Tensor, Vec<Tensor>) {
        let x = x.dropout(self.cfg.dropout, training, rng);
        let n = idx.num_nodes;
        let mut outputs = Vec::with_capacity(self.heads.len());
        let mut attentions = Vec::with_capacity(self.heads.len());
        let edge_feat = self.etype_emb.as_ref().map(|emb| emb.forward(&idx.etype));
        for (h, head) in self.heads.iter().enumerate() {
            let z = head.w.forward(&x);
            let zs = z.gather_rows(&idx.src);
            let zd = z.gather_rows(&idx.dst);
            let mut score = zs.matmul(&head.a_src).add(&zd.matmul(&head.a_dst));
            if let (Some(ef), Some(ae)) = (&edge_feat, &head.a_edge) {
                score = score.add(&ef.matmul(ae));
            }
            let mut att = score.leaky_relu(self.cfg.slope).group_softmax(&idx.dst, n);
            if self.cfg.beta > 0.0 {
                if let Some(prev) = prev_att {
                    att = att
                        .scale(1.0 - self.cfg.beta)
                        .add(&prev[h].scale(self.cfg.beta));
                }
            }
            let msg = zs.mul_col_vec(&att);
            outputs.push(msg.scatter_add_rows(&idx.dst, n));
            attentions.push(att);
        }
        let mut out = if self.cfg.concat {
            let refs: Vec<&Tensor> = outputs.iter().collect();
            Tensor::concat_cols(&refs)
        } else {
            let mut acc = outputs[0].clone();
            for o in &outputs[1..] {
                acc = acc.add(o);
            }
            acc.scale(1.0 / outputs.len() as f32)
        };
        if let Some(w_res) = &self.w_res {
            out = out.add(&w_res.forward(&x));
        }
        (out, attentions)
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for h in &self.heads {
            p.extend(h.w.params());
            p.push(h.a_src.clone());
            p.push(h.a_dst.clone());
            if let Some(a) = &h.a_edge {
                p.push(a.clone());
            }
        }
        if let Some(e) = &self.etype_emb {
            p.extend(e.params());
        }
        if let Some(r) = &self.w_res {
            p.extend(r.params());
        }
        p
    }
}

/// Semantic (metapath-level) attention used by HAN and MAGNN: each metapath
/// view `(N, d)` is summarized by `mean(tanh(X W + b) q)` and the views are
/// combined with softmax weights.
pub struct SemanticAttention {
    w: Linear,
    q: Tensor,
}

impl SemanticAttention {
    /// Creates the semantic attention block (`att_dim` is the summary
    /// projection width, 128 in HAN's defaults).
    pub fn new(in_dim: usize, att_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Linear::new(in_dim, att_dim, true, rng),
            q: Tensor::param(autoac_tensor::init::xavier_uniform(att_dim, 1, rng)),
        }
    }

    /// Combines per-metapath node representations (all `(N, d)`).
    pub fn forward(&self, views: &[Tensor]) -> Tensor {
        assert!(!views.is_empty(), "semantic attention needs ≥ 1 view");
        // Per-view scalar score: mean over nodes of tanh(x W + b) · q.
        let scores: Vec<Tensor> = views
            .iter()
            .map(|v| self.w.forward_act(v, Act::Tanh).matmul(&self.q).mean())
            .collect();
        let refs: Vec<&Tensor> = scores.iter().collect();
        let weights = Tensor::concat_cols(&refs).softmax_rows(); // (1, V)
        let mut out: Option<Tensor> = None;
        for (i, v) in views.iter().enumerate() {
            let wi = weights.slice_cols(i, 1); // (1,1)
            let term = v.mul_scalar_tensor(&wi);
            out = Some(match out {
                Some(acc) => acc.add(&term),
                None => term,
            });
        }
        out.expect("non-empty views")
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.w.params();
        p.push(self.q.clone());
        p
    }
}

/// Renormalizes rows of `x` to unit L2 norm (SimpleHGN applies this to its
/// link-prediction output embeddings).
pub fn l2_normalize_rows(x: &Tensor) -> Tensor {
    let norms = x.square().sum_rows().add_scalar(1e-12).sqrt();
    let inv = Tensor::constant(norms.value().map(|v| 1.0 / v));
    // Constant inverse keeps the op simple; gradient flows through x only,
    // which is the standard approximation for output normalization.
    x.mul_col_vec(&inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use autoac_graph::HeteroGraph;
    use rand::SeedableRng;

    fn toy_index() -> EdgeIndex {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 3);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.add_edge(e, 2, 4);
        EdgeIndex::typed(&b.build())
    }

    #[test]
    fn gat_layer_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let idx = toy_index();
        let cfg = GatConfig { in_dim: 6, out_dim: 4, heads: 2, ..Default::default() };
        let layer = GatLayer::new(cfg, idx.num_etypes, &mut rng);
        let x = Tensor::constant(Matrix::ones(5, 6));
        let (out, att) = layer.forward(&x, &idx, None, false, &mut rng);
        assert_eq!(out.shape(), (5, 8));
        assert_eq!(att.len(), 2);
        assert_eq!(att[0].shape(), (idx.len(), 1));
        assert_eq!(layer.out_total(), 8);
    }

    #[test]
    fn attention_sums_to_one_per_destination() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = toy_index();
        let cfg = GatConfig { in_dim: 4, out_dim: 4, dropout: 0.0, ..Default::default() };
        let layer = GatLayer::new(cfg, idx.num_etypes, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(5, 4, 1.0, &mut rng));
        let (_, att) = layer.forward(&x, &idx, None, false, &mut rng);
        let a = att[0].to_matrix();
        let mut per_dst = [0.0f32; 5];
        for (i, &d) in idx.dst.iter().enumerate() {
            per_dst[d as usize] += a.get(i, 0);
        }
        for (d, s) in per_dst.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-5, "dst {d} attention sums to {s}");
        }
    }

    #[test]
    fn edge_residual_mixes_previous_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let idx = toy_index();
        let cfg = GatConfig {
            in_dim: 4,
            out_dim: 4,
            edge_dim: 4,
            beta: 0.5,
            dropout: 0.0,
            ..Default::default()
        };
        let layer = GatLayer::new(cfg, idx.num_etypes, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(5, 4, 1.0, &mut rng));
        let (_, att1) = layer.forward(&x, &idx, None, false, &mut rng);
        let (_, att2) = layer.forward(&x, &idx, Some(&att1), false, &mut rng);
        // With β = 0.5 and identical logits, att2 = att1 (fixed point).
        for (a, b) in att1[0].value().data().iter().zip(att2[0].value().data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = toy_index();
        let cfg = GatConfig {
            in_dim: 4,
            out_dim: 3,
            heads: 2,
            edge_dim: 2,
            residual: true,
            dropout: 0.0,
            ..Default::default()
        };
        let layer = GatLayer::new(cfg, idx.num_etypes, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(5, 4, 1.0, &mut rng));
        let (out, _) = layer.forward(&x, &idx, None, true, &mut rng);
        out.square().sum().backward();
        for (i, p) in layer.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} has no grad");
        }
    }

    #[test]
    fn semantic_attention_convex_combination() {
        let mut rng = StdRng::seed_from_u64(4);
        let sem = SemanticAttention::new(3, 8, &mut rng);
        let a = Tensor::constant(Matrix::full(4, 3, 1.0));
        let b = Tensor::constant(Matrix::full(4, 3, 3.0));
        let out = sem.forward(&[a, b]).to_matrix();
        // Every element must lie in [1, 3] (convex combination).
        assert!(out.data().iter().all(|&v| (1.0..=3.0).contains(&v)), "{out:?}");
        assert_eq!(sem.params().len(), 3);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let x = Tensor::param(Matrix::from_rows(&[&[3.0, 4.0], &[0.5, 0.0]]));
        let y = l2_normalize_rows(&x);
        let v = y.to_matrix();
        for r in 0..2 {
            let n: f32 = v.row(r).iter().map(|a| a * a).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "row {r} norm {n}");
        }
        y.sum().backward();
        assert!(x.grad().is_some());
    }
}
