//! GNN model zoo.
//!
//! Every model consumes a full-graph `(N, d_in)` initial embedding block
//! (raw-projected + completed attributes) and produces both a hidden
//! representation for every node (consumed by AutoAC's auxiliary
//! clustering) and a task output block.

use autoac_tensor::Tensor;
use rand::rngs::StdRng;

mod gat;
mod gatne;
mod gcn;
mod gtn;
mod han;
mod hetgnn;
mod hetsann;
mod hgt;
mod magnn;
mod simple_hgn;

pub use gat::Gat;
pub use gatne::GatneLite;
pub use gcn::Gcn;
pub use gtn::GtnLite;
pub use han::Han;
pub use hetgnn::HetGnnLite;
pub use hetsann::HetSannLite;
pub use hgt::HgtLite;
pub use magnn::Magnn;
pub use simple_hgn::SimpleHgn;

/// Result of a model forward pass.
pub struct Forward {
    /// Hidden representation `(N, hidden)` of every node — the input to the
    /// auxiliary modularity clustering.
    pub hidden: Tensor,
    /// Task output `(N, out_dim)`: class logits for node classification, or
    /// embedding block for link prediction.
    pub output: Tensor,
}

/// Common interface over all GNN backbones.
pub trait Gnn {
    /// Model name for reports.
    fn name(&self) -> &'static str;
    /// Runs the model on initial node embeddings `x0`.
    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward;
    /// All trainable parameters.
    fn params(&self) -> Vec<Tensor>;
}

/// Shared hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GnnConfig {
    /// Input (shared embedding) dimension.
    pub in_dim: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Output dimension (classes for node classification, embedding dim for
    /// link prediction).
    pub out_dim: usize,
    /// Number of message-passing layers.
    pub layers: usize,
    /// Attention heads (attention models).
    pub heads: usize,
    /// Feature dropout.
    pub dropout: f32,
    /// LeakyReLU negative slope in attention logits.
    pub slope: f32,
    /// Edge-type embedding dimension (SimpleHGN).
    pub edge_dim: usize,
    /// Edge-attention residual β (SimpleHGN).
    pub beta: f32,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self {
            in_dim: 64,
            hidden: 64,
            out_dim: 4,
            layers: 2,
            heads: 2,
            dropout: 0.5,
            slope: 0.05,
            edge_dim: 32,
            beta: 0.05,
        }
    }
}
