//! HAN (Wang et al., WWW'19): per-metapath node-level graph attention over
//! metapath neighbor graphs, combined by semantic attention.
//!
//! Non-target nodes are untouched by metapath views; their hidden
//! representation is the (completed) input embedding, so AutoAC's
//! clustering still sees every no-attribute node.

use autoac_graph::{metapath, Adjacency, HeteroGraph, NodeTypeId};
use autoac_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::attention::{GatConfig, GatLayer, SemanticAttention};
use crate::edges::EdgeIndex;
use crate::layers::Linear;
use crate::metapaths::default_metapaths;
use crate::models::{Forward, Gnn, GnnConfig};

/// HAN over sampled metapath neighbor graphs.
///
/// Metapath views include self-loops over *all* nodes, so non-target nodes
/// receive a (self-attention-only) representation too — which is what the
/// AutoAC clustering consumes.
pub struct Han {
    views: Vec<EdgeIndex>,
    gats: Vec<GatLayer>,
    semantic: SemanticAttention,
    classifier: Linear,
}

impl Han {
    /// Builds the model; metapath instance sampling is capped per node.
    pub fn new(
        graph: &HeteroGraph,
        target: NodeTypeId,
        cfg: &GnnConfig,
        cap_per_node: usize,
        rng: &mut StdRng,
    ) -> Self {
        let adj = Adjacency::build(graph);
        let mps = default_metapaths(graph, target);
        assert!(!mps.is_empty(), "han: target type has no metapaths");
        let mut sample_rng = StdRng::seed_from_u64(rng.next_u64());
        let views: Vec<EdgeIndex> = mps
            .iter()
            .map(|mp| {
                let csr = metapath::metapath_adjacency(
                    &adj,
                    mp,
                    graph.nodes_of_type(target).map(|v| v as u32),
                    cap_per_node,
                    &mut sample_rng,
                );
                let mut pairs = Vec::new();
                for r in 0..csr.n_rows() {
                    for (c, _) in csr.row(r) {
                        // Message flows endpoint→endpoint (both are target
                        // type); direction src=c, dst=r.
                        pairs.push((c, r as u32));
                    }
                }
                EdgeIndex::from_pairs(&pairs, graph.num_nodes(), true)
            })
            .collect();
        let gats = views
            .iter()
            .map(|_| {
                GatLayer::new(
                    GatConfig {
                        in_dim: cfg.in_dim,
                        out_dim: cfg.hidden,
                        heads: cfg.heads,
                        slope: cfg.slope,
                        dropout: cfg.dropout,
                        edge_dim: 0,
                        beta: 0.0,
                        residual: false,
                        concat: true,
                    },
                    1,
                    rng,
                )
            })
            .collect::<Vec<_>>();
        let view_dim = gats[0].out_total();
        let semantic = SemanticAttention::new(view_dim, 128.min(view_dim * 2), rng);
        let classifier = Linear::new(view_dim, cfg.out_dim, true, rng);
        Self { views, gats, semantic, classifier }
    }
}

impl Gnn for Han {
    fn name(&self) -> &'static str {
        "HAN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let embeds: Vec<Tensor> = self
            .views
            .iter()
            .zip(&self.gats)
            .map(|(idx, gat)| gat.forward(x0, idx, None, training, rng).0.elu())
            .collect();
        let sem = self.semantic.forward(&embeds);
        let hidden = sem.clone();
        let output = self.classifier.forward(&sem.dropout(0.2, training, rng));
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.gats.iter().flat_map(GatLayer::params).collect();
        p.extend(self.semantic.params());
        p.extend(self.classifier.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let d = b.add_node_type("d", 2);
        let ma = b.add_edge_type("m-a", m, a);
        let md = b.add_edge_type("m-d", m, d);
        b.add_edge(ma, 0, 4);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 5);
        b.add_edge(ma, 3, 5);
        b.add_edge(md, 0, 6);
        b.add_edge(md, 1, 6);
        b.add_edge(md, 2, 7);
        b.build()
    }

    #[test]
    fn shapes_and_views() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 4, out_dim: 3, heads: 2, ..Default::default() };
        let g = toy();
        let model = Han::new(&g, 0, &cfg, 32, &mut rng);
        assert_eq!(model.views.len(), 2); // M-A-M, M-D-M
        let x = Tensor::constant(Matrix::ones(8, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (8, 3));
        assert_eq!(f.hidden.shape(), (8, 8)); // hidden·heads
    }

    #[test]
    fn learns_metapath_communities() {
        // Movies {0,1} share actor 4 and director 6; movies {2,3} share
        // actor 5. HAN should separate the two groups without any feature
        // signal beyond random init.
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            heads: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = Han::new(&g, 0, &cfg, 32, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(8, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 9, 9, 9, 9];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.slice_cols(0, 2).cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
