//! HetSANN-lite (Hong et al., AAAI'20), simplified: graph attention with
//! *relation-specific attention vectors* — each edge type gets its own
//! source/destination attention parameters — but no metapaths and no
//! edge-type embeddings in the messages (that is SimpleHGN's extension).

use autoac_graph::HeteroGraph;
use autoac_tensor::Tensor;
use rand::rngs::StdRng;

use crate::edges::EdgeIndex;
use crate::layers::{Embedding, Linear};
use crate::models::{Forward, Gnn, GnnConfig};

struct HetSannLayer {
    w: Linear,
    /// `(num_etypes, out_dim)` relation-specific source attention vectors.
    a_src: Embedding,
    /// `(num_etypes, out_dim)` relation-specific destination vectors.
    a_dst: Embedding,
}

/// Simplified HetSANN.
pub struct HetSannLite {
    idx: EdgeIndex,
    layers: Vec<HetSannLayer>,
    classifier: Linear,
    slope: f32,
    dropout: f32,
}

impl HetSannLite {
    /// Builds the model over the typed directed edge index.
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let idx = EdgeIndex::typed(graph);
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut in_dim = cfg.in_dim;
        for _ in 0..cfg.layers {
            layers.push(HetSannLayer {
                w: Linear::new(in_dim, cfg.hidden, false, rng),
                a_src: Embedding::new(idx.num_etypes, cfg.hidden, rng),
                a_dst: Embedding::new(idx.num_etypes, cfg.hidden, rng),
            });
            in_dim = cfg.hidden;
        }
        let classifier = Linear::new(cfg.hidden, cfg.out_dim, true, rng);
        Self { idx, layers, classifier, slope: cfg.slope, dropout: cfg.dropout }
    }
}

impl Gnn for HetSannLite {
    fn name(&self) -> &'static str {
        "HetSANN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let n = self.idx.num_nodes;
        let mut h = x0.clone();
        let mut hidden = h.clone();
        for layer in &self.layers {
            let hd = h.dropout(self.dropout, training, rng);
            let z = layer.w.forward(&hd);
            let zs = z.gather_rows(&self.idx.src);
            let zd = z.gather_rows(&self.idx.dst);
            // Relation-specific attention: ⟨z_s, a_src[ψ]⟩ + ⟨z_d, a_dst[ψ]⟩.
            let a_s = layer.a_src.forward(&self.idx.etype);
            let a_d = layer.a_dst.forward(&self.idx.etype);
            let score = zs.rowwise_dot(&a_s).add(&zd.rowwise_dot(&a_d));
            let att = score.leaky_relu(self.slope).group_softmax(&self.idx.dst, n);
            let agg = zs.mul_col_vec(&att).scatter_add_rows(&self.idx.dst, n);
            h = agg.elu();
            hidden = h.clone();
        }
        let output = self.classifier.forward(&h.dropout(self.dropout, training, rng));
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for layer in &self.layers {
            p.extend(layer.w.params());
            p.extend(layer.a_src.params());
            p.extend(layer.a_dst.params());
        }
        p.extend(self.classifier.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 5);
        b.add_edge(e, 3, 5);
        b.build()
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 8, out_dim: 3, layers: 2, ..Default::default() };
        let model = HetSannLite::new(&toy(), &cfg, &mut rng);
        let x = Tensor::constant(Matrix::ones(6, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (6, 3));
        assert_eq!(f.hidden.shape(), (6, 8));
        assert_eq!(model.name(), "HetSANN");
    }

    #[test]
    fn relation_attention_differs_by_edge_type() {
        // Parameters per edge type must be distinct objects.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnnConfig { in_dim: 4, hidden: 4, out_dim: 2, layers: 1, ..Default::default() };
        let model = HetSannLite::new(&toy(), &cfg, &mut rng);
        let table = model.layers[0].a_src.table.to_matrix();
        assert_ne!(table.row(0), table.row(1));
    }

    #[test]
    fn trains() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = HetSannLite::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(6, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 0, 1];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
