//! Graph Convolutional Network (Kipf & Welling) over the homogeneous view
//! of the heterogeneous graph — the strongest "simple" baseline in
//! Tables II and V.

use std::rc::Rc;

use autoac_graph::{norm, HeteroGraph};
use autoac_tensor::{spmm, Csr, Tensor};
use rand::rngs::StdRng;

use crate::layers::Linear;
use crate::models::{Forward, Gnn, GnnConfig};

/// L-layer GCN with symmetric normalization and ReLU.
pub struct Gcn {
    adj: Rc<Csr>,
    layers: Vec<Linear>,
    dropout: f32,
}

impl Gcn {
    /// Builds the model (precomputes `Â`).
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        Self::with_adj(Rc::new(norm::sym_norm_adj(graph)), cfg, rng)
    }

    /// Builds the model around an already-computed `Â` (e.g. shared from an
    /// operator cache instead of renormalizing the graph).
    pub fn with_adj(adj: Rc<Csr>, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        assert!(cfg.layers >= 1, "gcn: need at least one layer");
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut in_dim = cfg.in_dim;
        for l in 0..cfg.layers {
            let out = if l + 1 == cfg.layers { cfg.out_dim } else { cfg.hidden };
            layers.push(Linear::new(in_dim, out, true, rng));
            in_dim = out;
        }
        Self { adj, layers, dropout: cfg.dropout }
    }

    /// Runs the layer stack over an *externally supplied* adjacency — the
    /// minibatch path feeds the normalized operator of a sampled subgraph
    /// while reusing this model's (whole-graph) weights. Consumes RNG draws
    /// exactly like [`Gnn::forward`].
    pub fn forward_on(
        &self,
        adj: &Rc<Csr>,
        x0: &Tensor,
        training: bool,
        rng: &mut StdRng,
    ) -> Forward {
        let mut h = x0.clone();
        let mut hidden = h.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            h = h.dropout(self.dropout, training, rng);
            h = spmm(adj, adj, &layer.forward(&h));
            if l + 1 < self.layers.len() {
                h = h.relu();
                hidden = h.clone();
            }
        }
        Forward { hidden, output: h }
    }
}

impl Gnn for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let adj = Rc::clone(&self.adj);
        self.forward_on(&adj, x0, training, rng)
    }

    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Linear::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 5);
        b.add_edge(e, 3, 5);
        b.build()
    }

    #[test]
    fn shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 16, out_dim: 3, layers: 3, ..Default::default() };
        let model = Gcn::new(&toy(), &cfg, &mut rng);
        let x = Tensor::constant(Matrix::ones(6, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (6, 3));
        assert_eq!(f.hidden.shape(), (6, 16));
        assert_eq!(model.params().len(), 6);
        assert_eq!(model.name(), "GCN");
    }

    #[test]
    fn trains_end_to_end() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = Gcn::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(6, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 0, 1];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.05, 0.0));
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for i in 0..60 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.5, "loss must drop: {first} -> {last}");
    }
}
