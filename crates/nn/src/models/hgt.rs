//! HGT-lite — Heterogeneous Graph Transformer (Hu et al., WWW'20),
//! simplified: node-type-specific Q/K/V projections, a learnable per-edge-
//! type attention prior, scaled dot-product edge attention, residual
//! connections. (The full model's type-specific message matrices per edge
//! type are folded into the V projection; DESIGN.md §1.)

use autoac_graph::HeteroGraph;
use autoac_tensor::{Matrix, Tensor};
use rand::rngs::StdRng;

use crate::edges::EdgeIndex;
use crate::layers::Linear;
use crate::models::{Forward, Gnn, GnnConfig};

struct HgtLayer {
    wq: Vec<Linear>,
    wk: Vec<Linear>,
    wv: Vec<Linear>,
    mu: Tensor, // (num_etypes, 1) attention prior
    w_out: Linear,
}

/// Simplified Heterogeneous Graph Transformer.
pub struct HgtLite {
    idx: EdgeIndex,
    type_rows: Vec<Vec<u32>>,
    layers: Vec<HgtLayer>,
    classifier: Linear,
    dropout: f32,
    scale: f32,
}

impl HgtLite {
    /// Builds the model over the typed edge index.
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let idx = EdgeIndex::typed(graph);
        let num_types = graph.num_node_types();
        let type_rows: Vec<Vec<u32>> = (0..num_types)
            .map(|t| graph.nodes_of_type(t).map(|v| v as u32).collect())
            .collect();
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut in_dim = cfg.in_dim;
        for _ in 0..cfg.layers {
            layers.push(HgtLayer {
                wq: (0..num_types).map(|_| Linear::new(in_dim, cfg.hidden, false, rng)).collect(),
                wk: (0..num_types).map(|_| Linear::new(in_dim, cfg.hidden, false, rng)).collect(),
                wv: (0..num_types).map(|_| Linear::new(in_dim, cfg.hidden, false, rng)).collect(),
                mu: Tensor::param(Matrix::zeros(idx.num_etypes, 1)),
                w_out: Linear::new(cfg.hidden, cfg.hidden, true, rng),
            });
            in_dim = cfg.hidden;
        }
        let classifier = Linear::new(cfg.hidden, cfg.out_dim, true, rng);
        Self {
            idx,
            type_rows,
            layers,
            classifier,
            dropout: cfg.dropout,
            scale: 1.0 / (cfg.hidden as f32).sqrt(),
        }
    }

    /// Applies per-node-type linear layers and reassembles the full block
    /// (type id ranges are contiguous, so concatenation preserves order).
    fn per_type(&self, x: &Tensor, linears: &[Linear]) -> Tensor {
        let blocks: Vec<Tensor> = self
            .type_rows
            .iter()
            .zip(linears)
            .map(|(rows, l)| l.forward(&x.gather_rows(rows)))
            .collect();
        let refs: Vec<&Tensor> = blocks.iter().collect();
        Tensor::concat_rows(&refs)
    }
}

impl Gnn for HgtLite {
    fn name(&self) -> &'static str {
        "HGT"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let n = self.idx.num_nodes;
        let mut h = x0.clone();
        let mut hidden = h.clone();
        for layer in &self.layers {
            let hd = h.dropout(self.dropout, training, rng);
            let q = self.per_type(&hd, &layer.wq);
            let k = self.per_type(&hd, &layer.wk);
            let v = self.per_type(&hd, &layer.wv);
            let q_dst = q.gather_rows(&self.idx.dst);
            let k_src = k.gather_rows(&self.idx.src);
            let prior = layer.mu.gather_rows(&self.idx.etype);
            let score = q_dst.rowwise_dot(&k_src).scale(self.scale).add(&prior);
            let att = score.group_softmax(&self.idx.dst, n);
            let msg = v.gather_rows(&self.idx.src).mul_col_vec(&att);
            let agg = msg.scatter_add_rows(&self.idx.dst, n);
            let mut out = layer.w_out.forward(&agg.relu());
            if out.shape() == h.shape() {
                out = out.add(&h); // residual
            }
            h = out;
            hidden = h.clone();
        }
        let output = self.classifier.forward(&h.dropout(self.dropout, training, rng));
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for layer in &self.layers {
            for l in layer.wq.iter().chain(&layer.wk).chain(&layer.wv) {
                p.extend(l.params());
            }
            p.push(layer.mu.clone());
            p.extend(layer.w_out.params());
        }
        p.extend(self.classifier.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 5);
        b.add_edge(e, 3, 5);
        b.build()
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 8, out_dim: 3, layers: 2, ..Default::default() };
        let model = HgtLite::new(&toy(), &cfg, &mut rng);
        let x = Tensor::constant(Matrix::ones(6, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (6, 3));
        assert_eq!(f.hidden.shape(), (6, 8));
    }

    #[test]
    fn trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = HgtLite::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(6, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 0, 1];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }

    #[test]
    fn per_type_projection_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GnnConfig { in_dim: 4, hidden: 4, out_dim: 2, layers: 1, ..Default::default() };
        let g = toy();
        let model = HgtLite::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(6, 4, 1.0, &mut rng));
        let q = model.per_type(&x, &model.layers[0].wq);
        // Movie rows use wq[0], actor rows wq[1].
        let manual_movie = model.layers[0].wq[0].forward(&x.gather_rows(&[1]));
        for (a, b) in q.value().row(1).iter().zip(manual_movie.value().row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
        let manual_actor = model.layers[0].wq[1].forward(&x.gather_rows(&[5]));
        for (a, b) in q.value().row(5).iter().zip(manual_actor.value().row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
