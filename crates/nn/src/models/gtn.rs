//! GTN-lite — Graph Transformer Network (Yun et al., NeurIPS'19),
//! simplified: each layer learns a softmax mixture over the per-edge-type
//! normalized adjacencies (plus the identity, allowing shorter paths);
//! stacking layers composes soft multi-hop meta-relations. The full GTN's
//! explicit channel-wise adjacency products are replaced by propagating
//! features through the mixture, which computes the same composite operator
//! applied to `X` without materializing sparse products (DESIGN.md §1).

use std::rc::Rc;

use autoac_graph::HeteroGraph;
use autoac_tensor::{spmm, Csr, Matrix, Tensor};
use rand::rngs::StdRng;

use crate::layers::Linear;
use crate::models::{Forward, Gnn, GnnConfig};

/// Simplified GTN.
pub struct GtnLite {
    /// Row-normalized adjacency per stored edge type (both directions
    /// merged into one symmetric operator per type).
    adjs: Vec<(Rc<Csr>, Rc<Csr>)>,
    /// Per layer: softmax logits over `adjs.len() + 1` choices (identity
    /// last).
    selectors: Vec<Tensor>,
    transforms: Vec<Linear>,
    classifier: Linear,
    dropout: f32,
}

impl GtnLite {
    /// Builds the model.
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let n = graph.num_nodes();
        let adjs: Vec<(Rc<Csr>, Rc<Csr>)> = (0..graph.num_edge_types())
            .map(|e| {
                let mut deg = vec![0usize; n];
                for &(s, d) in graph.edges_of_type(e) {
                    deg[s as usize] += 1;
                    deg[d as usize] += 1;
                }
                let triplets = graph.edges_of_type(e).iter().flat_map(|&(s, d)| {
                    [
                        (s, d, 1.0 / deg[s as usize].max(1) as f32),
                        (d, s, 1.0 / deg[d as usize].max(1) as f32),
                    ]
                });
                let a = Rc::new(Csr::from_coo(n, n, triplets));
                let at = Rc::new(a.transpose());
                (a, at)
            })
            .collect();
        let mut selectors = Vec::with_capacity(cfg.layers);
        let mut transforms = Vec::with_capacity(cfg.layers);
        let mut in_dim = cfg.in_dim;
        for _ in 0..cfg.layers {
            selectors.push(Tensor::param(Matrix::zeros(1, adjs.len() + 1)));
            transforms.push(Linear::new(in_dim, cfg.hidden, true, rng));
            in_dim = cfg.hidden;
        }
        let classifier = Linear::new(cfg.hidden, cfg.out_dim, true, rng);
        Self { adjs, selectors, transforms, classifier, dropout: cfg.dropout }
    }
}

impl Gnn for GtnLite {
    fn name(&self) -> &'static str {
        "GTN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let mut h = x0.clone();
        let mut hidden = h.clone();
        for (sel, lin) in self.selectors.iter().zip(&self.transforms) {
            let h_in = lin.forward(&h.dropout(self.dropout, training, rng));
            let weights = sel.softmax_rows(); // (1, E+1)
            // Soft edge-type selection: Σ_e w_e A_e h + w_I h.
            let mut mixed = h_in.mul_scalar_tensor(&weights.slice_cols(self.adjs.len(), 1));
            for (e, (a, at)) in self.adjs.iter().enumerate() {
                let term = spmm(a, at, &h_in).mul_scalar_tensor(&weights.slice_cols(e, 1));
                mixed = mixed.add(&term);
            }
            h = mixed.relu();
            hidden = h.clone();
        }
        let output = self.classifier.forward(&h.dropout(self.dropout, training, rng));
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.selectors.clone();
        p.extend(self.transforms.iter().flat_map(Linear::params));
        p.extend(self.classifier.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let d = b.add_node_type("d", 2);
        let ma = b.add_edge_type("m-a", m, a);
        let md = b.add_edge_type("m-d", m, d);
        b.add_edge(ma, 0, 4);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 5);
        b.add_edge(ma, 3, 5);
        b.add_edge(md, 0, 6);
        b.add_edge(md, 1, 6);
        b.add_edge(md, 2, 7);
        b.add_edge(md, 3, 7);
        b.build()
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 8, out_dim: 3, layers: 2, ..Default::default() };
        let model = GtnLite::new(&toy(), &cfg, &mut rng);
        let x = Tensor::constant(Matrix::ones(8, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (8, 3));
        assert_eq!(f.hidden.shape(), (8, 8));
        assert_eq!(model.selectors.len(), 2);
    }

    #[test]
    fn selector_learns_informative_edge_type() {
        // Only movie-actor edges carry the class signal (movies sharing an
        // actor share a class); movie-director edges are anti-correlated.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            layers: 1,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = GtnLite::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(8, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 9, 9, 9, 9];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for i in 0..100 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
