//! SimpleHGN (Lv et al., KDD'21) — the SOTA backbone AutoAC wraps.
//!
//! GAT extended with (i) learnable edge-type embeddings inside the
//! attention logits, (ii) node residual connections, and (iii) an edge
//! attention residual `α = (1−β) α̂ + β α_prev` across layers. The
//! link-prediction variant L2-normalizes its output embeddings.

use autoac_graph::HeteroGraph;
use autoac_tensor::Tensor;
use rand::rngs::StdRng;

use crate::attention::{l2_normalize_rows, GatLayer};
use crate::edges::EdgeIndex;
use crate::models::gat::{build_layers, forward_layers};
use crate::models::{Forward, Gnn, GnnConfig};

/// SimpleHGN over the typed directed edge index (forward + reverse +
/// self-loop edge types).
pub struct SimpleHgn {
    idx: EdgeIndex,
    layers: Vec<GatLayer>,
    normalize_output: bool,
}

impl SimpleHgn {
    /// Builds the node-classification variant.
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let idx = EdgeIndex::typed(graph);
        Self {
            layers: build_layers(cfg, idx.num_etypes, cfg.edge_dim, cfg.beta, rng),
            idx,
            normalize_output: false,
        }
    }

    /// Builds the link-prediction variant (L2-normalized output
    /// embeddings, as in the HGB reference implementation).
    pub fn new_for_lp(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let mut m = Self::new(graph, cfg, rng);
        m.normalize_output = true;
        m
    }
}

impl Gnn for SimpleHgn {
    fn name(&self) -> &'static str {
        "SimpleHGN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let (hidden, mut output) = forward_layers(&self.layers, &self.idx, x0, training, rng);
        if self.normalize_output {
            output = l2_normalize_rows(&output);
        }
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(GatLayer::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 3);
        let d = b.add_node_type("d", 2);
        let ma = b.add_edge_type("m-a", m, a);
        let md = b.add_edge_type("m-d", m, d);
        b.add_edge(ma, 0, 4);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 1, 5);
        b.add_edge(ma, 2, 6);
        b.add_edge(md, 0, 7);
        b.add_edge(md, 3, 8);
        b.build()
    }

    #[test]
    fn shapes_and_etype_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig {
            in_dim: 8,
            hidden: 4,
            out_dim: 3,
            layers: 3,
            heads: 2,
            edge_dim: 4,
            ..Default::default()
        };
        let g = toy();
        let model = SimpleHgn::new(&g, &cfg, &mut rng);
        assert_eq!(model.idx.num_etypes, 5); // 2 fwd + 2 rev + self-loop
        let x = Tensor::constant(autoac_tensor::Matrix::ones(9, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (9, 3));
        assert_eq!(f.hidden.shape(), (9, 8));
    }

    #[test]
    fn lp_variant_normalizes_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 4,
            out_dim: 6,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = SimpleHgn::new_for_lp(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(9, 4, 1.0, &mut rng));
        let f = model.forward(&x, false, &mut rng);
        let v = f.output.to_matrix();
        for r in 0..v.rows() {
            let n: f32 = v.row(r).iter().map(|a| a * a).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "row {r} norm {n}");
        }
    }

    #[test]
    fn learns_class_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            layers: 2,
            heads: 2,
            edge_dim: 4,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = SimpleHgn::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(9, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 0, 0, 1, 0, 1];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
