//! HetGNN-lite (Zhang et al., KDD'19), simplified: random-walk-with-restart
//! neighbor sampling per node type, mean aggregation within each type (the
//! paper's Bi-LSTM content encoder is replaced by mean pooling;
//! DESIGN.md §1), and attention-based combination across types.

use autoac_graph::{Adjacency, HeteroGraph};
use autoac_tensor::{Act, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::layers::Linear;
use crate::models::{Forward, Gnn, GnnConfig};

/// Sampled neighbor pairs of one node type: `owner[i]` aggregates from
/// `neighbor[i]`.
struct TypeNeighbors {
    owner: Vec<u32>,
    neighbor: Vec<u32>,
}

/// Simplified HetGNN.
pub struct HetGnnLite {
    samples: Vec<TypeNeighbors>,
    proj: Linear,
    classifier: Linear,
    slope: f32,
    dropout: f32,
    num_nodes: usize,
}

impl HetGnnLite {
    /// Builds the model; `per_type` neighbors of each type are sampled per
    /// node via restart walks of the given length.
    pub fn new(
        graph: &HeteroGraph,
        cfg: &GnnConfig,
        per_type: usize,
        walk_len: usize,
        rng: &mut StdRng,
    ) -> Self {
        let adj = Adjacency::build(graph);
        let n = graph.num_nodes();
        let num_types = graph.num_node_types();
        let mut sample_rng = StdRng::seed_from_u64(rng.next_u64());
        let mut samples: Vec<TypeNeighbors> = (0..num_types)
            .map(|_| TypeNeighbors { owner: Vec::new(), neighbor: Vec::new() })
            .collect();
        for v in 0..n {
            // Random walk with restart from v; collect visited nodes per type.
            let mut per_type_found = vec![0usize; num_types];
            let mut cur = v;
            let budget = walk_len * per_type * num_types;
            for _ in 0..budget {
                if sample_rng.gen_bool(0.5) {
                    cur = v; // restart
                }
                let nbrs = adj.neighbors(cur);
                if nbrs.is_empty() {
                    break;
                }
                let next = nbrs[sample_rng.gen_range(0..nbrs.len())] as usize;
                let t = graph.type_of(next);
                if per_type_found[t] < per_type {
                    per_type_found[t] += 1;
                    samples[t].owner.push(v as u32);
                    samples[t].neighbor.push(next as u32);
                }
                cur = next;
                if per_type_found.iter().all(|&c| c >= per_type) {
                    break;
                }
            }
        }
        Self {
            samples,
            proj: Linear::new(cfg.in_dim, cfg.hidden, true, rng),
            classifier: Linear::new(cfg.hidden, cfg.out_dim, true, rng),
            slope: cfg.slope,
            dropout: cfg.dropout,
            num_nodes: n,
        }
    }
}

impl Gnn for HetGnnLite {
    fn name(&self) -> &'static str {
        "HetGNN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let h = self.proj.forward_act(&x0.dropout(self.dropout, training, rng), Act::Elu);
        // Per-type aggregates (zero rows where no neighbors were sampled).
        let mut aggregates = vec![h.clone()]; // slot 0: the node itself
        for tn in &self.samples {
            if tn.owner.is_empty() {
                continue;
            }
            aggregates.push(h.gather_rows(&tn.neighbor).segment_mean(&tn.owner, self.num_nodes));
        }
        // Attention over {self, type-aggregates}: score_t(v) = ⟨agg_t_v, h_v⟩.
        let scores: Vec<Tensor> =
            aggregates.iter().map(|a| a.rowwise_dot(&h).leaky_relu(self.slope)).collect();
        let refs: Vec<&Tensor> = scores.iter().collect();
        let weights = Tensor::concat_cols(&refs).softmax_rows(); // (N, T+1)
        let mut combined: Option<Tensor> = None;
        for (t, agg) in aggregates.iter().enumerate() {
            let w = weights.slice_cols(t, 1); // (N, 1)
            let term = agg.mul_col_vec(&w);
            combined = Some(match combined {
                Some(acc) => acc.add(&term),
                None => term,
            });
        }
        let hidden = combined.expect("at least the self view").elu();
        let output = self.classifier.forward(&hidden.dropout(self.dropout, training, rng));
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.proj.params();
        p.extend(self.classifier.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 5);
        b.add_edge(e, 3, 5);
        b.build()
    }

    #[test]
    fn shapes_and_sampling() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 8, out_dim: 3, ..Default::default() };
        let g = toy();
        let model = HetGnnLite::new(&g, &cfg, 3, 5, &mut rng);
        // Sampled neighbors must exist for both types.
        assert!(model.samples.iter().any(|s| !s.owner.is_empty()));
        let x = Tensor::constant(autoac_tensor::Matrix::ones(6, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (6, 3));
        assert_eq!(f.hidden.shape(), (6, 8));
    }

    #[test]
    fn trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg =
            GnnConfig { in_dim: 4, hidden: 8, out_dim: 2, dropout: 0.0, ..Default::default() };
        let g = toy();
        let model = HetGnnLite::new(&g, &cfg, 3, 5, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(6, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 0, 1];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
