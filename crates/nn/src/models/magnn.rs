//! MAGNN (Fu et al., WWW'20) — metapath-*instance* aggregation.
//!
//! Per metapath: concrete instances are sampled per target node, encoded by
//! mean-pooling the (projected) features along the path (the paper's RotatE
//! relational encoder is simplified to mean pooling; DESIGN.md §1), then
//! combined by intra-metapath attention over instances and inter-metapath
//! semantic attention.
//!
//! Non-target nodes keep their projected input embedding as hidden state,
//! stitched into the full-`N` output, so the AutoAC clustering sees every
//! node.

use autoac_graph::{metapath, Adjacency, HeteroGraph, NodeTypeId};
use autoac_tensor::{Act, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::attention::SemanticAttention;
use crate::layers::Linear;
use crate::metapaths::default_metapaths;
use crate::models::{Forward, Gnn, GnnConfig};

/// Sampled instance arrays of one metapath: `positions[j][i]` is the node
/// at hop `j` of instance `i`; `owner[i]` is the start (target) node.
struct InstanceSet {
    positions: Vec<Vec<u32>>,
    owner: Vec<u32>,
    hops: usize,
}

/// MAGNN with mean-pooled instance encoding.
pub struct Magnn {
    instance_sets: Vec<InstanceSet>,
    proj: Linear,
    att: Vec<Tensor>, // per metapath: (2*hidden, 1) intra-metapath attention
    semantic: SemanticAttention,
    classifier: Linear,
    slope: f32,
    dropout: f32,
    num_nodes: usize,
    target_mask: Matrix,
}

impl Magnn {
    /// Builds the model; instance sampling is capped per target node.
    pub fn new(
        graph: &HeteroGraph,
        target: NodeTypeId,
        cfg: &GnnConfig,
        cap_per_node: usize,
        rng: &mut StdRng,
    ) -> Self {
        let adj = Adjacency::build(graph);
        let mps = default_metapaths(graph, target);
        assert!(!mps.is_empty(), "magnn: target type has no metapaths");
        let mut sample_rng = StdRng::seed_from_u64(rng.next_u64());
        let instance_sets: Vec<InstanceSet> = mps
            .iter()
            .map(|mp| {
                let hops = mp.0.len();
                let mut positions = vec![Vec::new(); hops];
                let mut owner = Vec::new();
                for v in graph.nodes_of_type(target) {
                    let insts =
                        metapath::sample_instances(&adj, mp, v as u32, cap_per_node, &mut sample_rng);
                    for inst in &insts {
                        for (j, &node) in inst.iter().enumerate() {
                            positions[j].push(node);
                        }
                        owner.push(v as u32);
                    }
                    // The trivial self-instance guarantees every target node
                    // has at least one instance (isolated nodes included).
                    for pos in positions.iter_mut() {
                        pos.push(v as u32);
                    }
                    owner.push(v as u32);
                }
                InstanceSet { positions, owner, hops }
            })
            .collect();
        let proj = Linear::new(cfg.in_dim, cfg.hidden, true, rng);
        let att = mps
            .iter()
            .map(|_| {
                Tensor::param(autoac_tensor::init::xavier_uniform(2 * cfg.hidden, 1, rng))
            })
            .collect();
        let semantic = SemanticAttention::new(cfg.hidden, 128.min(cfg.hidden * 2), rng);
        let classifier = Linear::new(cfg.hidden, cfg.out_dim, true, rng);
        let n = graph.num_nodes();
        let mut target_mask = Matrix::zeros(n, 1);
        for v in graph.nodes_of_type(target) {
            target_mask.set(v, 0, 1.0);
        }
        Self {
            instance_sets,
            proj,
            att,
            semantic,
            classifier,
            slope: cfg.slope,
            dropout: cfg.dropout,
            num_nodes: n,
            target_mask,
        }
    }
}

impl Gnn for Magnn {
    fn name(&self) -> &'static str {
        "MAGNN"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let h = self.proj.forward_act(&x0.dropout(self.dropout, training, rng), Act::Elu);
        let mut views = Vec::with_capacity(self.instance_sets.len());
        for (set, a) in self.instance_sets.iter().zip(&self.att) {
            // Mean-pool node features along each instance.
            let mut inst = h.gather_rows(&set.positions[0]);
            for pos in &set.positions[1..] {
                inst = inst.add(&h.gather_rows(pos));
            }
            let inst = inst.scale(1.0 / set.hops as f32);
            // Intra-metapath attention: score from [h_owner || h_inst].
            let owner_feat = h.gather_rows(&set.owner);
            let cat = Tensor::concat_cols(&[&owner_feat, &inst]);
            let score = cat.matmul(a).leaky_relu(self.slope);
            let w = score.group_softmax(&set.owner, self.num_nodes);
            views.push(inst.mul_col_vec(&w).scatter_add_rows(&set.owner, self.num_nodes).elu());
        }
        let sem = self.semantic.forward(&views);
        // Stitch: target rows take the metapath embedding, others keep the
        // projected input (sem has zero rows outside the target type).
        let inv_mask = Tensor::constant(self.target_mask.map(|v| 1.0 - v));
        let hidden = sem.add(&h.mul_col_vec(&inv_mask));
        let output = self.classifier.forward(&hidden.dropout(self.dropout, training, rng));
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.proj.params();
        p.extend(self.att.iter().cloned());
        p.extend(self.semantic.params());
        p.extend(self.classifier.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let d = b.add_node_type("d", 2);
        let ma = b.add_edge_type("m-a", m, a);
        let md = b.add_edge_type("m-d", m, d);
        b.add_edge(ma, 0, 4);
        b.add_edge(ma, 1, 4);
        b.add_edge(ma, 2, 5);
        b.add_edge(ma, 3, 5);
        b.add_edge(md, 0, 6);
        b.add_edge(md, 2, 7);
        b.build()
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { in_dim: 8, hidden: 6, out_dim: 3, ..Default::default() };
        let g = toy();
        let model = Magnn::new(&g, 0, &cfg, 8, &mut rng);
        let x = Tensor::constant(Matrix::ones(8, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (8, 3));
        assert_eq!(f.hidden.shape(), (8, 6));
    }

    #[test]
    fn non_target_hidden_rows_are_projections() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg =
            GnnConfig { in_dim: 4, hidden: 6, out_dim: 2, dropout: 0.0, ..Default::default() };
        let g = toy();
        let model = Magnn::new(&g, 0, &cfg, 8, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(8, 4, 1.0, &mut rng));
        let f = model.forward(&x, false, &mut rng);
        let proj = model.proj.forward_act(&x, Act::Elu).to_matrix();
        let hid = f.hidden.to_matrix();
        // Actor/director rows (4..8) equal the plain projection.
        for r in 4..8 {
            for c in 0..6 {
                assert!((hid.get(r, c) - proj.get(r, c)).abs() < 1e-5, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn every_target_node_has_nonzero_hidden() {
        // Even isolated target nodes must get a representation (via the
        // self-instance).
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 3);
        let a = b.add_node_type("a", 1);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3); // movies 1, 2 isolated
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg =
            GnnConfig { in_dim: 4, hidden: 4, out_dim: 2, dropout: 0.0, ..Default::default() };
        let model = Magnn::new(&g, 0, &cfg, 4, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(4, 4, 1.0, &mut rng));
        let f = model.forward(&x, false, &mut rng);
        let hid = f.hidden.to_matrix();
        for r in 0..3 {
            let norm: f32 = hid.row(r).iter().map(|v| v * v).sum();
            assert!(norm > 1e-8, "target row {r} is zero");
        }
    }

    #[test]
    fn trains() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg =
            GnnConfig { in_dim: 4, hidden: 8, out_dim: 2, dropout: 0.0, ..Default::default() };
        let g = toy();
        let model = Magnn::new(&g, 0, &cfg, 8, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(8, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 9, 9, 9, 9];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
