//! GATNE-lite (Cen et al., KDD'19), simplified: a transductive
//! embedding-based link-prediction model. Each node has a trainable base
//! embedding; per edge type, neighbor base embeddings are mean-aggregated
//! and passed through an edge-type-specific transform; the final embedding
//! is the base plus the summed per-type views. (The full model's
//! self-attention over edge-type views and random-walk training are
//! simplified to direct aggregation + task-loss training; DESIGN.md §1.)
//!
//! GATNE ignores input attributes entirely — which is exactly why it is a
//! baseline that attribute completion outperforms.

use autoac_graph::HeteroGraph;
use autoac_tensor::{Act, Tensor};
use rand::rngs::StdRng;

use crate::layers::Linear;
use crate::models::{Forward, Gnn, GnnConfig};

/// Per-edge-type neighbor lists flattened as (owner, neighbor) pairs.
struct TypePairs {
    owner: Vec<u32>,
    neighbor: Vec<u32>,
}

/// Simplified GATNE.
pub struct GatneLite {
    base: Tensor,
    per_type: Vec<(TypePairs, Linear)>,
    out: Linear,
    num_nodes: usize,
    dropout: f32,
}

impl GatneLite {
    /// Builds the model (embedding dim = `cfg.hidden`, output dim =
    /// `cfg.out_dim`).
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let n = graph.num_nodes();
        let mut per_type = Vec::with_capacity(graph.num_edge_types());
        for e in 0..graph.num_edge_types() {
            let mut owner = Vec::new();
            let mut neighbor = Vec::new();
            for &(s, d) in graph.edges_of_type(e) {
                owner.push(s);
                neighbor.push(d);
                owner.push(d);
                neighbor.push(s);
            }
            per_type.push((
                TypePairs { owner, neighbor },
                Linear::new(cfg.hidden, cfg.hidden, false, rng),
            ));
        }
        Self {
            base: Tensor::param(autoac_tensor::init::random_normal(n, cfg.hidden, 0.1, rng)),
            per_type,
            out: Linear::new(cfg.hidden, cfg.out_dim, false, rng),
            num_nodes: n,
            dropout: cfg.dropout,
        }
    }
}

impl Gnn for GatneLite {
    fn name(&self) -> &'static str {
        "GATNE"
    }

    fn forward(&self, _x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let base = self.base.dropout(self.dropout, training, rng);
        let mut h = base.clone();
        for (pairs, lin) in &self.per_type {
            if pairs.owner.is_empty() {
                continue;
            }
            let agg = base
                .gather_rows(&pairs.neighbor)
                .segment_mean(&pairs.owner, self.num_nodes);
            h = h.add(&lin.forward_act(&agg, Act::Tanh));
        }
        let output = self.out.forward(&h);
        Forward { hidden: h, output }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = vec![self.base.clone()];
        for (_, lin) in &self.per_type {
            p.extend(lin.params());
        }
        p.extend(self.out.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let u = b.add_node_type("user", 3);
        let a = b.add_node_type("artist", 3);
        let e = b.add_edge_type("u-a", u, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 5);
        b.build()
    }

    #[test]
    fn shapes_and_attribute_independence() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig { hidden: 8, out_dim: 8, dropout: 0.0, ..Default::default() };
        let model = GatneLite::new(&toy(), &cfg, &mut rng);
        let f1 = model.forward(&Tensor::constant(Matrix::ones(6, 4)), false, &mut rng);
        let f2 = model.forward(&Tensor::constant(Matrix::zeros(6, 4)), false, &mut rng);
        assert_eq!(f1.output.shape(), (6, 8));
        assert_eq!(f1.output.to_matrix(), f2.output.to_matrix(), "GATNE ignores attributes");
    }

    #[test]
    fn learns_link_structure() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GnnConfig { hidden: 8, out_dim: 8, dropout: 0.0, ..Default::default() };
        let model = GatneLite::new(&g, &cfg, &mut rng);
        let pos = vec![(0u32, 3u32), (1, 4), (2, 5)];
        let neg = vec![(0u32, 4u32), (1, 5), (2, 3)];
        let x = Tensor::constant(Matrix::zeros(6, 4));
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.05, 0.0));
        let (mut first, mut last) = (f32::NAN, f32::NAN);
        for i in 0..100 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = crate::lp::lp_loss(&f.output, &pos, &neg);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.5, "loss must drop: {first} -> {last}");
    }
}
