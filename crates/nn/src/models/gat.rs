//! Graph Attention Network (Veličković et al.) over the homogeneous view.

use autoac_graph::HeteroGraph;
use autoac_tensor::Tensor;
use rand::rngs::StdRng;

use crate::attention::{GatConfig, GatLayer};
use crate::edges::EdgeIndex;
use crate::models::{Forward, Gnn, GnnConfig};

/// Multi-layer, multi-head GAT; hidden layers concatenate heads and apply
/// ELU, the output layer averages heads.
pub struct Gat {
    idx: EdgeIndex,
    layers: Vec<GatLayer>,
}

impl Gat {
    /// Builds the model over the homogeneous edge view of `graph`.
    pub fn new(graph: &HeteroGraph, cfg: &GnnConfig, rng: &mut StdRng) -> Self {
        let idx = EdgeIndex::homogeneous(graph);
        Self { layers: build_layers(cfg, idx.num_etypes, 0, 0.0, rng), idx }
    }
}

/// Shared stacking logic for GAT-family models (also used by SimpleHGN).
pub(crate) fn build_layers(
    cfg: &GnnConfig,
    num_etypes: usize,
    edge_dim: usize,
    beta: f32,
    rng: &mut StdRng,
) -> Vec<GatLayer> {
    assert!(cfg.layers >= 1, "gat: need at least one layer");
    let mut layers = Vec::with_capacity(cfg.layers);
    let mut in_dim = cfg.in_dim;
    for l in 0..cfg.layers {
        let last = l + 1 == cfg.layers;
        let gcfg = GatConfig {
            in_dim,
            out_dim: if last { cfg.out_dim } else { cfg.hidden },
            heads: cfg.heads,
            slope: cfg.slope,
            dropout: cfg.dropout,
            edge_dim,
            beta,
            residual: edge_dim > 0, // SimpleHGN uses node residuals
            concat: !last,
        };
        let layer = GatLayer::new(gcfg, num_etypes, rng);
        in_dim = layer.out_total();
        layers.push(layer);
    }
    layers
}

/// Shared forward for GAT-family models. Returns (hidden, output).
pub(crate) fn forward_layers(
    layers: &[GatLayer],
    idx: &EdgeIndex,
    x0: &Tensor,
    training: bool,
    rng: &mut StdRng,
) -> (Tensor, Tensor) {
    let mut h = x0.clone();
    let mut hidden = h.clone();
    let mut prev_att: Option<Vec<Tensor>> = None;
    for (l, layer) in layers.iter().enumerate() {
        let (out, att) = layer.forward(&h, idx, prev_att.as_deref(), training, rng);
        prev_att = Some(att);
        h = out;
        if l + 1 < layers.len() {
            h = h.elu();
            hidden = h.clone();
        }
    }
    (hidden, h)
}

impl Gnn for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn forward(&self, x0: &Tensor, training: bool, rng: &mut StdRng) -> Forward {
        let (hidden, output) = forward_layers(&self.layers, &self.idx, x0, training, rng);
        Forward { hidden, output }
    }

    fn params(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(GatLayer::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 4);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 4);
        b.add_edge(e, 1, 4);
        b.add_edge(e, 2, 5);
        b.add_edge(e, 3, 5);
        b.build()
    }

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = GnnConfig {
            in_dim: 8,
            hidden: 4,
            out_dim: 3,
            layers: 2,
            heads: 2,
            ..Default::default()
        };
        let model = Gat::new(&toy(), &cfg, &mut rng);
        let x = Tensor::constant(Matrix::ones(6, 8));
        let f = model.forward(&x, false, &mut rng);
        assert_eq!(f.output.shape(), (6, 3));
        assert_eq!(f.hidden.shape(), (6, 8)); // hidden·heads concatenated
    }

    #[test]
    fn learns_a_separable_toy_task() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GnnConfig {
            in_dim: 4,
            hidden: 8,
            out_dim: 2,
            layers: 2,
            heads: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let g = toy();
        let model = Gat::new(&g, &cfg, &mut rng);
        let x = Tensor::constant(autoac_tensor::init::random_normal(6, 4, 1.0, &mut rng));
        let targets = vec![0u32, 0, 1, 1, 0, 1];
        let rows = vec![0u32, 1, 2, 3];
        let mut opt =
            autoac_tensor::Adam::new(model.params(), autoac_tensor::AdamConfig::with(0.02, 0.0));
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for i in 0..80 {
            opt.zero_grad();
            let f = model.forward(&x, true, &mut rng);
            let loss = f.output.cross_entropy_rows(&targets, &rows);
            if i == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first * 0.6, "loss must drop: {first} -> {last}");
    }
}
