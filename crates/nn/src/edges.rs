//! Flattened directed edge index for message-passing layers.
//!
//! Attention GNNs (GAT, SimpleHGN, HGT) consume the graph as parallel
//! arrays `src[i] → dst[i]` with an edge-type id per edge. Each stored
//! (undirected) edge contributes both directions — the reverse direction
//! gets its own edge type, as in SimpleHGN — and every node gets a
//! self-loop with a dedicated type.

use autoac_graph::HeteroGraph;

/// Parallel edge arrays.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// Message source per directed edge.
    pub src: Vec<u32>,
    /// Message destination per directed edge.
    pub dst: Vec<u32>,
    /// Edge-type id per directed edge.
    pub etype: Vec<u32>,
    /// Total number of edge types (forward + reverse + self-loop).
    pub num_etypes: usize,
    /// Number of nodes.
    pub num_nodes: usize,
}

impl EdgeIndex {
    /// Builds the typed directed index: stored edges forward (types
    /// `0..E`), reversed (types `E..2E`), and self-loops (type `2E`).
    pub fn typed(g: &HeteroGraph) -> Self {
        let e_stored = g.num_edge_types();
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut src = Vec::with_capacity(2 * m + n);
        let mut dst = Vec::with_capacity(2 * m + n);
        let mut etype = Vec::with_capacity(2 * m + n);
        for (e, s, d) in g.all_edges() {
            src.push(s);
            dst.push(d);
            etype.push(e as u32);
            src.push(d);
            dst.push(s);
            etype.push((e + e_stored) as u32);
        }
        for v in 0..n as u32 {
            src.push(v);
            dst.push(v);
            etype.push(2 * e_stored as u32);
        }
        Self { src, dst, etype, num_etypes: 2 * e_stored + 1, num_nodes: n }
    }

    /// Homogeneous view: both directions plus self-loops, all edge type 0.
    pub fn homogeneous(g: &HeteroGraph) -> Self {
        let mut idx = Self::typed(g);
        for t in &mut idx.etype {
            *t = 0;
        }
        idx.num_etypes = 1;
        idx
    }

    /// Builds an index from explicit directed pairs (metapath neighbor
    /// graphs), adding self-loops; single edge type.
    pub fn from_pairs(pairs: &[(u32, u32)], num_nodes: usize, self_loops: bool) -> Self {
        let mut src: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
        let mut dst: Vec<u32> = pairs.iter().map(|&(_, d)| d).collect();
        if self_loops {
            src.extend(0..num_nodes as u32);
            dst.extend(0..num_nodes as u32);
        }
        let etype = vec![0; src.len()];
        Self { src, dst, etype, num_etypes: 1, num_nodes }
    }

    /// Number of directed edges (including self-loops).
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when there are no edges.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Node type of the *source* node per edge (for HGT-style type-specific
    /// projections).
    pub fn src_node_types(&self, g: &HeteroGraph) -> Vec<u32> {
        self.src.iter().map(|&v| g.type_of(v as usize) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 2);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 2);
        b.add_edge(e, 1, 3);
        b.build()
    }

    #[test]
    fn typed_index_counts() {
        let g = toy();
        let idx = EdgeIndex::typed(&g);
        assert_eq!(idx.len(), 2 * 2 + 4);
        assert_eq!(idx.num_etypes, 3); // forward, reverse, self-loop
        // Forward edge present with type 0, reverse with type 1.
        assert!(idx
            .src
            .iter()
            .zip(&idx.dst)
            .zip(&idx.etype)
            .any(|((&s, &d), &t)| (s, d, t) == (0, 2, 0)));
        assert!(idx
            .src
            .iter()
            .zip(&idx.dst)
            .zip(&idx.etype)
            .any(|((&s, &d), &t)| (s, d, t) == (2, 0, 1)));
        // Self-loops all have type 2.
        let loops = idx
            .src
            .iter()
            .zip(&idx.dst)
            .zip(&idx.etype)
            .filter(|((s, d), _)| s == d)
            .count();
        assert_eq!(loops, 4);
    }

    #[test]
    fn homogeneous_collapses_types() {
        let g = toy();
        let idx = EdgeIndex::homogeneous(&g);
        assert_eq!(idx.num_etypes, 1);
        assert!(idx.etype.iter().all(|&t| t == 0));
    }

    #[test]
    fn from_pairs_with_self_loops() {
        let idx = EdgeIndex::from_pairs(&[(0, 1), (1, 2)], 3, true);
        assert_eq!(idx.len(), 5);
        let idx2 = EdgeIndex::from_pairs(&[(0, 1)], 3, false);
        assert_eq!(idx2.len(), 1);
        assert!(!idx2.is_empty());
    }

    #[test]
    fn src_node_types() {
        let g = toy();
        let idx = EdgeIndex::typed(&g);
        let t = idx.src_node_types(&g);
        for (i, &s) in idx.src.iter().enumerate() {
            assert_eq!(t[i], g.type_of(s as usize) as u32);
        }
    }
}
