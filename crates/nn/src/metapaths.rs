//! Default metapath selection for metapath-based models (HAN, MAGNN).

use autoac_graph::{metapath::Metapath, HeteroGraph, NodeTypeId};

/// Derives the standard symmetric 2-hop metapaths `T–X–T` for every node
/// type `X` connected to the target type by some edge type — e.g. for IMDB
/// movies: `M-D-M`, `M-A-M`, `M-K-M`; for DBLP authors: `A-P-A`.
///
/// When the target connects to only one type (DBLP), the 4-hop paths
/// through that type's other neighbors are added (`A-P-T-P-A`-style), so
/// the model still sees more than one semantic view.
pub fn default_metapaths(graph: &HeteroGraph, target: NodeTypeId) -> Vec<Metapath> {
    let mut mids: Vec<NodeTypeId> = Vec::new();
    for e in 0..graph.num_edge_types() {
        let et = graph.edge_type(e);
        if et.src == target && !mids.contains(&et.dst) {
            mids.push(et.dst);
        }
        if et.dst == target && !mids.contains(&et.src) {
            mids.push(et.src);
        }
    }
    // A self-relation (target-target edges) also yields a 2-hop path.
    let mut out: Vec<Metapath> =
        mids.iter().map(|&x| Metapath::new(vec![target, x, target])).collect();

    if mids.len() == 1 && mids[0] != target {
        let bridge = mids[0];
        for e in 0..graph.num_edge_types() {
            let et = graph.edge_type(e);
            let far = if et.src == bridge && et.dst != target {
                Some(et.dst)
            } else if et.dst == bridge && et.src != target {
                Some(et.src)
            } else {
                None
            };
            if let Some(far) = far {
                out.push(Metapath::new(vec![target, bridge, far, bridge, target]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imdb_like() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 2);
        let d = b.add_node_type("director", 1);
        let a = b.add_node_type("actor", 1);
        b.add_edge_type("m-d", m, d);
        b.add_edge_type("m-a", m, a);
        b.build()
    }

    fn dblp_like() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let au = b.add_node_type("author", 2);
        let p = b.add_node_type("paper", 2);
        let t = b.add_node_type("term", 1);
        let v = b.add_node_type("venue", 1);
        b.add_edge_type("p-a", p, au);
        b.add_edge_type("p-t", p, t);
        b.add_edge_type("p-v", p, v);
        b.build()
    }

    #[test]
    fn imdb_gets_two_hop_paths() {
        let g = imdb_like();
        let mps = default_metapaths(&g, 0);
        assert_eq!(mps.len(), 2);
        assert!(mps.contains(&Metapath::new(vec![0, 1, 0])));
        assert!(mps.contains(&Metapath::new(vec![0, 2, 0])));
    }

    #[test]
    fn dblp_gets_four_hop_paths_through_paper() {
        let g = dblp_like();
        let mps = default_metapaths(&g, 0);
        // A-P-A plus A-P-T-P-A and A-P-V-P-A.
        assert_eq!(mps.len(), 3);
        assert!(mps.contains(&Metapath::new(vec![0, 1, 0])));
        assert!(mps.contains(&Metapath::new(vec![0, 1, 2, 1, 0])));
        assert!(mps.contains(&Metapath::new(vec![0, 1, 3, 1, 0])));
    }
}
