//! Per-type input projection into the shared embedding space.
//!
//! HGB convention: each node type's raw features go through a type-specific
//! linear layer into a common `d`-dimensional space. Types with missing
//! attributes contribute zero rows — exactly the rows that attribute
//! completion fills in (paper §III).

use autoac_graph::HeteroGraph;
use autoac_tensor::{Matrix, Tensor};
use rand::Rng;

use crate::layers::Linear;

/// Projects per-type raw features into a shared `(N, d)` block.
pub struct FeatureEncoder {
    projections: Vec<Option<Linear>>,
    type_counts: Vec<usize>,
    dim: usize,
}

impl FeatureEncoder {
    /// Builds one projection per attributed node type.
    ///
    /// `features[t]` is the raw feature matrix of type `t` (or `None` when
    /// missing); shapes fix each projection's input dimension.
    pub fn new(
        graph: &HeteroGraph,
        features: &[Option<Matrix>],
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(features.len(), graph.num_node_types(), "encoder: feature/type mismatch");
        let projections = features
            .iter()
            .enumerate()
            .map(|(t, f)| {
                f.as_ref().map(|m| {
                    assert_eq!(
                        m.rows(),
                        graph.num_nodes_of_type(t),
                        "encoder: feature rows must match node count of type {t}"
                    );
                    Linear::new(m.cols(), dim, true, rng)
                })
            })
            .collect();
        let type_counts = (0..graph.num_node_types())
            .map(|t| graph.num_nodes_of_type(t))
            .collect();
        Self { projections, type_counts, dim }
    }

    /// Shared embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes all nodes into an `(N, d)` tensor; rows of attribute-less
    /// nodes are zero.
    pub fn encode(&self, features: &[Option<Matrix>]) -> Tensor {
        let blocks: Vec<Tensor> = self
            .projections
            .iter()
            .zip(features)
            .zip(&self.type_counts)
            .map(|((proj, feat), &count)| match (proj, feat) {
                (Some(p), Some(f)) => p.forward(&Tensor::constant(f.clone())),
                _ => Tensor::constant(Matrix::zeros(count, self.dim)),
            })
            .collect();
        let refs: Vec<&Tensor> = blocks.iter().collect();
        Tensor::concat_rows(&refs)
    }

    /// Encodes only `nodes` (sorted ascending global ids) into a
    /// `(nodes.len(), d)` tensor, row `i` being the embedding of `nodes[i]`.
    ///
    /// Rows are computed per type by gathering the raw feature rows before
    /// the projection, so cost is `O(|nodes| · d)` — independent of the
    /// graph size. Row-independent kernels (matmul + bias) make each row
    /// bitwise equal to the corresponding row of [`FeatureEncoder::encode`].
    pub fn encode_subset(&self, features: &[Option<Matrix>], nodes: &[u32]) -> Tensor {
        assert!(!nodes.is_empty(), "encoder: empty node subset");
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "subset must be sorted unique");
        let mut blocks: Vec<Tensor> = Vec::new();
        let mut offset = 0u32; // global id where the current type starts
        let mut cursor = 0usize; // position in `nodes`
        for ((proj, feat), &count) in self.projections.iter().zip(features).zip(&self.type_counts)
        {
            let end = offset + count as u32;
            let start = cursor;
            while cursor < nodes.len() && nodes[cursor] < end {
                cursor += 1;
            }
            if cursor > start {
                let block = match (proj, feat) {
                    (Some(p), Some(f)) => {
                        let local: Vec<u32> =
                            nodes[start..cursor].iter().map(|&v| v - offset).collect();
                        p.forward(&Tensor::constant(f.gather_rows(&local)))
                    }
                    _ => Tensor::constant(Matrix::zeros(cursor - start, self.dim)),
                };
                blocks.push(block);
            }
            offset = end;
        }
        assert_eq!(cursor, nodes.len(), "encoder: subset node id out of range");
        if blocks.len() == 1 {
            return blocks.pop().expect("one block");
        }
        let refs: Vec<&Tensor> = blocks.iter().collect();
        Tensor::concat_rows(&refs)
    }

    /// Trainable parameters of every projection.
    pub fn params(&self) -> Vec<Tensor> {
        self.projections.iter().flatten().flat_map(Linear::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (HeteroGraph, Vec<Option<Matrix>>) {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("movie", 3);
        let a = b.add_node_type("actor", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        let g = b.build();
        let feats = vec![Some(Matrix::ones(3, 5)), None];
        (g, feats)
    }

    #[test]
    fn encode_shapes_and_zero_rows() {
        let (g, feats) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = FeatureEncoder::new(&g, &feats, 8, &mut rng);
        let x = enc.encode(&feats);
        assert_eq!(x.shape(), (5, 8));
        let v = x.to_matrix();
        // Actor rows (3, 4) are zero.
        assert!(v.row(3).iter().all(|&z| z == 0.0));
        assert!(v.row(4).iter().all(|&z| z == 0.0));
        // Movie rows are generally nonzero.
        assert!(v.row(0).iter().any(|&z| z != 0.0));
    }

    #[test]
    fn params_only_for_attributed_types() {
        let (g, feats) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = FeatureEncoder::new(&g, &feats, 8, &mut rng);
        assert_eq!(enc.params().len(), 2, "one weight + one bias");
    }

    #[test]
    fn gradients_flow_to_projection() {
        let (g, feats) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = FeatureEncoder::new(&g, &feats, 4, &mut rng);
        enc.encode(&feats).sum().backward();
        assert!(enc.params()[0].grad().is_some());
    }

    #[test]
    fn encode_subset_rows_match_full_encode() {
        let (g, feats) = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = FeatureEncoder::new(&g, &feats, 8, &mut rng);
        let full = enc.encode(&feats).to_matrix();
        // A subset straddling both types, including a zero (actor) row.
        let nodes = [0u32, 2, 4];
        let sub = enc.encode_subset(&feats, &nodes).to_matrix();
        assert_eq!(sub.rows(), 3);
        for (i, &v) in nodes.iter().enumerate() {
            let want: Vec<u32> = full.row(v as usize).iter().map(|x| x.to_bits()).collect();
            let got: Vec<u32> = sub.row(i).iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "row for node {v} must be bitwise equal");
        }
    }

    #[test]
    fn encode_subset_gradients_flow() {
        let (g, feats) = toy();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = FeatureEncoder::new(&g, &feats, 4, &mut rng);
        enc.encode_subset(&feats, &[1, 2]).sum().backward();
        assert!(enc.params()[0].grad().is_some());
    }

    #[test]
    #[should_panic(expected = "feature rows must match")]
    fn rejects_wrong_feature_rows() {
        let (g, _) = toy();
        let bad = vec![Some(Matrix::ones(2, 5)), None];
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FeatureEncoder::new(&g, &bad, 8, &mut rng);
    }
}
