//! Request-scoped tracing: trace-id minting, per-request stage timelines,
//! and the bounded in-memory store behind `GET /debug/traces`.
//!
//! Every accepted connection byte-stream mints a 64-bit trace id the
//! moment a request's first byte arrives (see [`TraceIds::mint`]). The id
//! rides the request through the worker, the micro-batch queue, and the
//! model thread; the completed [`Timeline`] — accept → parse →
//! queue-wait → batch-wait → compute → write — is echoed back to the
//! client in the `x-autoac-trace` response header, attached as an
//! exemplar to the serving latency histograms, and retained in a
//! fixed-capacity [`TraceStore`] ordered ring for `/debug/traces`.
//!
//! ## Determinism contract
//!
//! Ids come from `splitmix64` over a config-supplied seed plus a
//! process-local counter — pure arithmetic, no OS entropy, no wall
//! clock — so tracing never perturbs model RNG streams and a run with
//! `AUTOAC_TRACE=0` produces bitwise-identical response *bodies* (the
//! header and these side tables are the only difference).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Completed request timelines retained for `/debug/traces` (oldest
/// evicted first).
pub const TRACE_STORE_CAPACITY: usize = 256;

fn trace_env() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("AUTOAC_TRACE") {
        Ok(raw) => {
            autoac_obs::parse_bool_env("AUTOAC_TRACE", &raw)
                // analyze:allow(panic, malformed AUTOAC_* values abort at startup by design instead of silently defaulting)
                .unwrap_or_else(|e| panic!("autoac-serve: {e}"))
        }
        Err(_) => true,
    })
}

/// Process-global override: 0 = unset (defer to env), 1 = forced off,
/// 2 = forced on. Mirrors `autoac_obs::set_force` so digest-identity
/// tests can flip tracing without racing on the environment.
static TRACE_FORCE: AtomicU8 = AtomicU8::new(0);

/// Forces tracing on (`Some(true)`), off (`Some(false)`), or back to the
/// `AUTOAC_TRACE` environment value (`None`) for the whole process.
pub fn set_trace_force(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    TRACE_FORCE.store(v, Ordering::Relaxed);
}

/// Whether request tracing is armed. Defaults to **on**: a trace id is an
/// 8-byte arithmetic mint and a header echo, cheap enough to always have
/// when a production request needs explaining.
#[inline]
pub fn tracing_enabled() -> bool {
    match TRACE_FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => trace_env(),
    }
}

/// `splitmix64` finalizer: the standard 64-bit avalanche used to spread a
/// sequential counter into well-distributed ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Trace-id mint: a seeded counter pushed through [`splitmix64`].
/// `trace_id == 0` is reserved to mean *untraced* throughout the stack
/// (no header, no exemplar), so the mint never returns 0.
#[derive(Debug)]
pub struct TraceIds {
    seed: u64,
    counter: AtomicU64,
}

impl TraceIds {
    /// A mint whose id sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> TraceIds {
        TraceIds { seed, counter: AtomicU64::new(0) }
    }

    /// Next trace id (never 0). When tracing is disabled this still
    /// advances the counter — ids are positional, so toggling tracing
    /// mid-run does not re-issue already-spent ids.
    pub fn mint(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if id == 0 {
            1
        } else {
            id
        }
    }
}

/// Per-request stage timeline, all durations in nanoseconds on the
/// process-wide `autoac_obs::now_ns` clock.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// The request's trace id (never 0 for stored timelines).
    pub trace_id: u64,
    /// `now_ns()` when the request's first byte was accepted.
    pub t0_ns: u64,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Node count for classify/attrs requests, 0 otherwise.
    pub nodes: usize,
    /// Size of the micro-batch this request was answered in (0 when the
    /// request never reached the model thread).
    pub batch_size: usize,
    /// First byte → request fully parsed.
    pub parse_ns: u64,
    /// Enqueue → dequeued by the model thread.
    pub queue_ns: u64,
    /// Dequeued → batch forward started (coalescing wait).
    pub batch_wait_ns: u64,
    /// Model forward share for this request's batch.
    pub compute_ns: u64,
    /// Response serialization + socket write.
    pub write_ns: u64,
    /// First byte → response written.
    pub total_ns: u64,
}

impl Timeline {
    /// Serializes as one JSON object (the `/debug/traces` element shape).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"trace_id\":\"{:016x}\",\"t0_ns\":{},\"method\":{},\"path\":{},",
                "\"status\":{},\"nodes\":{},\"batch_size\":{},\"parse_ns\":{},",
                "\"queue_ns\":{},\"batch_wait_ns\":{},\"compute_ns\":{},",
                "\"write_ns\":{},\"total_ns\":{}}}"
            ),
            self.trace_id,
            self.t0_ns,
            autoac_data::json::to_string(&autoac_data::json::Value::Str(self.method.clone())),
            autoac_data::json::to_string(&autoac_data::json::Value::Str(self.path.clone())),
            self.status,
            self.nodes,
            self.batch_size,
            self.parse_ns,
            self.queue_ns,
            self.batch_wait_ns,
            self.compute_ns,
            self.write_ns,
            self.total_ns,
        )
    }
}

/// Fixed-capacity store of completed [`Timeline`]s (insertion-ordered,
/// oldest evicted) shared by the workers and `/debug/traces`.
#[derive(Debug, Default)]
pub struct TraceStore {
    inner: Mutex<VecDeque<Timeline>>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    /// Retains `t`, evicting the oldest stored timeline at capacity.
    pub fn push(&self, t: Timeline) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() >= TRACE_STORE_CAPACITY {
            g.pop_front();
        }
        g.push_back(t);
    }

    /// Number of retained timelines.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether no timeline has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` slowest retained timelines by `total_ns`, slowest first —
    /// the `/debug/traces` payload.
    pub fn slowest(&self, n: usize) -> Vec<Timeline> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut all: Vec<Timeline> = g.iter().cloned().collect();
        drop(g);
        all.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.trace_id.cmp(&b.trace_id)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_deterministic_nonzero_and_distinct() {
        let a = TraceIds::new(42);
        let b = TraceIds::new(42);
        let ids: Vec<u64> = (0..1000).map(|_| a.mint()).collect();
        let ids2: Vec<u64> = (0..1000).map(|_| b.mint()).collect();
        assert_eq!(ids, ids2, "same seed → same id stream");
        assert!(ids.iter().all(|&i| i != 0));
        let set: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len(), "no collisions in a short stream");
        let c = TraceIds::new(43);
        assert_ne!(a.mint(), c.mint(), "different seeds diverge");
    }

    #[test]
    fn store_evicts_oldest_and_ranks_by_total() {
        let store = TraceStore::new();
        for i in 0..(TRACE_STORE_CAPACITY + 10) {
            store.push(Timeline {
                trace_id: i as u64 + 1,
                total_ns: i as u64,
                ..Timeline::default()
            });
        }
        assert_eq!(store.len(), TRACE_STORE_CAPACITY);
        let top = store.slowest(3);
        let totals: Vec<u64> = top.iter().map(|t| t.total_ns).collect();
        let newest = (TRACE_STORE_CAPACITY + 9) as u64;
        assert_eq!(totals, vec![newest, newest - 1, newest - 2]);
        // The 10 oldest were evicted.
        let all = store.slowest(usize::MAX);
        assert!(all.iter().all(|t| t.total_ns >= 10));
    }

    #[test]
    fn timeline_json_is_parseable_by_the_strict_parser() {
        let t = Timeline {
            trace_id: 0xdead_beef,
            t0_ns: 5,
            method: "POST".into(),
            path: "/v1/\"classify\"".into(),
            status: 200,
            nodes: 3,
            batch_size: 2,
            parse_ns: 1,
            queue_ns: 2,
            batch_wait_ns: 3,
            compute_ns: 4,
            write_ns: 5,
            total_ns: 15,
        };
        let v = autoac_data::json::parse(&t.to_json()).expect("valid JSON");
        assert_eq!(v.get("trace_id").and_then(|x| x.as_str()), Some("00000000deadbeef"));
        assert_eq!(v.get("total_ns").and_then(|x| x.as_f64()), Some(15.0));
        assert_eq!(v.get("path").and_then(|x| x.as_str()), Some("/v1/\"classify\""));
    }

    #[test]
    fn force_override_wins_over_default() {
        let _serial = crate::test_lock();
        set_trace_force(Some(false));
        assert!(!tracing_enabled());
        set_trace_force(Some(true));
        assert!(tracing_enabled());
        set_trace_force(None);
    }
}
