//! The serving daemon (and demo-checkpoint trainer).
//!
//! ```text
//! # Train a small model and export it as a serving checkpoint:
//! autoac_serve --train-out ckpt.bin [--preset imdb] [--scale tiny]
//!              [--backbone gcn] [--data-seed 1] [--seed 7] [--epochs 20]
//!
//! # Serve a checkpoint:
//! autoac_serve --checkpoint ckpt.bin [--addr 127.0.0.1:0] [--workers 4]
//!              [--batch-max 64] [--flush-us 200] [--no-batching]
//!              [--port-file PATH] [--flight-dir DIR] [--run NAME]
//!              [--trace-seed N]
//! ```
//!
//! `--port-file` writes the actual bound `host:port` (useful with port 0)
//! so shell scripts can wait for readiness and find the server. Shutdown:
//! SIGINT/SIGTERM or `POST /admin/shutdown`, both graceful — and both
//! leave a flight-recorder dump (`FLIGHT_<run>.jsonl` under
//! `--flight-dir`, default `results/`) behind, as does a panic.

use std::path::PathBuf;
use std::process::exit;

use autoac_core::{train_serve_state, Backbone, ServeTrainSpec, TrainConfig};
use autoac_serve::{signals, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: autoac_serve --train-out PATH [--preset P --scale S --backbone B \
         --data-seed N --seed N --epochs N]\n\
         \x20      autoac_serve --checkpoint PATH [--addr A --workers N --batch-max N \
         --flush-us N --no-batching --port-file PATH --flight-dir DIR --run NAME \
         --trace-seed N]"
    );
    exit(2);
}

fn main() {
    let mut train_out: Option<PathBuf> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut spec = ServeTrainSpec::default();
    let mut cfg = ServeConfig::default();

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--train-out" => train_out = Some(PathBuf::from(value())),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value())),
            "--port-file" => port_file = Some(PathBuf::from(value())),
            "--preset" => spec.preset = value(),
            "--scale" => spec.scale = value(),
            "--backbone" => {
                let tag = value();
                spec.backbone = Backbone::parse(&tag).unwrap_or_else(|| {
                    eprintln!("unknown backbone tag {tag:?}");
                    exit(2);
                });
            }
            "--data-seed" => spec.data_seed = parse_num(&value(), "--data-seed"),
            "--seed" => spec.seed = parse_num(&value(), "--seed"),
            "--epochs" => {
                let n = parse_num(&value(), "--epochs") as usize;
                spec.train = TrainConfig { epochs: n, patience: n, ..spec.train };
            }
            "--addr" => cfg.addr = value(),
            "--workers" => cfg.workers = parse_num(&value(), "--workers") as usize,
            "--batch-max" => cfg.batch.batch_max = parse_num(&value(), "--batch-max") as usize,
            "--flush-us" => cfg.batch.flush_us = parse_num(&value(), "--flush-us"),
            "--no-batching" => cfg.batch.batching = false,
            "--flight-dir" => cfg.flight_dir = PathBuf::from(value()),
            "--run" => cfg.run = value(),
            "--trace-seed" => cfg.trace_seed = parse_num(&value(), "--trace-seed"),
            _ => usage(),
        }
    }

    match (train_out, checkpoint) {
        (Some(out), None) => train(&spec, &out),
        (None, Some(ckpt)) => serve(&ckpt, &cfg, port_file.as_deref()),
        _ => usage(),
    }
}

fn parse_num(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} takes a non-negative integer, got {s:?}");
        exit(2);
    })
}

fn train(spec: &ServeTrainSpec, out: &std::path::Path) {
    let (state, outcome) = train_serve_state(spec).unwrap_or_else(|e| {
        eprintln!("training failed: {e}");
        exit(1);
    });
    state.write_atomic(out).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    });
    println!(
        "exported {} ckpt={:016x} macro_f1={:.4} micro_f1={:.4} epochs={}",
        out.display(),
        state.meta.config_fp,
        outcome.macro_f1,
        outcome.micro_f1,
        outcome.epochs_run,
    );
}

fn serve(ckpt: &std::path::Path, cfg: &ServeConfig, port_file: Option<&std::path::Path>) {
    let state = autoac_ckpt::ServeState::read(ckpt).unwrap_or_else(|e| {
        eprintln!("cannot load {}: {e}", ckpt.display());
        exit(1);
    });
    signals::install();
    // A crash must leave the flight ring on disk for the post-mortem.
    autoac_obs::install_panic_dump(&cfg.flight_dir, &cfg.run);
    let server = Server::start(state, cfg).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        exit(1);
    });
    let addr = server.addr();
    if let Some(path) = port_file {
        // Written only once the server is ready, so scripts can poll for
        // this file instead of sleeping.
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("cannot write port file {}: {e}", path.display());
            exit(1);
        }
    }
    println!(
        "serving {} on http://{addr} (workers={}, batching={}, batch_max={}, flush_us={})",
        ckpt.display(),
        cfg.workers,
        cfg.batch.batching,
        cfg.batch.batch_max,
        cfg.batch.flush_us,
    );
    server.join();
    // The SIGTERM/SIGINT path ends here too (signals::install routes the
    // signal into the graceful-shutdown flag), so every clean exit leaves
    // the same post-mortem artifact a panic would.
    match autoac_obs::flight_dump_to(&cfg.flight_dir, &cfg.run) {
        Ok((path, records)) => println!("flight dump: {} ({records} records)", path.display()),
        Err(e) => eprintln!("flight dump failed: {e}"),
    }
    println!("shut down cleanly");
}
