//! # autoac-serve
//!
//! Online attribute-completion and inference serving for trained AutoAC
//! models: a zero-dependency HTTP/1.1 server over `std::net` with a
//! fixed worker pool, an adaptive micro-batching model thread, and
//! atomic checkpoint hot-reload.
//!
//! ## Endpoints
//!
//! | route              | method | purpose                                        |
//! |--------------------|--------|------------------------------------------------|
//! | `/v1/classify`     | POST   | node ids → logits + argmax labels (batched)    |
//! | `/v1/attrs`        | POST   | node ids → completed attribute rows            |
//! | `/healthz`         | GET    | liveness + loaded-checkpoint identity          |
//! | `/metrics`         | GET    | Prometheus exposition text (obs registry, SLO gauges, exemplars) |
//! | `/slo`             | GET    | burn-rate SLO status (fast + slow windows)     |
//! | `/debug/traces`    | GET    | slowest request timelines as JSON              |
//! | `/admin/reload`    | POST   | hot-swap to a new checkpoint (same graph only) |
//! | `/admin/shutdown`  | POST   | graceful shutdown                              |
//! | `/admin/flight`    | POST   | dump the flight-recorder ring to disk          |
//!
//! ## Determinism contract
//!
//! Every classify response is **bitwise-identical** whether the request
//! was answered alone or coalesced into a batch, and across restarts on
//! the same checkpoint: the model forward reads a materialized constant
//! attribute block and reseeds its RNG from the checkpoint's
//! `infer_seed` on every call, so logits are a pure function of
//! (checkpoint, node id). `serve_bench` and the integration tests diff
//! response digests batched-vs-unbatched to hold the line.
//!
//! ```no_run
//! use autoac_core::{train_serve_state, ServeTrainSpec};
//! use autoac_serve::{Client, ServeConfig, Server};
//!
//! let (state, _) = train_serve_state(&ServeTrainSpec::default()).unwrap();
//! let server = Server::start(state, &ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.post("/v1/classify", r#"{"nodes":[0,1,2]}"#).unwrap();
//! println!("{}", reply.text());
//! server.stop();
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod host;
pub mod http;
pub mod server;
pub mod trace;

pub use batch::{BatchConfig, ClassifyReply, Job, JobTiming, NodeScore};

/// Serializes unit tests that touch process-global trace state (the
/// `set_trace_force` switch shared by every test thread).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
pub use client::{Client, Response};
pub use host::{current_view, ModelHost, SharedView, ViewSlot};
pub use server::{signals, ServeConfig, Server, ServerHandle, MAX_NODES_PER_REQUEST};
pub use trace::{
    set_trace_force, tracing_enabled, Timeline, TraceIds, TraceStore, TRACE_STORE_CAPACITY,
};
