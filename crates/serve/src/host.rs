//! Model residency and hot-reload.
//!
//! The pipeline types ([`InferenceModel`] and everything under it) hold
//! `Rc`-shared tensors and are deliberately not `Send`, so the loaded
//! model lives on exactly one dedicated thread (see [`crate::batch`]).
//! Worker threads never touch it directly; what they *can* read without a
//! round-trip — the materialized attribute rows, node/class counts, and
//! checkpoint identity — is published as an immutable [`SharedView`]
//! behind an `Arc` swap, so `/v1/attrs` and `/healthz` are served
//! entirely worker-side.
//!
//! Hot-reload builds the replacement [`InferenceModel`] first and only
//! then swaps both the model and the view, so a failed reload leaves the
//! old checkpoint serving and an accepted reload is atomic: every request
//! is answered wholly by one checkpoint or the other, never a blend.

use std::sync::{Arc, Mutex};

use autoac_ckpt::ServeState;
use autoac_core::{InferenceModel, ServeStateInfo};

/// Immutable worker-visible snapshot of the loaded model: everything the
/// read-only endpoints need, in `Send + Sync` form.
pub struct SharedView {
    /// Materialized completed attributes, row-major `(num_nodes, attr_dim)`.
    pub attrs: Vec<f32>,
    /// Attribute dimensionality (`in_dim`).
    pub attr_dim: usize,
    /// Total node count; valid ids are `0..num_nodes`.
    pub num_nodes: usize,
    /// Logit columns.
    pub num_classes: usize,
    /// Checkpoint identity (config fingerprint hex, backbone, F1s, ...).
    pub info: ServeStateInfo,
}

impl SharedView {
    fn from_model(model: &InferenceModel) -> Self {
        let attrs = model.attrs();
        Self {
            attrs: (0..attrs.rows()).flat_map(|r| attrs.row(r).iter().copied()).collect(),
            attr_dim: attrs.cols(),
            num_nodes: model.num_nodes(),
            num_classes: model.num_classes(),
            info: model.info().clone(),
        }
    }

    /// One attribute row, or `None` when `node` is out of range.
    pub fn attr_row(&self, node: usize) -> Option<&[f32]> {
        if node >= self.num_nodes {
            return None;
        }
        // analyze:allow(panic, node < num_nodes was checked above and attrs holds num_nodes rows of attr_dim)
        Some(&self.attrs[node * self.attr_dim..(node + 1) * self.attr_dim])
    }
}

/// The slot workers read the current [`SharedView`] from. Cloning the
/// inner `Arc` out is the whole critical section, so the lock is never
/// held across any real work.
pub type ViewSlot = Arc<Mutex<Arc<SharedView>>>;

/// Reads the current view out of the slot.
pub fn current_view(slot: &ViewSlot) -> Arc<SharedView> {
    // A poisoned slot only means some thread panicked *after* a completed
    // swap (the stored Arc is always whole), so serving from it is sound.
    Arc::clone(&slot.lock().unwrap_or_else(|p| p.into_inner()))
}

/// The loaded model plus the published view, owned by the model thread.
pub struct ModelHost {
    model: InferenceModel,
    slot: ViewSlot,
}

impl ModelHost {
    /// Loads the initial checkpoint and publishes its view into a fresh
    /// slot.
    pub fn new(state: &ServeState) -> Result<Self, String> {
        let model = InferenceModel::from_state(state).map_err(|e| e.to_string())?;
        autoac_obs::flight_record(
            autoac_obs::FlightKind::Lifecycle,
            model.info().graph_fp,
            0,
            &format!("model loaded: {}", model.info().config_fp_hex),
        );
        let slot = Arc::new(Mutex::new(Arc::new(SharedView::from_model(&model))));
        Ok(Self { model, slot })
    }

    /// The slot workers should read views from.
    pub fn slot(&self) -> ViewSlot {
        Arc::clone(&self.slot)
    }

    /// The resident model (model-thread only).
    pub fn model(&self) -> &InferenceModel {
        &self.model
    }

    /// Replaces the resident model with `state`, keeping the old one on
    /// any failure. The new checkpoint must describe the *same graph*
    /// (identical structural fingerprint) so node ids keep their meaning
    /// across the swap; callers surface a violation as HTTP 409.
    pub fn reload(&mut self, state: &ServeState) -> Result<ServeStateInfo, String> {
        use autoac_obs::{flight_record, FlightKind};
        let next = match InferenceModel::from_state(state) {
            Ok(m) => m,
            Err(e) => {
                flight_record(FlightKind::Reload, 0, 0, &format!("rejected: {e}"));
                return Err(e.to_string());
            }
        };
        if next.info().graph_fp != self.model.info().graph_fp {
            flight_record(
                FlightKind::Reload,
                self.model.info().graph_fp,
                next.info().graph_fp,
                "rejected: graph fingerprint mismatch",
            );
            return Err(format!(
                "graph fingerprint mismatch: serving {:016x}, checkpoint {:016x} — \
                 node ids would silently change meaning",
                self.model.info().graph_fp,
                next.info().graph_fp
            ));
        }
        let view = Arc::new(SharedView::from_model(&next));
        let info = next.info().clone();
        flight_record(
            FlightKind::Reload,
            info.graph_fp,
            0,
            &format!("accepted: {}", info.config_fp_hex),
        );
        self.model = next;
        *self.slot.lock().unwrap_or_else(|p| p.into_inner()) = view;
        Ok(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_core::{train_serve_state, ServeTrainSpec, TrainConfig};

    fn quick_state(seed: u64, data_seed: u64) -> ServeState {
        let spec = ServeTrainSpec {
            data_seed,
            train: TrainConfig { epochs: 2, patience: 2, ..Default::default() },
            seed,
            ..Default::default()
        };
        train_serve_state(&spec).expect("train").0
    }

    #[test]
    fn view_exposes_attr_rows_and_bounds() {
        let host = ModelHost::new(&quick_state(3, 1)).expect("load");
        let view = current_view(&host.slot());
        assert_eq!(view.num_nodes * view.attr_dim, view.attrs.len());
        assert!(view.attr_row(0).is_some());
        assert!(view.attr_row(view.num_nodes).is_none());
        assert_eq!(view.attr_row(1).map(<[f32]>::len), Some(view.attr_dim));
    }

    #[test]
    fn reload_swaps_view_atomically_and_rejects_foreign_graphs() {
        let mut host = ModelHost::new(&quick_state(3, 1)).expect("load");
        let slot = host.slot();
        let before = current_view(&slot).info.config_fp_hex.clone();

        // Same graph, different seed: accepted, view swapped.
        let info = host.reload(&quick_state(4, 1)).expect("reload");
        assert_ne!(info.config_fp_hex, before);
        assert_eq!(current_view(&slot).info.config_fp_hex, info.config_fp_hex);

        // Different data seed regenerates a different graph: rejected,
        // old view still published.
        let err = host.reload(&quick_state(5, 2)).expect_err("must reject");
        assert!(err.contains("graph fingerprint mismatch"), "{err}");
        assert_eq!(current_view(&slot).info.config_fp_hex, info.config_fp_hex);
    }
}
